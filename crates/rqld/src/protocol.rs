//! The `rqld` wire protocol (v0, AUTH-less).
//!
//! Every frame is `[u32 length (BE)] [u8 opcode] [payload]`, where
//! `length` counts the opcode byte plus the payload. The server greets
//! each connection with a `HELLO` frame carrying the session id — the
//! out-of-band handle a *different* connection uses to `CANCEL` a query
//! running on this one (the Postgres `BackendKeyData` shape).
//!
//! Payloads are hand-rolled big-endian primitives: strings are
//! `u32`-length-prefixed UTF-8; [`Value`]s are tagged
//! (0 = Null, 1 = Integer, 2 = Real, 3 = Text); options are a `u8`
//! presence flag. No external serialization crates — the workspace
//! builds offline.

use std::fmt;
use std::io::{self, Read, Write};

use rql_sqlengine::Value;

/// Frames larger than this are rejected before allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Protocol decode/transport errors.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// Payload ended before a field was complete.
    Truncated,
    /// Unknown opcode or value tag.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Declared frame length exceeds [`MAX_FRAME`] (or is zero).
    BadLength(u32),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            ProtoError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtoError>;

// ---- opcodes ---------------------------------------------------------

/// Client → server verbs.
pub mod op {
    /// Analyze a program, return diagnostics without executing.
    pub const PREPARE: u8 = 0x01;
    /// Execute a program, return result tables + reports.
    pub const RUN: u8 = 0x02;
    /// Cancel the in-flight query of another session (by session id).
    pub const CANCEL: u8 = 0x03;
    /// One-line server status.
    pub const STATUS: u8 = 0x04;
    /// Metrics snapshot (human or JSON).
    pub const METRICS: u8 = 0x05;
    /// Graceful drain: finish queued work, then stop.
    pub const SHUTDOWN: u8 = 0x06;
    /// Execute a program and return its result plus a profile report.
    pub const PROFILE: u8 = 0x07;
    /// Register a standing query (`MAINTAIN QUERY name AS …`).
    pub const REGISTER: u8 = 0x08;
    /// Unregister a standing query by name.
    pub const UNREGISTER: u8 = 0x09;
    /// Subscribe to a standing query's result-delta stream. The reply is
    /// a `RESULT` frame (the current maintained table), then `DELTA`
    /// frames per commit until a terminal `END` frame or disconnect.
    pub const SUBSCRIBE: u8 = 0x0A;
    /// Replication status snapshot (human or JSON): role, phase, lag and
    /// shipping/applying counters from the `repl_` metrics section.
    pub const REPLSTATUS: u8 = 0x0B;
}

/// Server → client frames.
pub mod resp {
    /// Connection greeting: this connection's session id.
    pub const HELLO: u8 = 0x81;
    /// `PREPARE` reply: structured diagnostics.
    pub const DIAGNOSTICS: u8 = 0x82;
    /// `RUN` reply: result tables, mechanism reports, snapshot ids.
    pub const RESULT: u8 = 0x83;
    /// Failure, with an `[RQLxxx]`-style code when one applies.
    pub const ERROR: u8 = 0x84;
    /// Plain text (`STATUS`, `METRICS`).
    pub const TEXT: u8 = 0x85;
    /// Bare acknowledgement (`CANCEL`, `SHUTDOWN`).
    pub const OK: u8 = 0x86;
    /// `PROFILE` reply: a `RESULT` body plus profile renderings.
    pub const PROFILE: u8 = 0x87;
    /// Pushed result-delta frame for one subscribed standing query:
    /// rows added/removed by one snapshot. Row shape matches the
    /// columns of the `RESULT` frame that opened the subscription.
    pub const DELTA: u8 = 0x88;
    /// Terminal subscription frame: no more deltas follow (query
    /// unregistered, or the server is draining).
    pub const END: u8 = 0x89;
}

// ---- frame I/O -------------------------------------------------------

/// Write one `[len][op][payload]` frame.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32 + 1;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; returns `(opcode, payload)`.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(ProtoError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

// ---- payload primitives ----------------------------------------------

/// Append-only payload builder.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Fresh empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, yielding the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a raw 16-byte trace id (no length prefix — it rides as a
    /// fixed-size trailer).
    pub fn put_trace16(&mut self, id: &[u8; 16]) {
        self.buf.extend_from_slice(id);
    }

    /// Append a tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Integer(i) => {
                self.put_u8(1);
                self.put_u64(*i as u64);
            }
            Value::Real(r) => {
                self.put_u8(2);
                self.put_u64(r.to_bits());
            }
            Value::Text(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }
}

/// Cursor over a received payload.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// Read an optional 16-byte trace-id trailer: `Some` when exactly a
    /// trace id remains, `None` for frames from clients that omit it.
    pub fn get_trace16(&mut self) -> Option<[u8; 16]> {
        let bytes = self.take(16).ok()?;
        let mut id = [0u8; 16];
        id.copy_from_slice(bytes);
        Some(id)
    }

    /// Read a tagged [`Value`].
    pub fn get_value(&mut self) -> Result<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Integer(self.get_u64()? as i64)),
            2 => Ok(Value::Real(f64::from_bits(self.get_u64()?))),
            3 => Ok(Value::Text(self.get_str()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }
}

// ---- requests --------------------------------------------------------

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Lint a program; no execution.
    Prepare {
        /// The `.rql` program text.
        program: String,
        /// Client-generated 16-byte trace id (`rql --trace-id`),
        /// recorded into the server's trace ring for cross-node
        /// stitching. Encoded as an optional 16-byte trailer, so older
        /// clients decode as `None`.
        trace: Option<[u8; 16]>,
    },
    /// Execute a program.
    Run {
        /// The `.rql` program text.
        program: String,
        /// Skip the server's shared memo store for this request (the
        /// `--no-memo` ablation switch). Encoded as an optional trailing
        /// byte, so v0 clients that omit it decode as `false`.
        no_memo: bool,
        /// Optional 16-byte trace-id trailer (after the `no_memo` byte),
        /// as on [`Request::Prepare`].
        trace: Option<[u8; 16]>,
    },
    /// Cancel the in-flight query of session `session`.
    Cancel {
        /// Target session id (from that connection's `HELLO`).
        session: u64,
    },
    /// One-line server status.
    Status {
        /// Append a flight-recorder dump to the status line. Encoded as
        /// an optional trailing byte, so v0 clients decode as `false`.
        flight: bool,
    },
    /// Metrics snapshot.
    Metrics {
        /// `true` → JSON, `false` → human-readable table.
        json: bool,
    },
    /// Graceful drain and stop.
    Shutdown,
    /// Execute a program, returning results plus a profile report.
    Profile {
        /// The `.rql` program text.
        program: String,
        /// Skip the server's shared memo store (as in [`Request::Run`]).
        no_memo: bool,
        /// Optional 16-byte trace-id trailer (as in [`Request::Run`]).
        trace: Option<[u8; 16]>,
    },
    /// Register a standing query.
    Register {
        /// The full `MAINTAIN QUERY name AS …` statement.
        statement: String,
    },
    /// Unregister a standing query.
    Unregister {
        /// The registered query name.
        name: String,
    },
    /// Subscribe to a standing query's delta stream.
    Subscribe {
        /// The registered query name.
        name: String,
    },
    /// Replication status snapshot.
    ReplStatus {
        /// `true` → JSON, `false` → human-readable lines.
        json: bool,
    },
}

impl Request {
    /// Encode to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = PayloadWriter::new();
        match self {
            Request::Prepare { program, trace } => {
                w.put_str(program);
                if let Some(id) = trace {
                    w.put_trace16(id);
                }
                (op::PREPARE, w.into_bytes())
            }
            Request::Run {
                program,
                no_memo,
                trace,
            } => {
                w.put_str(program);
                w.put_u8(u8::from(*no_memo));
                if let Some(id) = trace {
                    w.put_trace16(id);
                }
                (op::RUN, w.into_bytes())
            }
            Request::Cancel { session } => {
                w.put_u64(*session);
                (op::CANCEL, w.into_bytes())
            }
            Request::Status { flight } => {
                // The flag is only written when set, keeping the plain
                // STATUS frame byte-identical to v0.
                if *flight {
                    w.put_u8(1);
                }
                (op::STATUS, w.into_bytes())
            }
            Request::Metrics { json } => {
                w.put_u8(u8::from(*json));
                (op::METRICS, w.into_bytes())
            }
            Request::Shutdown => (op::SHUTDOWN, Vec::new()),
            Request::Profile {
                program,
                no_memo,
                trace,
            } => {
                w.put_str(program);
                w.put_u8(u8::from(*no_memo));
                if let Some(id) = trace {
                    w.put_trace16(id);
                }
                (op::PROFILE, w.into_bytes())
            }
            Request::Register { statement } => {
                w.put_str(statement);
                (op::REGISTER, w.into_bytes())
            }
            Request::Unregister { name } => {
                w.put_str(name);
                (op::UNREGISTER, w.into_bytes())
            }
            Request::Subscribe { name } => {
                w.put_str(name);
                (op::SUBSCRIBE, w.into_bytes())
            }
            Request::ReplStatus { json } => {
                w.put_u8(u8::from(*json));
                (op::REPLSTATUS, w.into_bytes())
            }
        }
    }

    /// Decode from a received frame.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request> {
        let mut r = PayloadReader::new(payload);
        match opcode {
            op::PREPARE => {
                let program = r.get_str()?;
                let trace = r.get_trace16();
                Ok(Request::Prepare { program, trace })
            }
            op::RUN => {
                let program = r.get_str()?;
                // Trailing flag is optional: a frame that ends right
                // after the program string is an older encoding and
                // means "use the memo". The trace id, when present,
                // follows the flag.
                let no_memo = r.get_u8().is_ok_and(|b| b != 0);
                let trace = r.get_trace16();
                Ok(Request::Run {
                    program,
                    no_memo,
                    trace,
                })
            }
            op::CANCEL => Ok(Request::Cancel {
                session: r.get_u64()?,
            }),
            op::STATUS => Ok(Request::Status {
                flight: r.get_u8().is_ok_and(|b| b != 0),
            }),
            op::METRICS => Ok(Request::Metrics {
                json: r.get_u8()? != 0,
            }),
            op::SHUTDOWN => Ok(Request::Shutdown),
            op::PROFILE => {
                let program = r.get_str()?;
                let no_memo = r.get_u8().is_ok_and(|b| b != 0);
                let trace = r.get_trace16();
                Ok(Request::Profile {
                    program,
                    no_memo,
                    trace,
                })
            }
            op::REGISTER => Ok(Request::Register {
                statement: r.get_str()?,
            }),
            op::UNREGISTER => Ok(Request::Unregister { name: r.get_str()? }),
            op::SUBSCRIBE => Ok(Request::Subscribe { name: r.get_str()? }),
            op::REPLSTATUS => Ok(Request::ReplStatus {
                json: r.get_u8()? != 0,
            }),
            t => Err(ProtoError::BadTag(t)),
        }
    }
}

// ---- responses -------------------------------------------------------

/// A structured fix as it travels over the wire. Fixes ride in a
/// trailer *after* the diagnostics array (see [`Response::encode`]), so
/// v0 clients — which stop reading at the end of the array — are
/// oblivious to them, and new clients tolerate their absence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFix {
    /// Byte range in the submitted program to replace.
    pub start: u32,
    /// End of the byte range (exclusive).
    pub end: u32,
    /// 0 = machine-applicable, 1 = maybe-incorrect, 2 = has-placeholders.
    pub applicability: u8,
    /// Replacement text.
    pub replacement: String,
}

/// A diagnostic as it travels over the wire (code + span, the shape
/// `rqlcheck` produces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable code, e.g. `RQL001`.
    pub code: String,
    /// 0 = info, 1 = warning, 2 = error.
    pub severity: u8,
    /// Human message (no code prefix).
    pub message: String,
    /// Byte range in the submitted program, when known.
    pub span: Option<(u32, u32)>,
    /// Structured fix, when the analyzer derived one (wire trailer;
    /// absent when talking to a v0 peer).
    pub fix: Option<WireFix>,
}

/// One result table (a top-level SELECT's output).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTable {
    /// Column names.
    pub columns: Vec<String>,
    /// Row values.
    pub rows: Vec<Vec<Value>>,
}

/// Per-mechanism cost summary (the wire projection of `RqlReport`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Result table the mechanism populated.
    pub table: String,
    /// Loop iterations (snapshots visited).
    pub iterations: u64,
    /// Total Qq rows across iterations.
    pub qq_rows: u64,
    /// Heap pages skipped by delta-driven iteration (cache splice).
    pub pages_skipped_delta: u64,
    /// Heap pages skipped because a zone-map/bloom sidecar refuted the
    /// Qq WHERE clause.
    pub pages_pruned_filter: u64,
    /// Pagelog fetches during the run.
    pub pagelog_reads: u64,
    /// Buffer-cache hits during the run.
    pub cache_hits: u64,
}

/// `RUN` reply payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireResult {
    /// SELECT outputs in statement order.
    pub tables: Vec<WireTable>,
    /// Mechanism reports in invocation order.
    pub reports: Vec<WireReport>,
    /// Snapshot ids the program declared.
    pub snapshots: Vec<u64>,
    /// Server-side wall time, microseconds.
    pub elapsed_micros: u64,
}

/// `PROFILE` reply payload: the run's result plus the server-rendered
/// profile report in both human and JSON form (the server renders, so
/// every client — CLI, scripts — shows identical tables).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireProfile {
    /// The same body a `RUN` would return.
    pub result: WireResult,
    /// Human tree rendering of the per-snapshot cost table.
    pub human: String,
    /// JSON rendering of the same profile.
    pub json: String,
}

impl WireResult {
    /// Encode into an existing payload (shared by `RESULT` and
    /// `PROFILE`).
    fn encode_into(&self, w: &mut PayloadWriter) {
        w.put_u32(self.tables.len() as u32);
        for t in &self.tables {
            w.put_u32(t.columns.len() as u32);
            for c in &t.columns {
                w.put_str(c);
            }
            w.put_u32(t.rows.len() as u32);
            for row in &t.rows {
                w.put_u32(row.len() as u32);
                for v in row {
                    w.put_value(v);
                }
            }
        }
        w.put_u32(self.reports.len() as u32);
        for r in &self.reports {
            w.put_str(&r.table);
            w.put_u64(r.iterations);
            w.put_u64(r.qq_rows);
            w.put_u64(r.pages_skipped_delta);
            w.put_u64(r.pages_pruned_filter);
            w.put_u64(r.pagelog_reads);
            w.put_u64(r.cache_hits);
        }
        w.put_u32(self.snapshots.len() as u32);
        for s in &self.snapshots {
            w.put_u64(*s);
        }
        w.put_u64(self.elapsed_micros);
    }

    /// Decode from a payload cursor (shared by `RESULT` and `PROFILE`).
    fn decode_from(r: &mut PayloadReader<'_>) -> Result<WireResult> {
        let mut res = WireResult::default();
        let ntables = r.get_u32()?;
        for _ in 0..ntables {
            let ncols = r.get_u32()?;
            let mut columns = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                columns.push(r.get_str()?);
            }
            let nrows = r.get_u32()?;
            let mut rows = Vec::with_capacity(nrows as usize);
            for _ in 0..nrows {
                let nvals = r.get_u32()?;
                let mut row = Vec::with_capacity(nvals as usize);
                for _ in 0..nvals {
                    row.push(r.get_value()?);
                }
                rows.push(row);
            }
            res.tables.push(WireTable { columns, rows });
        }
        let nreports = r.get_u32()?;
        for _ in 0..nreports {
            res.reports.push(WireReport {
                table: r.get_str()?,
                iterations: r.get_u64()?,
                qq_rows: r.get_u64()?,
                pages_skipped_delta: r.get_u64()?,
                pages_pruned_filter: r.get_u64()?,
                pagelog_reads: r.get_u64()?,
                cache_hits: r.get_u64()?,
            });
        }
        let nsnaps = r.get_u32()?;
        for _ in 0..nsnaps {
            res.snapshots.push(r.get_u64()?);
        }
        res.elapsed_micros = r.get_u64()?;
        Ok(res)
    }
}

/// A pushed result-delta frame: what one snapshot did to one standing
/// query's maintained table. Row shape matches the `RESULT` frame that
/// opened the subscription.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireDelta {
    /// The standing query's registered name.
    pub name: String,
    /// The snapshot that caused the change.
    pub snap_id: u64,
    /// Rows added to the result table (multiset semantics).
    pub added: Vec<Vec<Value>>,
    /// Rows removed from the result table (multiset semantics).
    pub removed: Vec<Vec<Value>>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Greeting with this connection's session id.
    Hello {
        /// Session id for out-of-band `CANCEL`.
        session: u64,
    },
    /// `PREPARE` reply.
    Diagnostics {
        /// Findings, most severe first as produced by the analyzer.
        diagnostics: Vec<WireDiagnostic>,
    },
    /// `RUN` reply.
    Result(WireResult),
    /// Failure.
    Error {
        /// `[RQLxxx]`-style code when one applies, else empty.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// Plain text reply.
    Text(String),
    /// Bare acknowledgement.
    Ok,
    /// `PROFILE` reply.
    Profile(WireProfile),
    /// Pushed result-delta frame (subscriptions only).
    Delta(WireDelta),
    /// Terminal subscription frame.
    End {
        /// The standing query's registered name.
        name: String,
        /// Why the stream ended (`unregistered`, `drained`).
        reason: String,
    },
}

impl Response {
    /// Encode to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = PayloadWriter::new();
        match self {
            Response::Hello { session } => {
                w.put_u64(*session);
                (resp::HELLO, w.into_bytes())
            }
            Response::Diagnostics { diagnostics } => {
                w.put_u32(diagnostics.len() as u32);
                for d in diagnostics {
                    w.put_str(&d.code);
                    w.put_u8(d.severity);
                    w.put_str(&d.message);
                    match d.span {
                        Some((s, e)) => {
                            w.put_u8(1);
                            w.put_u32(s);
                            w.put_u32(e);
                        }
                        None => w.put_u8(0),
                    }
                }
                // Backward-compatible trailer: (diag index, fix) pairs.
                // v0 decoders stop at the end of the array above and
                // never see these bytes.
                let fixes: Vec<(u32, &WireFix)> = diagnostics
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| d.fix.as_ref().map(|f| (i as u32, f)))
                    .collect();
                w.put_u32(fixes.len() as u32);
                for (idx, f) in fixes {
                    w.put_u32(idx);
                    w.put_u32(f.start);
                    w.put_u32(f.end);
                    w.put_u8(f.applicability);
                    w.put_str(&f.replacement);
                }
                (resp::DIAGNOSTICS, w.into_bytes())
            }
            Response::Result(res) => {
                res.encode_into(&mut w);
                (resp::RESULT, w.into_bytes())
            }
            Response::Profile(p) => {
                p.result.encode_into(&mut w);
                w.put_str(&p.human);
                w.put_str(&p.json);
                (resp::PROFILE, w.into_bytes())
            }
            Response::Error { code, message } => {
                w.put_str(code);
                w.put_str(message);
                (resp::ERROR, w.into_bytes())
            }
            Response::Text(s) => {
                w.put_str(s);
                (resp::TEXT, w.into_bytes())
            }
            Response::Ok => (resp::OK, Vec::new()),
            Response::Delta(d) => {
                w.put_str(&d.name);
                w.put_u64(d.snap_id);
                for rows in [&d.added, &d.removed] {
                    w.put_u32(rows.len() as u32);
                    for row in rows {
                        w.put_u32(row.len() as u32);
                        for v in row {
                            w.put_value(v);
                        }
                    }
                }
                (resp::DELTA, w.into_bytes())
            }
            Response::End { name, reason } => {
                w.put_str(name);
                w.put_str(reason);
                (resp::END, w.into_bytes())
            }
        }
    }

    /// Decode from a received frame.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response> {
        let mut r = PayloadReader::new(payload);
        match opcode {
            resp::HELLO => Ok(Response::Hello {
                session: r.get_u64()?,
            }),
            resp::DIAGNOSTICS => {
                let n = r.get_u32()?;
                let mut diagnostics = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let code = r.get_str()?;
                    let severity = r.get_u8()?;
                    let message = r.get_str()?;
                    let span = if r.get_u8()? == 1 {
                        Some((r.get_u32()?, r.get_u32()?))
                    } else {
                        None
                    };
                    diagnostics.push(WireDiagnostic {
                        code,
                        severity,
                        message,
                        span,
                        fix: None,
                    });
                }
                // Fix trailer (absent from v0 peers: a truncated read
                // here just leaves every fix as None).
                if let Ok(fix_count) = r.get_u32() {
                    for _ in 0..fix_count {
                        let (Ok(idx), Ok(start), Ok(end), Ok(applicability), Ok(replacement)) = (
                            r.get_u32(),
                            r.get_u32(),
                            r.get_u32(),
                            r.get_u8(),
                            r.get_str(),
                        ) else {
                            break;
                        };
                        if let Some(d) = diagnostics.get_mut(idx as usize) {
                            d.fix = Some(WireFix {
                                start,
                                end,
                                applicability,
                                replacement,
                            });
                        }
                    }
                }
                Ok(Response::Diagnostics { diagnostics })
            }
            resp::RESULT => Ok(Response::Result(WireResult::decode_from(&mut r)?)),
            resp::PROFILE => {
                let result = WireResult::decode_from(&mut r)?;
                let human = r.get_str()?;
                let json = r.get_str()?;
                Ok(Response::Profile(WireProfile {
                    result,
                    human,
                    json,
                }))
            }
            resp::ERROR => Ok(Response::Error {
                code: r.get_str()?,
                message: r.get_str()?,
            }),
            resp::TEXT => Ok(Response::Text(r.get_str()?)),
            resp::OK => Ok(Response::Ok),
            resp::DELTA => {
                let name = r.get_str()?;
                let snap_id = r.get_u64()?;
                let mut lists = [Vec::new(), Vec::new()];
                for rows in &mut lists {
                    let nrows = r.get_u32()?;
                    for _ in 0..nrows {
                        let nvals = r.get_u32()?;
                        let mut row = Vec::with_capacity(nvals as usize);
                        for _ in 0..nvals {
                            row.push(r.get_value()?);
                        }
                        rows.push(row);
                    }
                }
                let [added, removed] = lists;
                Ok(Response::Delta(WireDelta {
                    name,
                    snap_id,
                    added,
                    removed,
                }))
            }
            resp::END => Ok(Response::End {
                name: r.get_str()?,
                reason: r.get_str()?,
            }),
            t => Err(ProtoError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn roundtrip_request(req: Request) {
        let (opc, payload) = req.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, opc, &payload).unwrap();
        let (opc2, payload2) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(opc, opc2);
        assert_eq!(Request::decode(opc2, &payload2).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let (opc, payload) = resp.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, opc, &payload).unwrap();
        let (opc2, payload2) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Response::decode(opc2, &payload2).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Prepare {
            program: "SELECT 1;".into(),
            trace: None,
        });
        roundtrip_request(Request::Prepare {
            program: "SELECT 1;".into(),
            trace: Some([0xAB; 16]),
        });
        roundtrip_request(Request::Run {
            program: "COMMIT WITH SNAPSHOT;".into(),
            no_memo: false,
            trace: None,
        });
        roundtrip_request(Request::Run {
            program: "SELECT 1;".into(),
            no_memo: true,
            trace: Some([7; 16]),
        });
        roundtrip_request(Request::Cancel { session: 42 });
        roundtrip_request(Request::Status { flight: false });
        roundtrip_request(Request::Status { flight: true });
        roundtrip_request(Request::Metrics { json: true });
        roundtrip_request(Request::Metrics { json: false });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Profile {
            program: "SELECT 1;".into(),
            no_memo: true,
            trace: None,
        });
        roundtrip_request(Request::Profile {
            program: "SELECT 1;".into(),
            no_memo: false,
            trace: Some([1; 16]),
        });
        roundtrip_request(Request::Register {
            statement: "MAINTAIN QUERY w AS SELECT CollateData(snap_id, 'SELECT 1', 'T') \
                        FROM SnapIds"
                .into(),
        });
        roundtrip_request(Request::Unregister { name: "w".into() });
        roundtrip_request(Request::Subscribe { name: "w".into() });
        roundtrip_request(Request::ReplStatus { json: true });
        roundtrip_request(Request::ReplStatus { json: false });
    }

    #[test]
    fn plain_status_stays_byte_identical_to_v0() {
        // `flight: false` must encode to an empty payload — the exact
        // v0 STATUS frame — and a v0 frame must decode as non-flight.
        let (opc, payload) = Request::Status { flight: false }.encode();
        assert_eq!(opc, op::STATUS);
        assert!(payload.is_empty());
        assert_eq!(
            Request::decode(op::STATUS, &[]).unwrap(),
            Request::Status { flight: false }
        );
    }

    #[test]
    fn v0_diagnostics_payload_without_fix_trailer_decodes() {
        // A v0 peer's payload ends right after the diagnostics array.
        let mut w = PayloadWriter::new();
        w.put_u32(1);
        w.put_str("RQL001");
        w.put_u8(2);
        w.put_str("unknown table t");
        w.put_u8(0);
        let decoded = Response::decode(resp::DIAGNOSTICS, &w.into_bytes()).unwrap();
        let Response::Diagnostics { diagnostics } = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, "RQL001");
        assert!(diagnostics[0].fix.is_none());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Hello { session: 7 });
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::Text("queue_depth 0".into()));
        roundtrip_response(Response::Error {
            code: "RQL300".into(),
            message: "query cancelled by client".into(),
        });
        roundtrip_response(Response::Diagnostics {
            diagnostics: vec![
                WireDiagnostic {
                    code: "RQL001".into(),
                    severity: 2,
                    message: "unknown table t".into(),
                    span: Some((10, 11)),
                    fix: None,
                },
                WireDiagnostic {
                    code: "RQL210".into(),
                    severity: 0,
                    message: "delta eligible".into(),
                    span: None,
                    fix: None,
                },
                WireDiagnostic {
                    code: "RQL310".into(),
                    severity: 1,
                    message: "result table 'dead' is never read".into(),
                    span: Some((40, 51)),
                    fix: Some(WireFix {
                        start: 28,
                        end: 99,
                        applicability: 0,
                        replacement: String::new(),
                    }),
                },
            ],
        });
        roundtrip_response(Response::Result(WireResult {
            tables: vec![WireTable {
                columns: vec!["a".into(), "b".into()],
                rows: vec![
                    vec![Value::Integer(-3), Value::Text("x".into())],
                    vec![Value::Null, Value::Real(2.5)],
                ],
            }],
            reports: vec![WireReport {
                table: "r".into(),
                iterations: 4,
                qq_rows: 16,
                pages_skipped_delta: 9,
                pages_pruned_filter: 3,
                pagelog_reads: 2,
                cache_hits: 30,
            }],
            snapshots: vec![1, 2, 3],
            elapsed_micros: 1234,
        }));
        roundtrip_response(Response::Profile(WireProfile {
            result: WireResult {
                tables: Vec::new(),
                reports: vec![WireReport {
                    table: "r".into(),
                    iterations: 2,
                    qq_rows: 8,
                    pages_skipped_delta: 0,
                    pages_pruned_filter: 0,
                    pagelog_reads: 5,
                    cache_hits: 1,
                }],
                snapshots: vec![1, 2],
                elapsed_micros: 99,
            },
            human: "profile: 1 mechanism call(s)\n".into(),
            json: "{\"mechanisms\":[]}".into(),
        }));
        roundtrip_response(Response::Delta(WireDelta {
            name: "w".into(),
            snap_id: 9,
            added: vec![vec![Value::Integer(1), Value::Text("x".into())]],
            removed: vec![vec![Value::Null, Value::Real(0.5)], vec![Value::Integer(2)]],
        }));
        roundtrip_response(Response::Delta(WireDelta::default()));
        roundtrip_response(Response::End {
            name: "w".into(),
            reason: "drained".into(),
        });
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, op::STATUS, &[]).unwrap();
        wire.truncate(3);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Io(_))
        ));

        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ProtoError::BadLength(_))
        ));

        let zero = 0u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(ProtoError::BadLength(0))
        ));
    }

    #[test]
    fn run_without_trailing_flag_decodes_as_memo_on() {
        // A v0 RUN frame (program string only, no trailing flag byte)
        // must still decode, defaulting to the memo-enabled path.
        let mut w = PayloadWriter::new();
        w.put_str("SELECT 1;");
        let decoded = Request::decode(op::RUN, &w.into_bytes()).unwrap();
        assert_eq!(
            decoded,
            Request::Run {
                program: "SELECT 1;".into(),
                no_memo: false,
                trace: None,
            }
        );
    }

    #[test]
    fn run_with_flag_but_no_trace_decodes_as_untrace() {
        // A client that writes the no_memo flag but omits the trace-id
        // trailer (every client before `--trace-id`) decodes as None.
        let mut w = PayloadWriter::new();
        w.put_str("SELECT 1;");
        w.put_u8(1);
        let decoded = Request::decode(op::RUN, &w.into_bytes()).unwrap();
        assert_eq!(
            decoded,
            Request::Run {
                program: "SELECT 1;".into(),
                no_memo: true,
                trace: None,
            }
        );
        // And a bare PREPARE likewise.
        let mut w = PayloadWriter::new();
        w.put_str("SELECT 1;");
        let decoded = Request::decode(op::PREPARE, &w.into_bytes()).unwrap();
        assert_eq!(
            decoded,
            Request::Prepare {
                program: "SELECT 1;".into(),
                trace: None,
            }
        );
    }

    #[test]
    fn negative_integers_survive() {
        let mut w = PayloadWriter::new();
        w.put_value(&Value::Integer(i64::MIN));
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_value().unwrap(), Value::Integer(i64::MIN));
    }
}
