//! The `rqld` server: TCP accept loop, admission-controlled worker
//! pool, per-query deadline watchdog, cancel registry, graceful drain.
//!
//! Threading model (all std, no async runtime):
//!
//! * one **acceptor** thread owns the listener; each connection gets a
//!   cheap blocking **connection thread** that parses frames and waits
//!   on response slots;
//! * a fixed pool of **worker** threads executes `RUN` jobs pulled from
//!   a bounded queue — the queue bound *is* the admission controller
//!   (full queue → immediate `[RQL503]` rejection, never head-of-line
//!   blocking);
//! * one **watchdog** thread trips the per-session cancellation token
//!   with [`CancelCause::Timeout`] when a job overruns its deadline —
//!   the executor notices at its next cooperative checkpoint;
//! * `SHUTDOWN` flips a flag: the acceptor stops accepting, workers
//!   drain the queue and exit, and [`ServerHandle::wait`] returns once
//!   every queued query has produced its response.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rql::{
    analyze_program, parse_program, CancelCause, Program, ProgramRun, RqlSession, SchemaEnv,
    Severity, SqlError,
};
use rql_memo::{MemoConfig, MemoStore};
use rql_pagestore::FileStorage;
use rql_repl::{FollowerConfig, LeaderConfig, ReplFollower, ReplLeader, ReplMetrics, ReplSnapshot};
use rql_retro::{RetroConfig, RetroStore};
use rql_standing::{PushFrame, StandingEngine, Subscription};

use crate::metrics::{Metrics, StandingSnapshot};
use crate::pool::{ServerSession, SharedStack};
use crate::protocol::{
    read_frame, write_frame, Request, Response, WireDelta, WireDiagnostic, WireFix, WireProfile,
    WireReport, WireResult, WireTable,
};

/// Admission / pool sizing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (CPU concurrency bound).
    pub workers: usize,
    /// Bounded job-queue depth; a full queue rejects at admission.
    pub queue_capacity: usize,
    /// Maximum concurrently checked-out sessions (connections).
    pub max_sessions: u64,
    /// Per-query wall-clock deadline; `None` disables the watchdog trip.
    pub query_timeout: Option<Duration>,
    /// Store configuration for the shared stack.
    pub retro: RetroConfig,
    /// Share one Qq memoization store across all sessions (`--no-memo`
    /// turns this off for the whole server).
    pub memo: bool,
    /// Log queries slower than this to stderr (`--slow-ms N`); `None`
    /// disables the slow-query log.
    pub slow_query: Option<Duration>,
    /// Durable store directory: the WAL/Pagelog/Maplog live here and
    /// survive restarts. `None` keeps the store in memory. Required for
    /// both replication roles (a leader ships its on-disk logs; a
    /// follower seeds into them).
    pub data_dir: Option<PathBuf>,
    /// Leader mode: accept replication followers on this address and
    /// ship committed segments to them.
    pub repl_listen: Option<String>,
    /// Follower mode: bootstrap from and stream the leader at this
    /// address. The server becomes a read-only replica — writes and
    /// standing-query registration are rejected with `RQL505`.
    pub follow: Option<String>,
    /// Observability listener: serve `GET /metrics` (Prometheus text
    /// exposition), `/healthz` and `/readyz` on this address
    /// (`--metrics-listen ADDR`). `None` disables the listener.
    pub metrics_listen: Option<String>,
    /// Follower readiness bound: `/readyz` answers 503 while the
    /// propagated replication lag exceeds this (`--ready-lag SECS`).
    /// Ignored on leaders and standalone servers.
    pub ready_lag: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_sessions: 64,
            query_timeout: None,
            retro: RetroConfig::new(),
            memo: true,
            slow_query: None,
            data_dir: None,
            repl_listen: None,
            follow: None,
            metrics_listen: None,
            ready_lag: Duration::from_secs(5),
        }
    }
}

/// Wire code for a runtime error. Analyzer diagnostics carry their own
/// registry codes; runtime failures map onto the nearest class, with
/// `RQL3xx` reserved for cancellation causes and `RQL500`/`RQL503` for
/// server-side conditions (execution failure / admission rejection).
pub fn error_code(e: &SqlError) -> &'static str {
    match e {
        SqlError::Cancelled(cause) => cause.code(),
        SqlError::Parse(_) | SqlError::ParseAt { .. } => "RQL050",
        SqlError::Unknown(_) => "RQL001",
        _ => "RQL500",
    }
}

/// Admission-rejection wire code (queue full or draining).
pub const ADMISSION_CODE: &str = "RQL503";

struct Job {
    id: u64,
    program: Program,
    no_memo: bool,
    session: Arc<ServerSession>,
    admitted: Instant,
    slot: Mutex<Option<Result<ProgramRun, SqlError>>>,
    done: Condvar,
}

struct Inner {
    stack: Arc<SharedStack>,
    metrics: Arc<Metrics>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    sessions: Mutex<HashMap<u64, Arc<ServerSession>>>,
    deadlines: Mutex<HashMap<u64, (Instant, Arc<ServerSession>)>>,
    next_job: AtomicU64,
    shutting_down: AtomicBool,
    started: Instant,
    /// Standing-query registry, attached to the shared store's snapshot
    /// hook: maintenance runs on whichever connection thread commits.
    standing: Arc<StandingEngine>,
    /// The server-owned session hosting every standing query's result
    /// table (registration seeds and maintains against this session, so
    /// standing queries outlive the connection that registered them).
    standing_session: Arc<RqlSession>,
    /// Flight-recorder dump captured at the last failed job (watchdog
    /// timeout, cancellation, Qq error), served by `STATUS --flight`
    /// even after the ring has moved on.
    last_flight: Mutex<Option<String>>,
    /// Replication counters, rendered by `METRICS` (under `repl_`) and
    /// `REPLSTATUS`. Stays zeroed when replication is not configured.
    repl_metrics: Arc<ReplMetrics>,
    /// Leader-side segment shipper, kept alive for the server's
    /// lifetime; torn down at drain so followers see a clean close.
    repl_leader: Mutex<Option<ReplLeader>>,
    /// Follower-side applier; torn down at drain (flushes the replica).
    repl_follower: Mutex<Option<ReplFollower>>,
}

impl Inner {
    fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Admit a RUN job or reject it. Returns `None` (with the metric
    /// bumped) when the queue is full or the server is draining.
    fn admit(
        self: &Arc<Self>,
        program: Program,
        no_memo: bool,
        session: Arc<ServerSession>,
    ) -> Option<Arc<Job>> {
        let job = {
            let mut queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.draining() || queue.len() >= self.config.queue_capacity {
                drop(queue);
                self.metrics.inc(&self.metrics.admission_rejected);
                return None;
            }
            let job = Arc::new(Job {
                id: self.next_job.fetch_add(1, Ordering::Relaxed),
                program,
                no_memo,
                session,
                admitted: Instant::now(),
                slot: Mutex::new(None),
                done: Condvar::new(),
            });
            queue.push_back(Arc::clone(&job));
            job
        };
        self.metrics.inc(&self.metrics.queries_total);
        self.metrics.inc(&self.metrics.queue_depth);
        rql_trace::instant_arg(rql_trace::SpanId::JobAdmit, job.id);
        self.queue_cv.notify_one();
        Some(job)
    }

    /// Worker loop: run queued jobs until the drain flag is up *and* the
    /// queue is empty.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queue = self
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.draining() {
                        return;
                    }
                    queue = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            };
            self.metrics.dec(&self.metrics.queue_depth);
            self.metrics.inc(&self.metrics.in_flight);
            rql_trace::instant_arg(rql_trace::SpanId::JobDequeue, job.id);
            self.run_job(&job);
            self.metrics.dec(&self.metrics.in_flight);
        }
    }

    fn run_job(self: &Arc<Self>, job: &Arc<Job>) {
        // Re-arm the token: cancellation is sticky (sqlite3_interrupt
        // semantics) and a CANCEL aimed at the previous query must not
        // kill this one.
        job.session.session().clear_cancel();
        if let Some(timeout) = self.config.query_timeout {
            self.deadlines
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(job.id, (job.admitted + timeout, Arc::clone(&job.session)));
        }
        let result = {
            let _span = rql_trace::span_arg(rql_trace::SpanId::JobRun, job.id);
            job.session.run_program_opts(&job.program, job.no_memo)
        };
        self.deadlines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&job.id);

        // Any failure freezes the flight recorder: the ring keeps
        // rolling, but the dump at the moment of the error is what a
        // post-mortem needs (`STATUS --flight` serves it).
        if result.is_err() {
            *self
                .last_flight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                Some(rql_trace::flight_dump());
        }
        if let Some(threshold) = self.config.slow_query {
            let elapsed = job.admitted.elapsed();
            if elapsed >= threshold {
                eprintln!(
                    "rqld: slow query: job {} took {:.1}ms (threshold {:.1}ms)",
                    job.id,
                    elapsed.as_secs_f64() * 1e3,
                    threshold.as_secs_f64() * 1e3,
                );
            }
        }

        match &result {
            Ok(run) => {
                self.metrics.inc(&self.metrics.queries_ok);
                let rows: u64 = run.tables.iter().map(|t| t.rows.len() as u64).sum();
                self.metrics.add(&self.metrics.rows_returned, rows);
                for (_, report) in &run.reports {
                    self.metrics
                        .add(&self.metrics.qq_iterations, report.iteration_count() as u64);
                    self.metrics
                        .add(&self.metrics.qq_rows, report.total_qq_rows());
                    self.metrics.add(
                        &self.metrics.pages_skipped_delta,
                        report.accumulated_stats().pages_skipped_delta,
                    );
                    self.metrics.add(
                        &self.metrics.pages_pruned_filter,
                        report.accumulated_stats().pages_pruned_filter,
                    );
                }
            }
            Err(SqlError::Cancelled(CancelCause::Client)) => {
                self.metrics.inc(&self.metrics.queries_failed);
                self.metrics.inc(&self.metrics.queries_cancelled);
            }
            Err(SqlError::Cancelled(CancelCause::Timeout)) => {
                self.metrics.inc(&self.metrics.queries_failed);
                self.metrics.inc(&self.metrics.queries_timed_out);
            }
            Err(_) => self.metrics.inc(&self.metrics.queries_failed),
        }
        self.metrics.latency.record(job.admitted.elapsed());

        *job.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
        job.done.notify_all();
    }

    /// Watchdog: trip `Timeout` on sessions whose job overran its
    /// deadline. Runs until drain completes.
    fn watchdog_loop(self: &Arc<Self>) {
        while !self.draining() {
            thread::sleep(Duration::from_millis(5));
            let now = Instant::now();
            let expired: Vec<Arc<ServerSession>> = {
                let mut deadlines = self
                    .deadlines
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let hit: Vec<u64> = deadlines
                    .iter()
                    .filter(|(_, (deadline, _))| *deadline <= now)
                    .map(|(&id, _)| id)
                    .collect();
                hit.into_iter()
                    .filter_map(|id| deadlines.remove(&id).map(|(_, s)| s))
                    .collect()
            };
            for session in expired {
                session.session().cancel(CancelCause::Timeout);
            }
        }
    }

    fn begin_shutdown(self: &Arc<Self>, addr: std::net::SocketAddr) {
        if self.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // Subscribers first: each gets a terminal END frame (reason
        // "drained") instead of a silently dropped socket, and the
        // blocked subscription writers wake up to deliver it.
        self.standing.drain();
        // Replication endpoints next: the leader stops shipping (its
        // followers reconnect-and-resume elsewhere or wait), a follower
        // stops applying and flushes its replica.
        if let Some(mut leader) = self
            .repl_leader
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            leader.shutdown();
        }
        if let Some(mut follower) = self
            .repl_follower
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            follower.shutdown();
        }
        // Wake every parked worker so they observe the flag, and poke
        // the acceptor out of its blocking accept().
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(addr);
    }

    /// The `/metrics` page: every registry the `METRICS` verb renders,
    /// re-expressed in the Prometheus text format (plus the build-info
    /// and uptime gauges the scrape-side convention expects).
    fn render_openmetrics(&self) -> String {
        let io = self.stack.store().stats().snapshot();
        let memo = self.stack.memo_stats();
        let standing = StandingSnapshot::from_statuses(&self.standing.statuses());
        let repl = self.repl_metrics.snapshot();
        crate::observe::render_openmetrics(
            &self.metrics,
            &io,
            &memo,
            &standing,
            &repl,
            self.started.elapsed(),
        )
    }

    /// The `/readyz` verdict. A leader or standalone server is ready
    /// unless it is draining. A follower is additionally gated on its
    /// replication session: it must be streaming (not reconnecting or
    /// shed) with the propagated commit-timestamp lag under the
    /// configured bound. The store itself is always seeded by the time
    /// this runs — `serve` blocks on the bootstrap before binding.
    fn readyz(&self) -> rql_trace::HttpResponse {
        if self.draining() {
            return rql_trace::HttpResponse::unavailable("draining\n");
        }
        if self.config.follow.is_some() {
            let snap = self.repl_metrics.snapshot();
            if snap.phase != rql_repl::phase::STREAMING {
                return rql_trace::HttpResponse::unavailable(format!(
                    "follower not streaming (phase {})\n",
                    snap.phase
                ));
            }
            let lag = Duration::from_micros(snap.lag_micros);
            if lag > self.config.ready_lag {
                return rql_trace::HttpResponse::unavailable(format!(
                    "replication lag {:.3}s exceeds bound {:.3}s\n",
                    lag.as_secs_f64(),
                    self.config.ready_lag.as_secs_f64()
                ));
            }
        }
        rql_trace::HttpResponse::ok("ready\n")
    }

    fn status_line(&self) -> String {
        format!(
            "rqld up {}s, sessions={}, queue={}/{}, in_flight={}, snapshots={}",
            self.started.elapsed().as_secs(),
            self.stack.active_sessions(),
            self.metrics.queue_depth.get(),
            self.config.queue_capacity,
            self.metrics.in_flight.get(),
            self.stack.snapshot_log_len(),
        )
    }
}

/// Running server: join handles plus the shared state.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    observe: Option<rql_trace::HttpServer>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The server's standing-query engine (registry + push fan-out).
    pub fn standing(&self) -> &Arc<StandingEngine> {
        &self.inner.standing
    }

    /// The observability listener's bound address (when
    /// `metrics_listen` is configured; useful with port 0).
    pub fn observe_addr(&self) -> Option<std::net::SocketAddr> {
        self.observe.as_ref().map(rql_trace::HttpServer::addr)
    }

    /// The replication listener's bound address (leader mode only;
    /// useful when `repl_listen` used port 0).
    pub fn repl_addr(&self) -> Option<std::net::SocketAddr> {
        self.inner
            .repl_leader
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(ReplLeader::addr)
    }

    /// Initiate a drain from the host process (same as a `SHUTDOWN`
    /// frame): stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown(self.addr);
    }

    /// Block until drain completes: acceptor gone, queue empty, workers
    /// and watchdog joined.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        // Every worker has exited, so no commit can race this final
        // checkpoint. Without it a durable store's buffered WAL tail
        // dies with the process and a clean restart comes back short —
        // on a leader, *behind its own followers*, which breaks
        // wal-length resume.
        let _ = self.inner.stack.store().flush();
        if let Some(mut o) = self.observe.take() {
            o.shutdown();
        }
    }
}

/// Open (or create) the three durable logs under `dir` and the store
/// over them. Crash reconciliation and WAL recovery run inside
/// [`RetroStore::open`]. The file names match what a replication
/// follower seeds into, so a follower's data dir can be promoted to a
/// standalone (or leader) store by restarting without `--follow`.
fn open_durable_store(dir: &std::path::Path, config: RetroConfig) -> io::Result<Arc<RetroStore>> {
    std::fs::create_dir_all(dir)?;
    let mk = |name: &str| -> io::Result<Arc<FileStorage>> {
        let path = dir.join(name);
        let storage = if path.exists() {
            FileStorage::open(&path)
        } else {
            FileStorage::create(&path)
        };
        storage.map(Arc::new).map_err(io::Error::other)
    };
    RetroStore::open(
        config,
        mk("wal.log")?,
        mk("pagelog.log")?,
        mk("maplog.log")?,
    )
    .map_err(|e| io::Error::other(e.to_string()))
}

/// Bind `addr` and start the full thread complement. Catalog bootstrap
/// happens here, single-threaded, before any connection is accepted —
/// and, in leader mode, before the replication listener opens, so every
/// seed a follower receives already carries the catalog commit.
pub fn serve(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let memo = config
        .memo
        .then(|| Arc::new(MemoStore::new(MemoConfig::default())));
    let repl_metrics = Arc::new(ReplMetrics::new());

    let mut repl_follower = None;
    let stack = if let Some(leader_addr) = &config.follow {
        // Follower: bootstrap the replica (seed, or reopen + resume)
        // before serving anything — queries need a store, and the apply
        // thread stays its only writer, so the stack is read-only.
        let dir = config
            .data_dir
            .clone()
            .ok_or_else(|| io::Error::other("--follow requires --data-dir"))?;
        let mut fcfg = FollowerConfig::new(leader_addr.clone(), dir);
        fcfg.retro = config.retro.clone();
        let follower = ReplFollower::start(fcfg, Arc::clone(&repl_metrics));
        let store = follower
            .wait_for_store(Duration::from_secs(60))
            .ok_or_else(|| {
                io::Error::other(match follower.last_error() {
                    Some(e) => format!("replication bootstrap failed: {e}"),
                    None => "replication bootstrap timed out".into(),
                })
            })?;
        repl_follower = Some(follower);
        SharedStack::new_over_store(store, config.max_sessions, memo, true)
    } else if let Some(dir) = &config.data_dir {
        let store = open_durable_store(dir, config.retro.clone())?;
        SharedStack::new_over_store(store, config.max_sessions, memo, false)
    } else {
        SharedStack::new_with_memo(config.retro.clone(), config.max_sessions, memo)
    };

    // Surface replicated declarations to every session's SnapIds the
    // same way local `COMMIT WITH SNAPSHOT` does: each snapshot the
    // apply thread lands goes through the fan-out log.
    if repl_follower.is_some() {
        let weak = Arc::downgrade(&stack);
        stack.store().add_snapshot_hook(Arc::new(move |sid| {
            if let Some(stack) = weak.upgrade() {
                stack.note_snapshots(&[sid]);
            }
        }));
    }
    // Snapshots that predate this process (reopened durable store, or a
    // follower's seed) exist only in the store; note them so sessions
    // can `SELECT … FROM SnapIds` over the full history. Snapshot ids
    // are dense 1..=count; the SnapIds sync dedups, so overlap with the
    // hook above is harmless.
    let preexisting: Vec<u64> = (1..=stack.store().snapshot_count()).collect();
    stack.note_snapshots(&preexisting);

    let standing = StandingEngine::new();
    standing.attach(stack.store());
    let standing_session = stack
        .host_session()
        .map_err(|e| io::Error::other(e.to_string()))?;

    let repl_leader = match &config.repl_listen {
        Some(repl_addr) => {
            let repl_listener = TcpListener::bind(repl_addr.as_str())?;
            let leader = ReplLeader::start(
                Arc::clone(stack.store()),
                repl_listener,
                Arc::clone(&repl_metrics),
                LeaderConfig::default(),
            )
            .map_err(|e| io::Error::other(e.to_string()))?;
            Some(leader)
        }
        None => None,
    };

    let inner = Arc::new(Inner {
        stack,
        metrics: Arc::new(Metrics::new()),
        config,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        sessions: Mutex::new(HashMap::new()),
        deadlines: Mutex::new(HashMap::new()),
        next_job: AtomicU64::new(1),
        shutting_down: AtomicBool::new(false),
        started: Instant::now(),
        standing,
        standing_session,
        last_flight: Mutex::new(None),
        repl_metrics,
        repl_leader: Mutex::new(repl_leader),
        repl_follower: Mutex::new(repl_follower),
    });

    // The observability listener (Prometheus scrape + probe surface)
    // binds after the stack exists — a follower's /readyz can only flip
    // to ready once the seed landed anyway, and a bind failure should
    // abort startup, not limp along unobservable.
    let observe = match &inner.config.metrics_listen {
        Some(listen) => {
            let routes = Arc::clone(&inner);
            let handler: Arc<rql_trace::http::Handler> = Arc::new(move |path: &str| match path {
                "/metrics" => rql_trace::HttpResponse {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: routes.render_openmetrics(),
                },
                "/healthz" => rql_trace::HttpResponse::ok("ok\n"),
                "/readyz" => routes.readyz(),
                _ => rql_trace::HttpResponse::not_found(),
            });
            Some(rql_trace::http::serve(listen, handler)?)
        }
        None => None,
    };

    let workers = (0..inner.config.workers.max(1))
        .map(|_| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || inner.worker_loop())
        })
        .collect();
    let watchdog = {
        let inner = Arc::clone(&inner);
        Some(thread::spawn(move || inner.watchdog_loop()))
    };
    let acceptor = {
        let inner = Arc::clone(&inner);
        Some(thread::spawn(move || {
            for stream in listener.incoming() {
                if inner.draining() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let inner = Arc::clone(&inner);
                thread::spawn(move || serve_connection(&inner, stream));
            }
        }))
    };

    Ok(ServerHandle {
        inner,
        addr: local,
        acceptor,
        workers,
        watchdog,
        observe,
    })
}

fn send(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let (opcode, payload) = response.encode();
    write_frame(stream, opcode, &payload)
}

fn serve_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    rql_trace::instant(rql_trace::SpanId::ConnAccept);
    inner.metrics.inc(&inner.metrics.connections_total);
    let session = match inner.stack.checkout() {
        Ok(s) => Arc::new(s),
        Err(e) => {
            let _ = send(
                &mut stream,
                &Response::Error {
                    code: ADMISSION_CODE.into(),
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    inner.metrics.inc(&inner.metrics.connections_open);
    inner
        .sessions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(session.id, Arc::clone(&session));

    let result = connection_loop(inner, &mut stream, &session);

    inner
        .sessions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&session.id);
    inner.metrics.dec(&inner.metrics.connections_open);
    // A dropped connection cancels whatever it had in flight.
    session.session().cancel(CancelCause::Client);
    let _ = result;
}

fn connection_loop(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    session: &Arc<ServerSession>,
) -> io::Result<()> {
    send(
        stream,
        &Response::Hello {
            session: session.id,
        },
    )?;
    loop {
        let Ok((opcode, payload)) = read_frame(stream) else {
            return Ok(()); // EOF or bad frame: close quietly
        };
        let request = match Request::decode(opcode, &payload) {
            Ok(r) => r,
            Err(e) => {
                send(
                    stream,
                    &Response::Error {
                        code: "RQL050".into(),
                        message: format!("bad frame: {e}"),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Prepare { program, trace } => {
                note_trace(trace);
                inner.metrics.inc(&inner.metrics.prepares_total);
                let diagnostics = prepare(session, &program);
                send(stream, &Response::Diagnostics { diagnostics })?;
            }
            Request::Run {
                program,
                no_memo,
                trace,
            } => {
                note_trace(trace);
                let started = Instant::now();
                let Some(outcome) = submit(inner, stream, session, &program, no_memo)? else {
                    continue;
                };
                match outcome {
                    Ok(run) => {
                        let wire = wire_result(&run, started.elapsed());
                        send(stream, &Response::Result(wire))?;
                        rql_trace::instant(rql_trace::SpanId::JobReply);
                    }
                    Err(e) => send(stream, &standing_error(&e))?,
                }
            }
            Request::Profile {
                program,
                no_memo,
                trace,
            } => {
                note_trace(trace);
                // Same admission/execution path as RUN; the response adds
                // the per-snapshot cost breakdown derived from the run's
                // own reports (so it reconciles with METRICS by
                // construction).
                let started = Instant::now();
                let Some(outcome) = submit(inner, stream, session, &program, no_memo)? else {
                    continue;
                };
                match outcome {
                    Ok(run) => {
                        let profile = rql::QueryProfile::from_run(&run);
                        let wire = WireProfile {
                            result: wire_result(&run, started.elapsed()),
                            human: profile.render_human(false),
                            json: profile.render_json(false),
                        };
                        send(stream, &Response::Profile(wire))?;
                        rql_trace::instant(rql_trace::SpanId::JobReply);
                    }
                    Err(e) => send(stream, &standing_error(&e))?,
                }
            }
            Request::Cancel { session: target } => {
                let found = inner
                    .sessions
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(&target)
                    .map(Arc::clone);
                match found {
                    Some(victim) => {
                        victim.session().cancel(CancelCause::Client);
                        send(stream, &Response::Ok)?;
                    }
                    None => send(
                        stream,
                        &Response::Error {
                            code: "RQL500".into(),
                            message: format!("no such session: {target}"),
                        },
                    )?,
                }
            }
            Request::Status { flight } => {
                let mut text = inner.status_line();
                if flight {
                    // Live ring contents first, then the dump frozen at
                    // the last failed job (if any survived one).
                    text.push('\n');
                    text.push_str(&rql_trace::flight_dump());
                    let last = inner
                        .last_flight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .clone();
                    if let Some(dump) = last {
                        text.push_str("\n--- last failure ---\n");
                        text.push_str(&dump);
                    }
                }
                send(stream, &Response::Text(text))?;
            }
            Request::Metrics { json } => {
                let io = inner.stack.store().stats().snapshot();
                let memo = inner.stack.memo_stats();
                let standing = StandingSnapshot::from_statuses(&inner.standing.statuses());
                let repl = inner.repl_metrics.snapshot();
                let text = if json {
                    inner.metrics.render_json(&io, &memo, &standing, &repl)
                } else {
                    inner.metrics.render_human(&io, &memo, &standing, &repl)
                };
                send(stream, &Response::Text(text))?;
            }
            Request::ReplStatus { json } => {
                let snap = inner.repl_metrics.snapshot();
                send(stream, &Response::Text(render_replstatus(&snap, json)))?;
            }
            Request::Register { statement } => {
                if inner.stack.read_only() {
                    send(stream, &read_only_error("MAINTAIN registration"))?;
                    continue;
                }
                // Seeding writes the host session's aux store; hold the
                // stack's writer gate so it cannot race a commit (whose
                // maintenance pass writes the same store).
                let gate = inner.stack.writer_gate();
                let response = match inner
                    .stack
                    .sync_snapids_into(&inner.standing_session)
                    .and_then(|()| inner.standing.register(&inner.standing_session, &statement))
                {
                    Ok(out) => Response::Text(format!(
                        "registered name={} table={} snapshots_seeded={}",
                        out.name, out.table, out.snapshots_seeded
                    )),
                    Err(e) => standing_error(&e),
                };
                drop(gate);
                send(stream, &response)?;
            }
            Request::Unregister { name } => {
                if inner.standing.unregister(&name) {
                    send(stream, &Response::Ok)?;
                } else {
                    send(stream, &unknown_standing(&name))?;
                }
            }
            Request::Subscribe { name } => {
                match inner.standing.subscribe(&name) {
                    None => send(stream, &unknown_standing(&name))?,
                    Some(Err(e)) => send(stream, &error_response(&e))?,
                    Some(Ok(sub)) => {
                        // Opening frame: the full maintained table as of
                        // subscription time; every later delta applies on
                        // top of it.
                        send(stream, &Response::Result(initial_result(&sub)))?;
                        stream_subscription(&name, &sub, stream)?;
                        // Terminal frame written (or channel closed):
                        // back to request-response mode.
                    }
                }
            }
            Request::Shutdown => {
                send(stream, &Response::Ok)?;
                inner.begin_shutdown(inner_addr(stream));
                return Ok(());
            }
        }
    }
}

/// Parse, admit and execute one program, blocking on the job slot.
/// Returns `Ok(None)` when a parse or admission failure was already
/// answered on the wire (the caller just continues its loop).
fn submit(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    session: &Arc<ServerSession>,
    program: &str,
    no_memo: bool,
) -> io::Result<Option<Result<ProgramRun, SqlError>>> {
    let parsed = match parse_program(program) {
        Ok(p) => p,
        Err(d) => {
            inner.metrics.inc(&inner.metrics.queries_total);
            inner.metrics.inc(&inner.metrics.queries_failed);
            send(
                stream,
                &Response::Error {
                    code: d.code.as_str().into(),
                    message: d.message,
                },
            )?;
            return Ok(None);
        }
    };
    let Some(job) = inner.admit(parsed, no_memo, Arc::clone(session)) else {
        send(
            stream,
            &Response::Error {
                code: ADMISSION_CODE.into(),
                message: "server busy: admission queue full or draining".into(),
            },
        )?;
        return Ok(None);
    };
    let outcome = {
        let mut slot = job
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                break outcome;
            }
            slot = job
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    };
    Ok(Some(outcome))
}

/// Record a client-propagated trace id in this server's trace ring.
/// The `trace_ctx` instant's arg is the id's first eight bytes
/// (big-endian), which is what `stitch_trace.py` matches against the
/// client's own export — the instant lands on the connection thread, so
/// it shares that thread's lane with the spans the request produces.
fn note_trace(trace: Option<[u8; 16]>) {
    if let Some(id) = trace {
        let hi = u64::from_be_bytes([id[0], id[1], id[2], id[3], id[4], id[5], id[6], id[7]]);
        rql_trace::instant_arg(rql_trace::SpanId::TraceCtx, hi);
    }
}

/// The server's own address as seen from this connection (used to poke
/// the acceptor awake during shutdown).
fn inner_addr(stream: &TcpStream) -> std::net::SocketAddr {
    stream
        .local_addr()
        .unwrap_or_else(|_| std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
}

fn error_response(e: &SqlError) -> Response {
    Response::Error {
        code: error_code(e).into(),
        message: e.to_string(),
    }
}

/// `RQL505`: this server is a read-only replica; the write belongs on
/// the leader.
fn read_only_error(what: &str) -> Response {
    Response::Error {
        code: "RQL505".into(),
        message: format!("read-only replica: {what} must go to the leader"),
    }
}

/// The `REPLSTATUS` reply: the `repl_` metric section on its own, with
/// the role/phase gauges spelled out in the human form. Field order
/// follows [`ReplSnapshot::fields`] — wire-stable, grow-at-end only.
fn render_replstatus(s: &ReplSnapshot, json: bool) -> String {
    // Derived, not part of the wire-stable integer list: the propagated
    // commit-timestamp lag as a float in seconds, so `rql replstatus
    // --json | jq .lag_seconds` needs no unit conversion.
    let lag_seconds = s.lag_micros as f64 / 1e6;
    if json {
        let mut parts: Vec<String> = s
            .fields()
            .into_iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        parts.push(format!("\"lag_seconds\":{lag_seconds:.6}"));
        return format!("{{{}}}", parts.join(","));
    }
    let mut out = String::new();
    for (name, value) in s.fields() {
        let word = match (name, value) {
            ("role", rql_repl::role::NONE) => Some("none"),
            ("role", rql_repl::role::LEADER) => Some("leader"),
            ("role", rql_repl::role::FOLLOWER) => Some("follower"),
            ("phase", rql_repl::phase::IDLE) => Some("idle"),
            ("phase", rql_repl::phase::SEEDING) => Some("seeding"),
            ("phase", rql_repl::phase::STREAMING) => Some("streaming"),
            _ => None,
        };
        out.push_str(name);
        out.push(' ');
        match word {
            Some(w) => out.push_str(w),
            None => out.push_str(&value.to_string()),
        }
        out.push('\n');
    }
    out.push_str(&format!("lag_seconds {lag_seconds:.6}\n"));
    out
}

/// Failures that carry their registry code inline (`[RQL210] …` from
/// the MAINTAIN eligibility checks, `[RQL505] …` from the read-only
/// replica gate) get it lifted into the frame's code field so clients
/// see the same shape as analyzer diagnostics.
fn standing_error(e: &SqlError) -> Response {
    let message = e.to_string();
    if let Some(start) = message.find("[RQL") {
        if let Some(len) = message[start..].find(']') {
            return Response::Error {
                code: message[start + 1..start + len].to_owned(),
                message,
            };
        }
    }
    error_response(e)
}

fn unknown_standing(name: &str) -> Response {
    Response::Error {
        code: "RQL500".into(),
        message: format!("no standing query named {name}"),
    }
}

/// The opening `RESULT` frame of a subscription: one table holding the
/// maintained result as of subscription time.
fn initial_result(sub: &Subscription) -> WireResult {
    WireResult {
        tables: vec![WireTable {
            columns: sub.initial.columns.clone(),
            rows: sub.initial.rows.iter().map(|r| r.to_vec()).collect(),
        }],
        reports: Vec::new(),
        snapshots: Vec::new(),
        elapsed_micros: 0,
    }
}

/// Drain a subscription's frame channel onto the socket: one `DELTA`
/// frame per maintained snapshot, then a terminal `END` frame when the
/// query is unregistered or the server drains. Blocks this connection
/// thread (a subscribed connection is push-mode until the stream ends);
/// a send failure means the client went away, which unsubscribes it —
/// the engine prunes the channel on its next push.
fn stream_subscription(name: &str, sub: &Subscription, stream: &mut TcpStream) -> io::Result<()> {
    for frame in sub.frames.iter() {
        match frame {
            PushFrame::Delta(d) => {
                send(
                    stream,
                    &Response::Delta(WireDelta {
                        name: name.to_owned(),
                        snap_id: d.snap_id,
                        added: d.added.iter().map(|r| r.to_vec()).collect(),
                        removed: d.removed.iter().map(|r| r.to_vec()).collect(),
                    }),
                )?;
                rql_trace::instant(rql_trace::SpanId::JobReply);
            }
            PushFrame::End(reason) => {
                send(
                    stream,
                    &Response::End {
                        name: name.to_owned(),
                        reason: reason.as_str().to_owned(),
                    },
                )?;
                return Ok(());
            }
        }
    }
    // Channel closed without a terminal frame: the engine itself is
    // gone; the connection just returns to request-response mode.
    Ok(())
}

/// Analyzer pre-flight for `PREPARE`: lint against the live catalogs of
/// both databases, no execution.
fn prepare(session: &Arc<ServerSession>, text: &str) -> Vec<WireDiagnostic> {
    let program = match parse_program(text) {
        Ok(p) => p,
        Err(d) => return vec![wire_diagnostic(*d)],
    };
    // Sync first so Qs queries over SnapIds resolve against reality.
    let _ = session.sync_snapids();
    let rql_session = session.session();
    // check_program layers the whole-program dataflow passes, the
    // historical-catalog widening retry, and dedup on top of the plain
    // statement analysis; fall back to the latter only if env capture fails.
    let analysis = match rql_session.check_program(&program) {
        Ok(a) => a,
        Err(_) => {
            let snap_env = SchemaEnv::from_database(rql_session.snap_db()).unwrap_or_default();
            let aux_env = SchemaEnv::from_database(rql_session.aux_db()).unwrap_or_default();
            analyze_program(&program, &snap_env, &aux_env)
        }
    };
    analysis
        .diagnostics
        .into_iter()
        .map(wire_diagnostic)
        .collect()
}

fn wire_diagnostic(d: rql::Diagnostic) -> WireDiagnostic {
    // Only program-coordinate fixes make sense on the wire: the client
    // applies them against the text it sent in PREPARE.
    let fix = d
        .fix
        .filter(|_| d.source == rql::SourceKind::Program)
        .map(|f| WireFix {
            start: f.span.start as u32,
            end: f.span.end as u32,
            applicability: match f.applicability {
                rql::Applicability::MachineApplicable => 0,
                rql::Applicability::MaybeIncorrect => 1,
                rql::Applicability::HasPlaceholders => 2,
            },
            replacement: f.replacement,
        });
    WireDiagnostic {
        code: d.code.as_str().into(),
        severity: match d.severity {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        },
        message: d.message,
        span: d.span.map(|s| (s.start as u32, s.end as u32)),
        fix,
    }
}

fn wire_result(run: &ProgramRun, elapsed: Duration) -> WireResult {
    WireResult {
        tables: run
            .tables
            .iter()
            .map(|t| WireTable {
                columns: t.columns.clone(),
                rows: t.rows.iter().map(|r| r.to_vec()).collect(),
            })
            .collect(),
        reports: run
            .reports
            .iter()
            .map(|(table, report)| {
                let stats = report.accumulated_stats();
                WireReport {
                    table: table.clone(),
                    iterations: report.iteration_count() as u64,
                    qq_rows: report.total_qq_rows(),
                    pages_skipped_delta: stats.pages_skipped_delta,
                    pages_pruned_filter: stats.pages_pruned_filter,
                    pagelog_reads: stats.io.pagelog_reads,
                    cache_hits: stats.io.cache_hits,
                }
            })
            .collect(),
        snapshots: run.snapshots.clone(),
        elapsed_micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
    }
}
