//! Offline stand-in for the `criterion` crate (see
//! `crates/shims/README.md`).
//!
//! Provides the harness surface `benches/micro.rs` uses — groups,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and
//! the `criterion_group!` / `criterion_main!` macros — with simple
//! mean-wall-clock reporting instead of criterion's full statistics.
//! Honors `CRITERION_MEASURE_MS` to lengthen or shorten measurement.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Benchmark driver; created by [`criterion_main!`].
#[derive(Debug)]
pub struct Criterion {
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        // First CLI arg (as cargo bench passes it) filters benchmarks by
        // substring, mirroring criterion's behavior.
        let filter = std::env::args()
            .nth(1)
            .filter(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            measure: Duration::from_millis(ms),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        self.run(&id, f);
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measure: self.measure,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        println!(
            "{id:<48} time: [{}]  ({} iterations)",
            fmt_duration(mean),
            b.iters
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run(&full, f);
    }

    /// End the group (no-op; kept for API fidelity).
    pub fn finish(self) {}
}

/// How batched inputs are sized; only the variants the repo uses.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Measures closures; handed to `bench_function` callbacks.
pub struct Bencher {
    measure: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost for batching.
        let warm_start = Instant::now();
        black_box(routine());
        let est = warm_start.elapsed().max(Duration::from_nanos(50));
        let target_iters = (self.measure.as_nanos() / est.as_nanos()).clamp(10, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = target_iters;
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up and estimate.
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let est = warm_start.elapsed().max(Duration::from_nanos(50));
        let target_iters = (self.measure.as_nanos() / est.as_nanos()).clamp(10, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = target_iters;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            measure: Duration::from_millis(2),
            filter: None,
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
