//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API: a
//! panic while a guard is held does not poison the lock for other
//! threads, matching the semantics the rest of the workspace relies on.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panicking holder.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
