//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! A deterministic property-testing mini-framework covering the surface
//! this workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_filter`, weighted [`prop_oneof!`], `any::<T>()` for
//! primitives, [`Just`], `collection::vec`, numeric range strategies, a
//! small regex subset for `String` strategies, and the
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking — a failing case reports the
//! generated inputs and the deterministic per-test seed instead; case
//! generation is seeded from the test name, so runs are reproducible
//! without a persistence file.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Run-loop configuration and error plumbing for [`crate::proptest!`].

    /// How many cases a `proptest!` block runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case does not count, try another.
        Reject(String),
        /// A `prop_assert*!` failed — the property is falsified.
        Fail(String),
    }

    /// Deterministic generator driving a `proptest!` block
    /// (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test's name), FNV-1a hashed.
        pub fn from_label(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Seed from a 64-bit value via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next uniform 64-bit word (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound == 1 {
                return 0;
            }
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Object-safe core is [`Strategy::generate`]; the combinators are
/// provided methods requiring `Self: Sized`.
pub trait Strategy {
    /// The generated type. `Debug` so failing cases can be reported.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase into a boxed strategy (for heterogeneous `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local resampling stands in for upstream's global rejection.
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among strategies of a common value type — the
/// engine behind [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        OneOf { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed correctly")
    }
}

/// Primitive types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for a primitive: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of full-bit-pattern floats (covers NaN/inf/subnormals) and
        // ordinary magnitudes, like upstream's layered generator.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.unit_f64() - 0.5) * 2e9,
            _ => (rng.unit_f64() - 0.5) * 200.0,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a regex *subset*: `[class]{lo,hi}` where the
/// class lists literal characters and `a-z` style ranges, and the
/// repetition is `{n}`, `{lo,hi}` or absent (meaning exactly one).
///
/// This covers the patterns used in this workspace; anything fancier
/// panics with a pointer to this shim.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_regex(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse the `[class]{lo,hi}` subset; returns (alphabet, min_len, max_len).
fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "string strategy {pattern:?} is outside the regex subset the \
             proptest shim supports ([class] with optional {{lo,hi}}); \
             extend crates/shims/proptest if needed"
        )
    };
    let mut chars = pattern.chars().peekable();
    if chars.next() != Some('[') {
        unsupported();
    }
    let mut alphabet = Vec::new();
    let mut class: Vec<char> = Vec::new();
    for c in chars.by_ref() {
        if c == ']' {
            break;
        }
        class.push(c);
    }
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` that is neither first nor last).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                unsupported();
            }
            for cp in lo..=hi {
                if let Some(ch) = char::from_u32(cp) {
                    alphabet.push(ch);
                }
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported();
    }
    let rest: String = chars.collect();
    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported();
    };
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok(), b.trim().parse().ok()),
        None => {
            let n = body.trim().parse().ok();
            (n, n)
        }
    };
    match (lo, hi) {
        (Some(lo), Some(hi)) if lo <= hi => (alphabet, lo, hi),
        _ => unsupported(),
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{fmt, Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import test files use: strategies, config, and macros.
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Run a block of property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10i64, v in collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let max_rejects = (config.cases as u64) * 50 + 1000;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let __case_desc = || {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    s
                };
                let __desc = __case_desc();
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "{}: prop_assume! rejected {} cases (only {} passed)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "property {} falsified at case {}:\n{}\ninputs:\n{}",
                            stringify!($name), passed, msg, __desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
}

/// Assert within a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Weighted (or unweighted) choice among strategies with a common value
/// type: `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_maps(x in 1i64..10, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_weights(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn regex_subset(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn filter_resamples() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = (0u8..10).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::from_label("filter");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
