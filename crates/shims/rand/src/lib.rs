//! Offline stand-in for the `rand` crate, 0.9 API (see
//! `crates/shims/README.md`).
//!
//! Provides the surface the workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::random_range` over integer/float ranges, and `Rng::random_bool`.
//! The generator is xoshiro256++ seeded through SplitMix64 — a solid
//! statistical PRNG, deterministic for a given seed. Streams do NOT match
//! upstream rand's `StdRng`; nothing in this workspace depends on the
//! exact stream, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampling range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range using `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of a generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, generic over the range type.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from an integer or float range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, mirroring upstream rand.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map a uniform word to [0, 1) with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = uniform_below(rng, span);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform draw in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Work in u64 words; span never exceeds 2^65 for supported types, so
    // two words cover it. Rejection zone keeps the draw unbiased.
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX % span64);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return (v % span64) as u128;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            // span > 2^64 means the rejection zone is at least half the
            // space; a couple of iterations suffice in expectation.
            let zone = u128::MAX - (u128::MAX % span);
            if v < zone {
                return v % span;
            }
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

// No f32 impls: a second float impl would leave `0.0..1.0` literals
// ambiguous under inference, and the workspace only samples f64.

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(1..=5i64);
            assert!((1..=5).contains(&v));
            let v = rng.random_range(0..25i64);
            assert!((0..25).contains(&v));
            let f = rng.random_range(-999.99..9999.99);
            assert!((-999.99..9999.99).contains(&f));
            let u = rng.random_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn rejection_sampling_covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
