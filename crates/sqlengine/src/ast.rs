//! Abstract syntax tree for the supported SQL subset.
//!
//! The dialect is the slice of SQLite the paper's programs use, plus the
//! Retro extension `SELECT AS OF <sid> …` (paper §2, Figure 3) and enough
//! general SQL (joins, grouping, ordering, expression calculus, UDF calls)
//! to express every query in Table 1 and the worked examples.

use crate::lexer::Span;
use crate::schema::ColumnType;
use crate::value::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SELECT …`
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES … | SELECT …`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Rows or subquery.
        source: InsertSource,
    },
    /// `UPDATE t SET c = e, … [WHERE e]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE e]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `CREATE [TEMP] TABLE t (col type, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
        /// TEMP flag (informational; temp-ness is a database property
        /// here, matching RQL's separate non-snapshotable database).
        temp: bool,
        /// IF NOT EXISTS flag.
        if_not_exists: bool,
    },
    /// `CREATE [TEMP] TABLE t AS SELECT …`
    CreateTableAs {
        /// Table name.
        name: String,
        /// Source query.
        select: SelectStmt,
        /// TEMP flag.
        temp: bool,
    },
    /// `CREATE INDEX i ON t (cols)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns.
        columns: Vec<String>,
    },
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT [WITH SNAPSHOT]` — the Retro snapshot declaration.
    Commit {
        /// Whether the commit declares a snapshot.
        with_snapshot: bool,
    },
    /// `ROLLBACK`
    Rollback,
}

/// Source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT … SELECT`.
    Select(Box<SelectStmt>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Retro extension: `SELECT AS OF <expr> …` — run over this snapshot.
    pub as_of: Option<Expr>,
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Tables in `FROM` (comma-separated ones become cross joins
    /// constrained by WHERE, as in Table 1's Qq_cpu).
    pub from: Vec<TableRef>,
    /// Explicit `JOIN … ON` clauses.
    pub joins: Vec<Join>,
    /// `WHERE`.
    pub where_clause: Option<Expr>,
    /// `GROUP BY`.
    pub group_by: Vec<Expr>,
    /// `HAVING`.
    pub having: Option<Expr>,
    /// `ORDER BY` (expression, descending?).
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT`.
    pub limit: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    TableWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
    /// Source location of the table name, when parsed from text.
    pub span: Option<Span>,
}

/// Spans are locations, not meaning: two references to the same table are
/// equal even when they come from different places in the source.
impl PartialEq for TableRef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.alias == other.alias
    }
}

impl TableRef {
    /// The name this table binds in scope.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An explicit join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// `ON` condition.
    pub on: Expr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `||`
    Concat,
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `NOT`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified.
    Column {
        /// Table/alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call: aggregate, scalar built-in, or UDF.
    Function {
        /// Function name (lower-case).
        name: String,
        /// Arguments; `COUNT(*)` has a single [`Expr::Star`] argument.
        args: Vec<Expr>,
        /// `DISTINCT` inside the call.
        distinct: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (…)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional operand (`CASE x WHEN 1 …`); `None` for searched CASE.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` arms in order.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` branch (NULL when absent).
        else_branch: Option<Box<Expr>>,
    },
    /// `*` inside `COUNT(*)`.
    Star,
}

impl Expr {
    /// Integer literal helper.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Value::Integer(i))
    }

    /// Text literal helper.
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Literal(Value::Text(s.into()))
    }

    /// Unqualified column helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Whether this expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } if is_aggregate_name(name) => true,
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                operand,
                arms,
                else_branch,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_branch.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }
}

/// Whether `name` (lower-case) is one of the built-in aggregates.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg" | "total")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "count".into(),
            args: vec![Expr::Star],
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::int(1)),
            rhs: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar = Expr::Function {
            name: "abs".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            name: "orders".into(),
            alias: Some("o".into()),
            span: None,
        };
        assert_eq!(t.binding(), "o");
        let t = TableRef {
            name: "orders".into(),
            alias: None,
            span: None,
        };
        assert_eq!(t.binding(), "orders");
    }
}
