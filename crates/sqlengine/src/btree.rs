//! Page-backed B-tree for native (persistent) secondary indexes.
//!
//! Native indexes matter to the paper twice over: a snapshot "includes the
//! entire state of the database (e.g., tables, indexes, system catalogs)"
//! so indexed databases archive more pages (Figure 9's SPT/I-O growth),
//! and a native index lets a snapshot query skip SQLite's ad-hoc covering
//! index build (Figure 9's dominant cost without one).
//!
//! Keys are order-preserving byte strings produced by
//! [`crate::record::encode_index_key`], made unique by appending the heap
//! [`RecordId`]. Nodes are whole pages; because any modification
//! copy-on-writes the page anyway, nodes are decoded, mutated and
//! re-encoded wholesale — simple and exactly as expensive in page I/O.
//! Deletion does not rebalance (pages may go sparse; acceptable for the
//! workloads reproduced here and documented in DESIGN.md).

use rql_pagestore::{Page, PageId, WriteTxn};

use crate::error::{Result, SqlError};
use crate::heap::RecordId;
use crate::pagesource::PageSource;

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;
const OFF_TYPE: usize = 0;
const OFF_COUNT: usize = 1;
const OFF_LINK: usize = 3; // next leaf / rightmost child
const HEADER: usize = 11;
const NIL: u64 = u64::MAX;

/// A B-tree rooted at a fixed page (the root id is what the catalog
/// stores, so the root page never moves).
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: PageId,
}

#[derive(Debug)]
enum Node {
    Leaf {
        next: u64,
        entries: Vec<(Vec<u8>, RecordId)>,
    },
    Internal {
        rightmost: u64,
        /// `(separator, child)`: `child` holds keys `< separator`.
        entries: Vec<(Vec<u8>, u64)>,
    },
}

impl BTree {
    /// Open a B-tree rooted at `root`.
    pub fn new(root: PageId) -> Self {
        BTree { root }
    }

    /// Allocate an empty tree.
    pub fn create(txn: &mut WriteTxn) -> Result<BTree> {
        let root = txn.allocate_page();
        let mut page = txn.page_for_update(root)?;
        encode_node(
            &Node::Leaf {
                next: NIL,
                entries: Vec::new(),
            },
            &mut page,
        )?;
        txn.write_page(root, page)?;
        Ok(BTree { root })
    }

    /// Root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Insert `(key, rid)`. The rid is appended to the key internally, so
    /// duplicate user keys are allowed.
    pub fn insert(&self, txn: &mut WriteTxn, key: &[u8], rid: RecordId) -> Result<()> {
        let full = full_key(key, rid);
        if let Some((sep, right)) = self.insert_rec(txn, self.root, &full, rid)? {
            // Root split: move the left half out, make the root internal.
            let left = txn.allocate_page();
            let root_page = txn.read_page(self.root)?;
            txn.write_page(left, (*root_page).clone())?;
            let mut new_root = txn.page_for_update(self.root)?;
            encode_node(
                &Node::Internal {
                    rightmost: right,
                    entries: vec![(sep, left.0)],
                },
                &mut new_root,
            )?;
            txn.write_page(self.root, new_root)?;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        txn: &mut WriteTxn,
        pid: PageId,
        full: &[u8],
        rid: RecordId,
    ) -> Result<Option<(Vec<u8>, u64)>> {
        let mut node = decode_node(txn.read_page(pid)?.as_ref())?;
        match &mut node {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|(k, _)| k.as_slice() < full);
                entries.insert(pos, (full.to_vec(), rid));
                let page_size = txn.read_page(pid)?.size();
                if node_size(&node) <= page_size {
                    self.write_node(txn, pid, &node)?;
                    return Ok(None);
                }
                // Split: right half moves to a new leaf.
                let Node::Leaf { entries, next } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let right_pid = txn.allocate_page();
                self.write_node(
                    txn,
                    right_pid,
                    &Node::Leaf {
                        next,
                        entries: right_entries,
                    },
                )?;
                self.write_node(
                    txn,
                    pid,
                    &Node::Leaf {
                        next: right_pid.0,
                        entries: left_entries,
                    },
                )?;
                Ok(Some((sep, right_pid.0)))
            }
            Node::Internal { entries, rightmost } => {
                let pos = entries.partition_point(|(sep, _)| sep.as_slice() <= full);
                let child = if pos < entries.len() {
                    entries[pos].1
                } else {
                    *rightmost
                };
                let Some((sep, new_right)) = self.insert_rec(txn, PageId(child), full, rid)? else {
                    return Ok(None);
                };
                // Child split into (child: < sep) and (new_right: >= sep).
                if pos < entries.len() {
                    entries.insert(pos, (sep, child));
                    entries[pos + 1].1 = new_right;
                } else {
                    entries.push((sep, child));
                    *rightmost = new_right;
                }
                let page_size = txn.read_page(pid)?.size();
                if node_size(&node) <= page_size {
                    self.write_node(txn, pid, &node)?;
                    return Ok(None);
                }
                let Node::Internal { entries, rightmost } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                // Promote entries[mid].0; its child becomes the left
                // node's rightmost.
                let promoted = entries[mid].0.clone();
                let left_rightmost = entries[mid].1;
                let right_entries = entries[mid + 1..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let right_pid = txn.allocate_page();
                self.write_node(
                    txn,
                    right_pid,
                    &Node::Internal {
                        rightmost,
                        entries: right_entries,
                    },
                )?;
                self.write_node(
                    txn,
                    pid,
                    &Node::Internal {
                        rightmost: left_rightmost,
                        entries: left_entries,
                    },
                )?;
                Ok(Some((promoted, right_pid.0)))
            }
        }
    }

    fn write_node(&self, txn: &mut WriteTxn, pid: PageId, node: &Node) -> Result<()> {
        let mut page = txn.page_for_update(pid)?;
        encode_node(node, &mut page)?;
        txn.write_page(pid, page)?;
        Ok(())
    }

    /// Remove `(key, rid)`. Returns whether the entry was found.
    pub fn delete(&self, txn: &mut WriteTxn, key: &[u8], rid: RecordId) -> Result<bool> {
        let full = full_key(key, rid);
        let mut pid = self.root;
        loop {
            let node = decode_node(txn.read_page(pid)?.as_ref())?;
            match node {
                Node::Internal { entries, rightmost } => {
                    let pos = entries.partition_point(|(sep, _)| sep.as_slice() <= &full[..]);
                    pid = PageId(if pos < entries.len() {
                        entries[pos].1
                    } else {
                        rightmost
                    });
                }
                Node::Leaf { mut entries, next } => {
                    let Ok(pos) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(&full[..]))
                    else {
                        return Ok(false);
                    };
                    entries.remove(pos);
                    self.write_node(txn, pid, &Node::Leaf { next, entries })?;
                    return Ok(true);
                }
            }
        }
    }

    /// All rids whose key starts with `prefix` (equality on a prefix of
    /// the indexed columns).
    pub fn scan_prefix<S: PageSource>(&self, src: &S, prefix: &[u8]) -> Result<Vec<RecordId>> {
        let mut out = Vec::new();
        self.scan_from(src, prefix, |key, rid| {
            if key.starts_with(prefix) {
                out.push(rid);
                Ok(true)
            } else {
                Ok(false)
            }
        })?;
        Ok(out)
    }

    /// Every entry in key order.
    pub fn scan_all<S: PageSource>(
        &self,
        src: &S,
        mut f: impl FnMut(&[u8], RecordId) -> Result<bool>,
    ) -> Result<()> {
        self.scan_from(src, &[], |k, r| f(k, r))
    }

    /// Iterate entries with key `>= lo` in order until `f` returns false.
    ///
    /// The read path walks encoded pages in place — no per-node
    /// allocation or entry copying — so index probes stay cheap even at
    /// `AggregateDataInTable`'s one-probe-per-record rate.
    pub fn scan_from<S: PageSource>(
        &self,
        src: &S,
        lo: &[u8],
        mut f: impl FnMut(&[u8], RecordId) -> Result<bool>,
    ) -> Result<()> {
        // Descend to the leaf that would contain `lo`, in place.
        let mut pid = self.root;
        let mut page = src.page(pid)?;
        loop {
            match page.bytes()[OFF_TYPE] {
                TYPE_INTERNAL => {
                    pid = PageId(find_child_inline(&page, lo));
                    page = src.page(pid)?;
                }
                TYPE_LEAF => break,
                t => return Err(SqlError::Invalid(format!("bad b-tree node type {t}"))),
            }
        }
        // Walk leaf entries (and the right-sibling chain) in place.
        let mut skipping = true;
        loop {
            let count = page.read_u16(OFF_COUNT) as usize;
            let mut pos = HEADER;
            for _ in 0..count {
                let klen = page.read_u16(pos) as usize;
                let key = page.read_slice(pos + 2, klen);
                let rid = RecordId {
                    page: PageId(page.read_u64(pos + 2 + klen)),
                    slot: page.read_u16(pos + 2 + klen + 8),
                };
                pos += 2 + klen + 10;
                if skipping && key < lo {
                    continue;
                }
                skipping = false;
                if !f(key, rid)? {
                    return Ok(());
                }
            }
            let next = page.read_u64(OFF_LINK);
            if next == NIL {
                return Ok(());
            }
            page = src.page(PageId(next))?;
            if page.bytes()[OFF_TYPE] != TYPE_LEAF {
                return Err(SqlError::Invalid(
                    "leaf chain points at internal node".into(),
                ));
            }
        }
    }

    /// Number of entries (walks the whole tree).
    pub fn len<S: PageSource>(&self, src: &S) -> Result<usize> {
        let mut n = 0;
        self.scan_all(src, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }
}

/// In an internal page, find the child that would contain `key`, reading
/// entries in place (semantics match the decoded `partition_point` path:
/// first separator strictly greater than `key` wins, else rightmost).
fn find_child_inline(page: &Page, key: &[u8]) -> u64 {
    let count = page.read_u16(OFF_COUNT) as usize;
    let mut pos = HEADER;
    for _ in 0..count {
        let klen = page.read_u16(pos) as usize;
        let sep = page.read_slice(pos + 2, klen);
        let child = page.read_u64(pos + 2 + klen);
        if key < sep {
            return child;
        }
        pos += 2 + klen + 8;
    }
    page.read_u64(OFF_LINK) // rightmost
}

fn full_key(key: &[u8], rid: RecordId) -> Vec<u8> {
    let mut full = Vec::with_capacity(key.len() + 10);
    full.extend_from_slice(key);
    full.extend_from_slice(&rid.page.0.to_be_bytes());
    full.extend_from_slice(&rid.slot.to_be_bytes());
    full
}

fn node_size(node: &Node) -> usize {
    match node {
        Node::Leaf { entries, .. } => {
            HEADER + entries.iter().map(|(k, _)| 2 + k.len() + 10).sum::<usize>()
        }
        Node::Internal { entries, .. } => {
            HEADER + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
        }
    }
}

fn encode_node(node: &Node, page: &mut Page) -> Result<()> {
    if node_size(node) > page.size() {
        return Err(SqlError::Constraint(format!(
            "index entry too large for page of {} bytes",
            page.size()
        )));
    }
    let mut pos = HEADER;
    match node {
        Node::Leaf { next, entries } => {
            page.bytes_mut()[OFF_TYPE] = TYPE_LEAF;
            page.write_u16(OFF_COUNT, entries.len() as u16);
            page.write_u64(OFF_LINK, *next);
            for (k, rid) in entries {
                page.write_u16(pos, k.len() as u16);
                page.write_slice(pos + 2, k);
                pos += 2 + k.len();
                page.write_u64(pos, rid.page.0);
                page.write_u16(pos + 8, rid.slot);
                pos += 10;
            }
        }
        Node::Internal { rightmost, entries } => {
            page.bytes_mut()[OFF_TYPE] = TYPE_INTERNAL;
            page.write_u16(OFF_COUNT, entries.len() as u16);
            page.write_u64(OFF_LINK, *rightmost);
            for (k, child) in entries {
                page.write_u16(pos, k.len() as u16);
                page.write_slice(pos + 2, k);
                pos += 2 + k.len();
                page.write_u64(pos, *child);
                pos += 8;
            }
        }
    }
    Ok(())
}

fn decode_node(page: &Page) -> Result<Node> {
    let ty = page.bytes()[OFF_TYPE];
    let count = page.read_u16(OFF_COUNT) as usize;
    let link = page.read_u64(OFF_LINK);
    let mut pos = HEADER;
    match ty {
        TYPE_LEAF => {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = page.read_u16(pos) as usize;
                let key = page.read_slice(pos + 2, klen).to_vec();
                pos += 2 + klen;
                let rid = RecordId {
                    page: PageId(page.read_u64(pos)),
                    slot: page.read_u16(pos + 8),
                };
                pos += 10;
                entries.push((key, rid));
            }
            Ok(Node::Leaf {
                next: link,
                entries,
            })
        }
        TYPE_INTERNAL => {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = page.read_u16(pos) as usize;
                let key = page.read_slice(pos + 2, klen).to_vec();
                pos += 2 + klen;
                entries.push((key, page.read_u64(pos)));
                pos += 8;
            }
            Ok(Node::Internal {
                rightmost: link,
                entries,
            })
        }
        t => Err(SqlError::Invalid(format!("bad b-tree node type {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_index_key;
    use crate::value::Value;
    use rql_pagestore::{Pager, PagerConfig};
    use std::sync::Arc;

    fn pager(page_size: usize) -> Arc<Pager> {
        Arc::new(Pager::new(PagerConfig {
            page_size,
            cache_capacity: 64,
            wal_sync_on_commit: false,
        }))
    }

    fn key(v: i64) -> Vec<u8> {
        let mut k = Vec::new();
        encode_index_key(&[Value::Integer(v)], &mut k);
        k
    }

    fn rid(n: u64) -> RecordId {
        RecordId {
            page: PageId(n),
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn insert_and_lookup_small() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..10 {
            tree.insert(&mut txn, &key(i), rid(i as u64)).unwrap();
        }
        for i in 0..10 {
            let hits = tree.scan_prefix(&txn, &key(i)).unwrap();
            assert_eq!(hits, vec![rid(i as u64)], "key {i}");
        }
        assert!(tree.scan_prefix(&txn, &key(99)).unwrap().is_empty());
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        // Insert in a scrambled deterministic order.
        let n = 500i64;
        let mut order: Vec<i64> = (0..n).collect();
        let mut state = 7u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &i in &order {
            tree.insert(&mut txn, &key(i), rid(i as u64)).unwrap();
        }
        assert_eq!(tree.len(&txn).unwrap(), n as usize);
        // Full scan must come back in key order.
        let mut prev: Option<Vec<u8>> = None;
        tree.scan_all(&txn, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            prev = Some(k.to_vec());
            Ok(true)
        })
        .unwrap();
        // Every key findable.
        for i in 0..n {
            assert_eq!(tree.scan_prefix(&txn, &key(i)).unwrap().len(), 1, "key {i}");
        }
    }

    #[test]
    fn duplicate_keys_supported() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for r in 0..20 {
            tree.insert(&mut txn, &key(5), rid(r)).unwrap();
        }
        let hits = tree.scan_prefix(&txn, &key(5)).unwrap();
        assert_eq!(hits.len(), 20);
    }

    #[test]
    fn delete_specific_duplicate() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        tree.insert(&mut txn, &key(1), rid(10)).unwrap();
        tree.insert(&mut txn, &key(1), rid(11)).unwrap();
        assert!(tree.delete(&mut txn, &key(1), rid(10)).unwrap());
        let hits = tree.scan_prefix(&txn, &key(1)).unwrap();
        assert_eq!(hits, vec![rid(11)]);
        assert!(!tree.delete(&mut txn, &key(1), rid(10)).unwrap());
    }

    #[test]
    fn delete_across_splits() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..300 {
            tree.insert(&mut txn, &key(i), rid(i as u64)).unwrap();
        }
        for i in (0..300).step_by(2) {
            assert!(tree.delete(&mut txn, &key(i), rid(i as u64)).unwrap());
        }
        assert_eq!(tree.len(&txn).unwrap(), 150);
        for i in 0..300 {
            let found = !tree.scan_prefix(&txn, &key(i)).unwrap().is_empty();
            assert_eq!(found, i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn multi_column_prefix_scan() {
        let pager = pager(512);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let mut n = 0u64;
        for a in ["x", "y"] {
            for b in 0..10i64 {
                let mut k = Vec::new();
                encode_index_key(&[Value::text(a), Value::Integer(b)], &mut k);
                tree.insert(&mut txn, &k, rid(n)).unwrap();
                n += 1;
            }
        }
        let mut prefix = Vec::new();
        encode_index_key(&[Value::text("x")], &mut prefix);
        assert_eq!(tree.scan_prefix(&txn, &prefix).unwrap().len(), 10);
        let mut exact = Vec::new();
        encode_index_key(&[Value::text("y"), Value::Integer(3)], &mut exact);
        assert_eq!(tree.scan_prefix(&txn, &exact).unwrap().len(), 1);
    }

    #[test]
    fn text_keys_large_volume() {
        let pager = pager(512);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..400i64 {
            let mut k = Vec::new();
            encode_index_key(&[Value::text(format!("user-{i:05}"))], &mut k);
            tree.insert(&mut txn, &k, rid(i as u64)).unwrap();
        }
        let mut probe = Vec::new();
        encode_index_key(&[Value::text("user-00123")], &mut probe);
        assert_eq!(tree.scan_prefix(&txn, &probe).unwrap(), vec![rid(123)]);
    }

    #[test]
    fn oversized_key_rejected() {
        let pager = pager(128);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let mut k = Vec::new();
        encode_index_key(&[Value::text("z".repeat(400))], &mut k);
        assert!(tree.insert(&mut txn, &k, rid(0)).is_err());
    }

    #[test]
    fn scan_from_midpoint() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..100 {
            tree.insert(&mut txn, &key(i), rid(i as u64)).unwrap();
        }
        let mut seen = Vec::new();
        tree.scan_from(&txn, &key(90), |_, r| {
            seen.push(r);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], rid(90));
    }
}
