//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the thread
//! running a query and whoever wants to stop it (a client `CANCEL`, a
//! server-side deadline watchdog). The executor polls the token at
//! checkpoints — between heap-scan row batches, between joined tables,
//! and (one layer up) between snapshots of an RQL mechanism loop — and
//! unwinds with [`SqlError::Cancelled`](crate::SqlError::Cancelled) when
//! it has been tripped. This is the `sqlite3_interrupt` analog: the flag
//! is sticky until [`CancelToken::clear`] is called, so a cancellation
//! that lands between statements still stops the next one.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::error::{Result, SqlError};

/// Why a query was cancelled. The cause picks the `[RQL3xx]` runtime
/// diagnostic code surfaced to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The client asked for it (`CANCEL` verb, Ctrl-C, …) — `RQL300`.
    Client,
    /// A wall-clock deadline expired — `RQL301`.
    Timeout,
}

impl CancelCause {
    /// Stable diagnostic code for this cause.
    pub fn code(self) -> &'static str {
        match self {
            CancelCause::Client => "RQL300",
            CancelCause::Timeout => "RQL301",
        }
    }

    /// Human-readable reason (no code prefix).
    pub fn reason(self) -> &'static str {
        match self {
            CancelCause::Client => "query cancelled by client",
            CancelCause::Timeout => "query deadline exceeded",
        }
    }
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code(), self.reason())
    }
}

const STATE_LIVE: u8 = 0;
const STATE_CLIENT: u8 = 1;
const STATE_TIMEOUT: u8 = 2;

/// Shared cancellation flag. Clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token. The first cause wins; later calls are no-ops so a
    /// racing client-cancel and timeout report one coherent code.
    pub fn cancel(&self, cause: CancelCause) {
        let v = match cause {
            CancelCause::Client => STATE_CLIENT,
            CancelCause::Timeout => STATE_TIMEOUT,
        };
        let _ = self
            .state
            .compare_exchange(STATE_LIVE, v, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Has the token been tripped (and with what cause)?
    pub fn cause(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Acquire) {
            STATE_CLIENT => Some(CancelCause::Client),
            STATE_TIMEOUT => Some(CancelCause::Timeout),
            _ => None,
        }
    }

    /// `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != STATE_LIVE
    }

    /// Checkpoint: `Err(SqlError::Cancelled)` if the token is tripped.
    pub fn check(&self) -> Result<()> {
        match self.cause() {
            Some(cause) => Err(SqlError::Cancelled(cause)),
            None => Ok(()),
        }
    }

    /// Re-arm the token for the next query (the flag is sticky otherwise,
    /// matching `sqlite3_interrupt` semantics).
    pub fn clear(&self) {
        self.state.store(STATE_LIVE, Ordering::Release);
    }
}

/// Poll cadence for row-loop checkpoints: check the atomic once per this
/// many rows so the hot loop stays branch-cheap.
pub const CHECK_EVERY_ROWS: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cause_wins_and_clear_rearms() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        t.cancel(CancelCause::Timeout);
        t.cancel(CancelCause::Client); // loses the race
        assert_eq!(t.cause(), Some(CancelCause::Timeout));
        let err = t.check().unwrap_err();
        assert!(err.to_string().contains("RQL301"), "{err}");
        t.clear();
        assert!(t.check().is_ok());
        t.cancel(CancelCause::Client);
        assert!(t.check().unwrap_err().to_string().contains("RQL300"));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel(CancelCause::Client);
        assert!(t.is_cancelled());
        assert_eq!(t.cause(), Some(CancelCause::Client));
    }
}
