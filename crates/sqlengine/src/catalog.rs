//! The system catalog.
//!
//! The catalog is itself a heap table rooted at page 0, so a Retro
//! snapshot automatically captures it: "a persistent snapshot that
//! includes the state of the entire database (e.g., tables, indexes,
//! system catalogs)" (paper §2). `SELECT AS OF` therefore sees the schema
//! as it was at declaration time — tables or indexes created later simply
//! do not exist in the snapshot.
//!
//! Catalog rows: `(kind, name, table, root_page, columns)` where `kind` is
//! `"table"` or `"index"`, `root_page` is the object's root page id, and
//! `columns` serializes either the table schema or the index key columns.

use std::collections::HashMap;

use rql_pagestore::{PageId, WriteTxn};

use crate::error::{Result, SqlError};
use crate::heap::{FreeSpaceMap, HeapFile};
use crate::pagesource::PageSource;
use crate::record::encode_row;
use crate::schema::{IndexSchema, TableSchema};
use crate::value::Value;

/// A table known to the catalog.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Column schema.
    pub schema: TableSchema,
    /// Root page of the table's heap.
    pub root: PageId,
}

impl TableInfo {
    /// Heap accessor.
    pub fn heap(&self) -> HeapFile {
        HeapFile::new(self.root)
    }
}

/// An index known to the catalog.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Key schema.
    pub schema: IndexSchema,
    /// Root page of the index B-tree.
    pub root: PageId,
}

/// Parsed catalog contents as of some page source.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableInfo>,
    indexes: HashMap<String, IndexInfo>,
}

impl Catalog {
    /// The catalog heap's fixed root page.
    pub const ROOT: PageId = PageId(0);

    /// Initialize the catalog heap in an empty database.
    pub fn bootstrap(txn: &mut WriteTxn) -> Result<()> {
        debug_assert_eq!(txn.page_count(), 0, "bootstrap requires empty database");
        let heap = HeapFile::create(txn)?;
        debug_assert_eq!(heap.root(), Self::ROOT);
        Ok(())
    }

    /// Load the catalog visible through `src`. An empty database (no
    /// pages) yields an empty catalog.
    pub fn load<S: PageSource>(src: &S) -> Result<Catalog> {
        let mut catalog = Catalog::default();
        if src.page_count() == 0 {
            return Ok(catalog);
        }
        let heap = HeapFile::new(Self::ROOT);
        heap.scan(src, |_, row| {
            catalog.add_row(&row)?;
            Ok(true)
        })?;
        Ok(catalog)
    }

    fn add_row(&mut self, row: &[Value]) -> Result<()> {
        let get_text = |i: usize| -> Result<&str> {
            row.get(i)
                .and_then(Value::as_str)
                .ok_or_else(|| SqlError::Invalid("malformed catalog row".into()))
        };
        let kind = get_text(0)?.to_owned();
        let name = get_text(1)?.to_owned();
        let table = get_text(2)?.to_owned();
        let root = PageId(
            row.get(3)
                .and_then(Value::as_i64)
                .ok_or_else(|| SqlError::Invalid("malformed catalog root".into()))?
                as u64,
        );
        let columns = get_text(4)?.to_owned();
        match kind.as_str() {
            "table" => {
                let schema = TableSchema::columns_from_text(&name, &columns)?;
                self.tables.insert(name, TableInfo { schema, root });
            }
            "index" => {
                let cols = columns.split(',').map(str::to_owned).collect();
                let schema = IndexSchema::new(&name, &table, cols);
                self.indexes.insert(name, IndexInfo { schema, root });
            }
            k => {
                return Err(SqlError::Invalid(format!("unknown catalog kind {k}")));
            }
        }
        Ok(())
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Look up a table, as a `Result`.
    pub fn require_table(&self, name: &str) -> Result<&TableInfo> {
        self.table(name)
            .ok_or_else(|| SqlError::Unknown(format!("table {name}")))
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Option<&IndexInfo> {
        self.indexes.get(&name.to_ascii_lowercase())
    }

    /// All indexes on `table`.
    pub fn indexes_on(&self, table: &str) -> Vec<&IndexInfo> {
        let lower = table.to_ascii_lowercase();
        let mut v: Vec<&IndexInfo> = self
            .indexes
            .values()
            .filter(|i| i.schema.table == lower)
            .collect();
        v.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        v
    }

    /// An index whose *first* key column is `column` of `table`, if any.
    pub fn index_on_column(&self, table: &str, column: &str) -> Option<&IndexInfo> {
        let col = column.to_ascii_lowercase();
        self.indexes_on(table)
            .into_iter()
            .find(|i| i.schema.columns.first() == Some(&col))
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Persist a new table: allocates its heap and writes the catalog row.
    /// The caller supplies the catalog heap's free-space map.
    pub fn persist_table(
        txn: &mut WriteTxn,
        schema: &TableSchema,
        catalog_fsm: &mut FreeSpaceMap,
    ) -> Result<TableInfo> {
        let existing = Catalog::load(txn)?;
        if existing.table(&schema.name).is_some() {
            return Err(SqlError::Constraint(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let heap = HeapFile::create(txn)?;
        let row = vec![
            Value::text("table"),
            Value::text(schema.name.clone()),
            Value::text(schema.name.clone()),
            Value::Integer(heap.root().0 as i64),
            Value::text(schema.columns_to_text()),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        HeapFile::new(Self::ROOT).insert(txn, &buf, catalog_fsm)?;
        Ok(TableInfo {
            schema: schema.clone(),
            root: heap.root(),
        })
    }

    /// Persist a new (empty) index; the caller populates it.
    pub fn persist_index(
        txn: &mut WriteTxn,
        schema: &IndexSchema,
        catalog_fsm: &mut FreeSpaceMap,
    ) -> Result<IndexInfo> {
        let existing = Catalog::load(txn)?;
        if existing.index(&schema.name).is_some() {
            return Err(SqlError::Constraint(format!(
                "index {} already exists",
                schema.name
            )));
        }
        let table = existing.require_table(&schema.table)?;
        for col in &schema.columns {
            table.schema.require_column(col)?;
        }
        let tree = crate::btree::BTree::create(txn)?;
        let row = vec![
            Value::text("index"),
            Value::text(schema.name.clone()),
            Value::text(schema.table.clone()),
            Value::Integer(tree.root().0 as i64),
            Value::text(schema.columns_to_text()),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        HeapFile::new(Self::ROOT).insert(txn, &buf, catalog_fsm)?;
        Ok(IndexInfo {
            schema: schema.clone(),
            root: tree.root(),
        })
    }

    /// Remove a table and its indexes from the catalog. Heap and index
    /// pages are not reclaimed (no global free list; documented in
    /// DESIGN.md).
    pub fn remove_table(
        txn: &mut WriteTxn,
        name: &str,
        catalog_fsm: &mut FreeSpaceMap,
    ) -> Result<()> {
        let lower = name.to_ascii_lowercase();
        let catalog_heap = HeapFile::new(Self::ROOT);
        let mut to_delete = Vec::new();
        catalog_heap.scan(txn, |rid, row| {
            let kind = row[0].as_str().unwrap_or("");
            let obj_name = row[1].as_str().unwrap_or("");
            let obj_table = row[2].as_str().unwrap_or("");
            if (kind == "table" && obj_name == lower) || (kind == "index" && obj_table == lower) {
                to_delete.push(rid);
            }
            Ok(true)
        })?;
        if to_delete.is_empty() {
            return Err(SqlError::Unknown(format!("table {name}")));
        }
        for rid in to_delete {
            catalog_heap.delete(txn, rid, catalog_fsm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use rql_pagestore::{Pager, PagerConfig};
    use std::sync::Arc;

    fn pager() -> Arc<Pager> {
        Arc::new(Pager::new(PagerConfig {
            page_size: 512,
            cache_capacity: 16,
            wal_sync_on_commit: false,
        }))
    }

    fn orders_schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ("o_orderkey".into(), ColumnType::Integer),
                ("o_custkey".into(), ColumnType::Integer),
                ("o_totalprice".into(), ColumnType::Real),
            ],
        )
    }

    #[test]
    fn create_and_load_table() {
        let pager = pager();
        let mut txn = pager.begin_write().unwrap();
        Catalog::bootstrap(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let info = Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm).unwrap();
        pager.commit(txn, None, |_, _| Ok(())).unwrap();

        let view = pager.view();
        let catalog = Catalog::load(&view).unwrap();
        let loaded = catalog.require_table("ORDERS").unwrap();
        assert_eq!(loaded.schema, orders_schema());
        assert_eq!(loaded.root, info.root);
        assert_eq!(catalog.table_count(), 1);
        assert_eq!(catalog.table_names(), vec!["orders"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let pager = pager();
        let mut txn = pager.begin_write().unwrap();
        Catalog::bootstrap(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm).unwrap();
        assert!(matches!(
            Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn create_index_and_lookup() {
        let pager = pager();
        let mut txn = pager.begin_write().unwrap();
        Catalog::bootstrap(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm).unwrap();
        let idx = IndexSchema::new("idx_cust", "orders", vec!["o_custkey".into()]);
        Catalog::persist_index(&mut txn, &idx, &mut fsm).unwrap();
        pager.commit(txn, None, |_, _| Ok(())).unwrap();

        let catalog = Catalog::load(&pager.view()).unwrap();
        assert!(catalog.index("IDX_CUST").is_some());
        assert_eq!(catalog.indexes_on("orders").len(), 1);
        assert!(catalog.index_on_column("orders", "o_custkey").is_some());
        assert!(catalog.index_on_column("orders", "o_orderkey").is_none());
    }

    #[test]
    fn index_on_unknown_column_rejected() {
        let pager = pager();
        let mut txn = pager.begin_write().unwrap();
        Catalog::bootstrap(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm).unwrap();
        let idx = IndexSchema::new("bad", "orders", vec!["nope".into()]);
        assert!(Catalog::persist_index(&mut txn, &idx, &mut fsm).is_err());
    }

    #[test]
    fn drop_table_removes_indexes_too() {
        let pager = pager();
        let mut txn = pager.begin_write().unwrap();
        Catalog::bootstrap(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        Catalog::persist_table(&mut txn, &orders_schema(), &mut fsm).unwrap();
        let idx = IndexSchema::new("idx_cust", "orders", vec!["o_custkey".into()]);
        Catalog::persist_index(&mut txn, &idx, &mut fsm).unwrap();
        Catalog::remove_table(&mut txn, "orders", &mut fsm).unwrap();
        let catalog = Catalog::load(&txn).unwrap();
        assert!(catalog.table("orders").is_none());
        assert!(catalog.index("idx_cust").is_none());
        assert!(Catalog::remove_table(&mut txn, "orders", &mut fsm).is_err());
    }

    #[test]
    fn empty_database_loads_empty_catalog() {
        let pager = pager();
        let catalog = Catalog::load(&pager.view()).unwrap();
        assert_eq!(catalog.table_count(), 0);
    }
}
