//! Compiled expressions: name-resolved, ready to evaluate per row.
//!
//! The planner compiles AST [`Expr`]s against a [`Scope`] (the columns of
//! the joined row), replacing column references with row offsets and
//! aggregate calls with accumulator slots.

use std::sync::Arc;

use crate::ast::{is_aggregate_name, BinOp, Expr, UnaryOp};
use crate::error::{Result, SqlError};
use crate::udf::{UdfFn, UdfRegistry};
use crate::value::Value;

/// Column scope of a row stream: one entry per table binding, each with
/// its column names. The joined row is the concatenation, in order.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    bindings: Vec<(String, Vec<String>)>,
}

impl Scope {
    /// Empty scope (queries without FROM).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add a table binding with its column names; returns the binding's
    /// starting offset in the joined row.
    pub fn push(&mut self, alias: &str, columns: Vec<String>) -> usize {
        let off = self.width();
        self.bindings.push((alias.to_ascii_lowercase(), columns));
        off
    }

    /// Total number of columns in the joined row.
    pub fn width(&self) -> usize {
        self.bindings.iter().map(|(_, c)| c.len()).sum()
    }

    /// Resolve a possibly qualified column to a row offset.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let lname = name.to_ascii_lowercase();
        let ltable = table.map(str::to_ascii_lowercase);
        let mut found = None;
        let mut off = 0usize;
        for (alias, cols) in &self.bindings {
            if ltable.as_deref().is_none_or(|t| t == alias) {
                if let Some(i) = cols.iter().position(|c| *c == lname) {
                    if found.is_some() {
                        return Err(SqlError::Invalid(format!("ambiguous column {name}")));
                    }
                    found = Some(off + i);
                }
            }
            off += cols.len();
        }
        found.ok_or_else(|| match table {
            Some(t) => SqlError::Unknown(format!("column {t}.{name}")),
            None => SqlError::Unknown(format!("column {name}")),
        })
    }

    /// Offsets of one binding's columns (for `t.*`).
    pub fn binding_columns(&self, alias: &str) -> Result<(usize, &[String])> {
        let lalias = alias.to_ascii_lowercase();
        let mut off = 0usize;
        for (a, cols) in &self.bindings {
            if *a == lalias {
                return Ok((off, cols));
            }
            off += cols.len();
        }
        Err(SqlError::Unknown(format!("table {alias}")))
    }

    /// All column names in row order (for `*`), qualified only when
    /// duplicated across bindings.
    pub fn all_column_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.width());
        for (_, cols) in &self.bindings {
            names.extend(cols.iter().cloned());
        }
        names
    }

    /// Which binding (if exactly one) an expression's columns come from;
    /// used by the planner for filter pushdown.
    pub fn binding_index_of_offset(&self, offset: usize) -> usize {
        let mut off = 0usize;
        for (i, (_, cols)) in self.bindings.iter().enumerate() {
            if offset < off + cols.len() {
                return i;
            }
            off += cols.len();
        }
        usize::MAX
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(x)` / `COUNT(*)`.
    Count,
    /// `SUM(x)` (NULL on empty input).
    Sum,
    /// `TOTAL(x)` (0.0 on empty input, SQLite extension).
    Total,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
    /// `AVG(x)`.
    Avg,
}

impl AggFunc {
    /// Parse an aggregate name (already known to be an aggregate).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "total" => AggFunc::Total,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// One aggregate occurrence in a query.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument (`None` for `COUNT(*)`).
    pub arg: Option<CExpr>,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
}

/// A compiled expression.
#[derive(Clone)]
pub enum CExpr {
    /// Constant.
    Const(Value),
    /// Column at a joined-row offset.
    Col(usize),
    /// Unary op.
    Unary(UnaryOp, Box<CExpr>),
    /// Binary op.
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Scalar function (built-in or UDF).
    Func {
        /// Lower-case name (for built-ins and error messages).
        name: String,
        /// Compiled arguments.
        args: Vec<CExpr>,
        /// Resolved UDF, when not a built-in.
        udf: Option<Arc<UdfFn>>,
    },
    /// Aggregate accumulator slot.
    Agg(usize),
    /// `IS [NOT] NULL`.
    IsNull(Box<CExpr>, bool),
    /// `[NOT] IN (…)`.
    InList(Box<CExpr>, Vec<CExpr>, bool),
    /// `[NOT] BETWEEN`.
    Between(Box<CExpr>, Box<CExpr>, Box<CExpr>, bool),
    /// `[NOT] LIKE`.
    Like(Box<CExpr>, Box<CExpr>, bool),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional operand.
        operand: Option<Box<CExpr>>,
        /// `(WHEN, THEN)` arms.
        arms: Vec<(CExpr, CExpr)>,
        /// `ELSE` (NULL when absent).
        else_branch: Option<Box<CExpr>>,
    },
}

impl std::fmt::Debug for CExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CExpr::Const(v) => write!(f, "Const({v:?})"),
            CExpr::Col(i) => write!(f, "Col({i})"),
            CExpr::Unary(op, e) => write!(f, "Unary({op:?}, {e:?})"),
            CExpr::Binary(op, a, b) => write!(f, "Binary({op:?}, {a:?}, {b:?})"),
            CExpr::Func { name, args, .. } => write!(f, "Func({name}, {args:?})"),
            CExpr::Agg(i) => write!(f, "Agg({i})"),
            CExpr::IsNull(e, n) => write!(f, "IsNull({e:?}, negated={n})"),
            CExpr::InList(e, l, n) => write!(f, "InList({e:?}, {l:?}, negated={n})"),
            CExpr::Between(e, lo, hi, n) => {
                write!(f, "Between({e:?}, {lo:?}, {hi:?}, negated={n})")
            }
            CExpr::Like(e, p, n) => write!(f, "Like({e:?}, {p:?}, negated={n})"),
            CExpr::Case {
                operand,
                arms,
                else_branch,
            } => write!(f, "Case({operand:?}, {arms:?}, else={else_branch:?})"),
        }
    }
}

impl CExpr {
    /// Whether the expression references any column (false ⇒ constant
    /// foldable per query).
    pub fn references_columns(&self) -> bool {
        match self {
            CExpr::Col(_) => true,
            CExpr::Const(_) | CExpr::Agg(_) => false,
            CExpr::Unary(_, e) | CExpr::IsNull(e, _) => e.references_columns(),
            CExpr::Binary(_, a, b) | CExpr::Like(a, b, _) => {
                a.references_columns() || b.references_columns()
            }
            CExpr::Func { args, .. } => args.iter().any(CExpr::references_columns),
            CExpr::InList(e, list, _) => {
                e.references_columns() || list.iter().any(CExpr::references_columns)
            }
            CExpr::Between(e, lo, hi, _) => {
                e.references_columns() || lo.references_columns() || hi.references_columns()
            }
            CExpr::Case {
                operand,
                arms,
                else_branch,
            } => {
                operand.as_deref().is_some_and(CExpr::references_columns)
                    || arms
                        .iter()
                        .any(|(w, t)| w.references_columns() || t.references_columns())
                    || else_branch
                        .as_deref()
                        .is_some_and(CExpr::references_columns)
            }
        }
    }

    /// Offsets of all referenced columns.
    pub fn column_offsets(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Col(i) => out.push(*i),
            CExpr::Const(_) | CExpr::Agg(_) => {}
            CExpr::Unary(_, e) | CExpr::IsNull(e, _) => e.column_offsets(out),
            CExpr::Binary(_, a, b) | CExpr::Like(a, b, _) => {
                a.column_offsets(out);
                b.column_offsets(out);
            }
            CExpr::Func { args, .. } => args.iter().for_each(|a| a.column_offsets(out)),
            CExpr::InList(e, list, _) => {
                e.column_offsets(out);
                list.iter().for_each(|a| a.column_offsets(out));
            }
            CExpr::Between(e, lo, hi, _) => {
                e.column_offsets(out);
                lo.column_offsets(out);
                hi.column_offsets(out);
            }
            CExpr::Case {
                operand,
                arms,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.column_offsets(out);
                }
                for (w, t) in arms {
                    w.column_offsets(out);
                    t.column_offsets(out);
                }
                if let Some(e) = else_branch {
                    e.column_offsets(out);
                }
            }
        }
    }
}

/// Compile `expr` against `scope`.
///
/// When `aggs` is `Some`, aggregate calls are allowed and allocate slots;
/// when `None`, they are rejected (e.g. inside WHERE).
pub fn compile(
    expr: &Expr,
    scope: &Scope,
    udfs: &UdfRegistry,
    mut aggs: Option<&mut Vec<AggSpec>>,
) -> Result<CExpr> {
    compile_inner(expr, scope, udfs, &mut aggs)
}

fn compile_inner(
    expr: &Expr,
    scope: &Scope,
    udfs: &UdfRegistry,
    aggs: &mut Option<&mut Vec<AggSpec>>,
) -> Result<CExpr> {
    Ok(match expr {
        Expr::Literal(v) => CExpr::Const(v.clone()),
        Expr::Column { table, name } => CExpr::Col(scope.resolve(table.as_deref(), name)?),
        Expr::Star => {
            return Err(SqlError::Invalid(
                "'*' is only valid in COUNT(*) or as a projection".into(),
            ))
        }
        Expr::Unary { op, expr } => {
            CExpr::Unary(*op, Box::new(compile_inner(expr, scope, udfs, aggs)?))
        }
        Expr::Binary { op, lhs, rhs } => CExpr::Binary(
            *op,
            Box::new(compile_inner(lhs, scope, udfs, aggs)?),
            Box::new(compile_inner(rhs, scope, udfs, aggs)?),
        ),
        Expr::IsNull { expr, negated } => {
            CExpr::IsNull(Box::new(compile_inner(expr, scope, udfs, aggs)?), *negated)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => CExpr::InList(
            Box::new(compile_inner(expr, scope, udfs, aggs)?),
            list.iter()
                .map(|e| compile_inner(e, scope, udfs, aggs))
                .collect::<Result<_>>()?,
            *negated,
        ),
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => CExpr::Between(
            Box::new(compile_inner(expr, scope, udfs, aggs)?),
            Box::new(compile_inner(lo, scope, udfs, aggs)?),
            Box::new(compile_inner(hi, scope, udfs, aggs)?),
            *negated,
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => CExpr::Like(
            Box::new(compile_inner(expr, scope, udfs, aggs)?),
            Box::new(compile_inner(pattern, scope, udfs, aggs)?),
            *negated,
        ),
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => CExpr::Case {
            operand: operand
                .as_deref()
                .map(|o| compile_inner(o, scope, udfs, aggs).map(Box::new))
                .transpose()?,
            arms: arms
                .iter()
                .map(|(w, t)| {
                    Ok((
                        compile_inner(w, scope, udfs, aggs)?,
                        compile_inner(t, scope, udfs, aggs)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_branch: else_branch
                .as_deref()
                .map(|e| compile_inner(e, scope, udfs, aggs).map(Box::new))
                .transpose()?,
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            if is_aggregate_name(name) {
                let Some(aggs) = aggs.as_deref_mut() else {
                    return Err(SqlError::Invalid(format!(
                        "aggregate {name}() not allowed here"
                    )));
                };
                let func = AggFunc::from_name(name).expect("known aggregate");
                let arg = match args.as_slice() {
                    [Expr::Star] => {
                        if func != AggFunc::Count {
                            return Err(SqlError::Invalid(format!("{name}(*) is not valid")));
                        }
                        None
                    }
                    [e] => Some(compile(e, scope, udfs, None)?),
                    [] => return Err(SqlError::Invalid(format!("{name}() needs an argument"))),
                    _ => return Err(SqlError::Invalid(format!("{name}() takes one argument"))),
                };
                let slot = aggs.len();
                aggs.push(AggSpec {
                    func,
                    arg,
                    distinct: *distinct,
                });
                CExpr::Agg(slot)
            } else {
                let compiled: Vec<CExpr> = args
                    .iter()
                    .map(|e| compile_inner(e, scope, udfs, aggs))
                    .collect::<Result<_>>()?;
                let udf = if is_builtin_scalar(name) {
                    None
                } else {
                    Some(udfs.require(name)?)
                };
                CExpr::Func {
                    name: name.clone(),
                    args: compiled,
                    udf,
                }
            }
        }
    })
}

fn is_builtin_scalar(name: &str) -> bool {
    matches!(
        name,
        "abs"
            | "length"
            | "lower"
            | "upper"
            | "substr"
            | "coalesce"
            | "ifnull"
            | "nullif"
            | "typeof"
            | "round"
    )
}

/// Evaluate a compiled expression against a row and (optionally) finished
/// aggregate results.
pub fn eval(cexpr: &CExpr, row: &[Value], aggs: &[Value]) -> Result<Value> {
    Ok(match cexpr {
        CExpr::Const(v) => v.clone(),
        CExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Invalid(format!("row too short for column {i}")))?,
        CExpr::Agg(slot) => aggs
            .get(*slot)
            .cloned()
            .ok_or_else(|| SqlError::Invalid("aggregate slot missing".into()))?,
        CExpr::Unary(op, e) => {
            let v = eval(e, row, aggs)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => {
                    if v.is_null() {
                        Value::Null
                    } else {
                        Value::Integer(i64::from(!v.is_truthy()))
                    }
                }
            }
        }
        CExpr::Binary(op, lhs, rhs) => {
            // AND/OR get SQL three-valued short-circuit treatment.
            match op {
                BinOp::And => {
                    let l = eval(lhs, row, aggs)?;
                    if !l.is_null() && !l.is_truthy() {
                        return Ok(Value::Integer(0));
                    }
                    let r = eval(rhs, row, aggs)?;
                    if !r.is_null() && !r.is_truthy() {
                        return Ok(Value::Integer(0));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Integer(1));
                }
                BinOp::Or => {
                    let l = eval(lhs, row, aggs)?;
                    if !l.is_null() && l.is_truthy() {
                        return Ok(Value::Integer(1));
                    }
                    let r = eval(rhs, row, aggs)?;
                    if !r.is_null() && r.is_truthy() {
                        return Ok(Value::Integer(1));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Integer(0));
                }
                _ => {}
            }
            let l = eval(lhs, row, aggs)?;
            let r = eval(rhs, row, aggs)?;
            match op {
                BinOp::Add => l.add(&r),
                BinOp::Sub => l.sub(&r),
                BinOp::Mul => l.mul(&r),
                BinOp::Div => l.div(&r),
                BinOp::Rem => l.rem(&r),
                BinOp::Concat => l.concat(&r),
                BinOp::Eq => cmp_to_value(&l, &r, |o| o == std::cmp::Ordering::Equal),
                BinOp::Ne => cmp_to_value(&l, &r, |o| o != std::cmp::Ordering::Equal),
                BinOp::Lt => cmp_to_value(&l, &r, |o| o == std::cmp::Ordering::Less),
                BinOp::Le => cmp_to_value(&l, &r, |o| o != std::cmp::Ordering::Greater),
                BinOp::Gt => cmp_to_value(&l, &r, |o| o == std::cmp::Ordering::Greater),
                BinOp::Ge => cmp_to_value(&l, &r, |o| o != std::cmp::Ordering::Less),
                BinOp::And | BinOp::Or => unreachable!(),
            }
        }
        CExpr::IsNull(e, negated) => {
            let v = eval(e, row, aggs)?;
            Value::Integer(i64::from(v.is_null() != *negated))
        }
        CExpr::InList(e, list, negated) => {
            let v = eval(e, row, aggs)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, aggs)?;
                match v.sql_cmp(&iv) {
                    Some(std::cmp::Ordering::Equal) => {
                        return Ok(Value::Integer(i64::from(!*negated)))
                    }
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Integer(i64::from(*negated))
            }
        }
        CExpr::Between(e, lo, hi, negated) => {
            let v = eval(e, row, aggs)?;
            let l = eval(lo, row, aggs)?;
            let h = eval(hi, row, aggs)?;
            match (v.sql_cmp(&l), v.sql_cmp(&h)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Value::Integer(i64::from(inside != *negated))
                }
                _ => Value::Null,
            }
        }
        CExpr::Like(e, pat, negated) => {
            let v = eval(e, row, aggs)?;
            let p = eval(pat, row, aggs)?;
            match v.like(&p) {
                Value::Integer(i) => Value::Integer(i64::from((i != 0) != *negated)),
                other => other, // NULL
            }
        }
        CExpr::Case {
            operand,
            arms,
            else_branch,
        } => {
            let op_val = operand.as_deref().map(|o| eval(o, row, aggs)).transpose()?;
            for (when, then) in arms {
                let hit = match &op_val {
                    // Simple CASE: operand = WHEN (NULL never matches).
                    Some(v) => {
                        let w = eval(when, row, aggs)?;
                        v.sql_cmp(&w) == Some(std::cmp::Ordering::Equal)
                    }
                    // Searched CASE: WHEN is a predicate.
                    None => eval(when, row, aggs)?.is_truthy(),
                };
                if hit {
                    return eval(then, row, aggs);
                }
            }
            match else_branch {
                Some(e) => eval(e, row, aggs)?,
                None => Value::Null,
            }
        }
        CExpr::Func { name, args, udf } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row, aggs)?);
            }
            match udf {
                Some(f) => f(&vals)?,
                None => eval_builtin(name, &vals)?,
            }
        }
    })
}

fn cmp_to_value(l: &Value, r: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> Value {
    match l.sql_cmp(r) {
        None => Value::Null,
        Some(o) => Value::Integer(i64::from(pred(o))),
    }
}

fn eval_builtin(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::Invalid(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    Ok(match name {
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Integer(i) => Value::Integer(i.wrapping_abs()),
                Value::Real(r) => Value::Real(r.abs()),
                _ => Value::Null,
            }
        }
        "length" => {
            arity(1)?;
            match &args[0] {
                Value::Text(t) => Value::Integer(t.chars().count() as i64),
                Value::Null => Value::Null,
                v => Value::Integer(v.to_string().len() as i64),
            }
        }
        "lower" => {
            arity(1)?;
            match &args[0] {
                Value::Text(t) => Value::text(t.to_lowercase()),
                v => v.clone(),
            }
        }
        "upper" => {
            arity(1)?;
            match &args[0] {
                Value::Text(t) => Value::text(t.to_uppercase()),
                v => v.clone(),
            }
        }
        "substr" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(SqlError::Invalid(
                    "substr() expects 2 or 3 arguments".into(),
                ));
            }
            let Value::Text(t) = &args[0] else {
                return Ok(Value::Null);
            };
            let start = args[1].as_i64().unwrap_or(1).max(1) as usize - 1;
            let chars: Vec<char> = t.chars().collect();
            let len = match args.get(2) {
                Some(v) => v.as_i64().unwrap_or(0).max(0) as usize,
                None => chars.len().saturating_sub(start),
            };
            Value::text(chars.iter().skip(start).take(len).collect::<String>())
        }
        "coalesce" => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        "ifnull" => {
            arity(2)?;
            if args[0].is_null() {
                args[1].clone()
            } else {
                args[0].clone()
            }
        }
        "nullif" => {
            arity(2)?;
            if args[0].sql_cmp(&args[1]) == Some(std::cmp::Ordering::Equal) {
                Value::Null
            } else {
                args[0].clone()
            }
        }
        "typeof" => {
            arity(1)?;
            Value::text(match &args[0] {
                Value::Null => "null",
                Value::Integer(_) => "integer",
                Value::Real(_) => "real",
                Value::Text(_) => "text",
            })
        }
        "round" => {
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::Invalid("round() expects 1 or 2 arguments".into()));
            }
            let Some(x) = args[0].as_f64() else {
                return Ok(Value::Null);
            };
            let digits = args.get(1).and_then(Value::as_i64).unwrap_or(0);
            let factor = 10f64.powi(digits as i32);
            Value::Real((x * factor).round() / factor)
        }
        other => return Err(SqlError::Unknown(format!("function {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn scope() -> Scope {
        let mut s = Scope::empty();
        s.push("t", vec!["a".into(), "b".into()]);
        s.push("u", vec!["b".into(), "c".into()]);
        s
    }

    fn compile_where(sql: &str, scope: &Scope) -> CExpr {
        let sel = parse_select(sql).unwrap();
        compile(&sel.where_clause.unwrap(), scope, &UdfRegistry::new(), None).unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Integer(1),
            Value::Integer(2),
            Value::Integer(3),
            Value::text("x"),
        ]
    }

    #[test]
    fn scope_resolution() {
        let s = scope();
        assert_eq!(s.resolve(None, "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("t"), "b").unwrap(), 1);
        assert_eq!(s.resolve(Some("u"), "b").unwrap(), 2);
        assert_eq!(s.resolve(None, "c").unwrap(), 3);
        assert!(s.resolve(None, "b").is_err()); // ambiguous
        assert!(s.resolve(None, "zz").is_err());
        assert_eq!(s.width(), 4);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = scope();
        let e = compile_where("SELECT * FROM x WHERE a + t.b * 2 = 5", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(1));
    }

    #[test]
    fn three_valued_and_or() {
        let s = scope();
        // NULL AND false = false; NULL AND true = NULL.
        let e = compile_where("SELECT * FROM x WHERE NULL AND 0", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(0));
        let e = compile_where("SELECT * FROM x WHERE NULL AND 1", &s);
        assert!(eval(&e, &row(), &[]).unwrap().is_null());
        let e = compile_where("SELECT * FROM x WHERE NULL OR 1", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(1));
    }

    #[test]
    fn in_list_and_between() {
        let s = scope();
        let e = compile_where("SELECT * FROM x WHERE a IN (3, 1)", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(1));
        let e = compile_where("SELECT * FROM x WHERE a NOT IN (3, 9)", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(1));
        let e = compile_where("SELECT * FROM x WHERE t.b BETWEEN 2 AND 3", &s);
        assert_eq!(eval(&e, &row(), &[]).unwrap(), Value::Integer(1));
    }

    #[test]
    fn builtins() {
        let reg = UdfRegistry::new();
        let s = Scope::empty();
        let sel = parse_select(
            "SELECT abs(-3), lower('AbC'), substr('hello', 2, 3), coalesce(NULL, 7), \
             typeof(1.5), round(2.567, 2), length('abcd'), nullif(1, 1)",
        )
        .unwrap();
        let mut out = Vec::new();
        for item in &sel.items {
            let crate::ast::SelectItem::Expr { expr, .. } = item else {
                panic!()
            };
            let c = compile(expr, &s, &reg, None).unwrap();
            out.push(eval(&c, &[], &[]).unwrap());
        }
        assert_eq!(out[0], Value::Integer(3));
        assert_eq!(out[1], Value::text("abc"));
        assert_eq!(out[2], Value::text("ell"));
        assert_eq!(out[3], Value::Integer(7));
        assert_eq!(out[4], Value::text("real"));
        assert_eq!(out[5], Value::Real(2.57));
        assert_eq!(out[6], Value::Integer(4));
        assert!(out[7].is_null());
    }

    #[test]
    fn aggregates_compile_to_slots() {
        let s = scope();
        let sel = parse_select("SELECT COUNT(*), SUM(a + 1) FROM t").unwrap();
        let mut aggs = Vec::new();
        for item in &sel.items {
            let crate::ast::SelectItem::Expr { expr, .. } = item else {
                panic!()
            };
            compile(expr, &s, &UdfRegistry::new(), Some(&mut aggs)).unwrap();
        }
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].func, AggFunc::Count);
        assert!(aggs[0].arg.is_none());
        assert_eq!(aggs[1].func, AggFunc::Sum);
        assert!(aggs[1].arg.is_some());
    }

    #[test]
    fn aggregates_rejected_without_slot_sink() {
        let s = scope();
        let sel = parse_select("SELECT * FROM t WHERE COUNT(*) > 1").unwrap();
        assert!(compile(&sel.where_clause.unwrap(), &s, &UdfRegistry::new(), None).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        let s = scope();
        let sel = parse_select("SELECT mystery(a) FROM t").unwrap();
        let crate::ast::SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        assert!(compile(expr, &s, &UdfRegistry::new(), None).is_err());
    }

    #[test]
    fn udf_resolution_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("current_snapshot", |_| Ok(Value::Integer(7)));
        let sel = parse_select("SELECT current_snapshot()").unwrap();
        let crate::ast::SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        let c = compile(expr, &Scope::empty(), &reg, None).unwrap();
        assert_eq!(eval(&c, &[], &[]).unwrap(), Value::Integer(7));
    }

    #[test]
    fn column_offsets_collect() {
        let s = scope();
        let e = compile_where("SELECT * FROM x WHERE a = 1 AND c = 2", &s);
        let mut offs = Vec::new();
        e.column_offsets(&mut offs);
        offs.sort();
        assert_eq!(offs, vec![0, 3]);
        assert!(e.references_columns());
        assert!(!CExpr::Const(Value::Null).references_columns());
    }
}
