//! `Database`: the SQLite-analog session facade over a Retro store.
//!
//! One `Database` owns one [`RetroStore`]. RQL uses two of them, exactly
//! as the paper describes (§3): the application data lives in a
//! *snapshotable* database, while `SnapIds` and result tables `T` live in
//! "a separate SQLite database … because it is a non-snapshotable
//! persistent table". Statements auto-commit unless bracketed by
//! `BEGIN`/`COMMIT`; `COMMIT WITH SNAPSHOT` declares a Retro snapshot;
//! `SELECT AS OF <sid>` executes over the snapshot's pages (including its
//! catalog).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use rql_pagestore::{IoCostModel, IoStats, WriteTxn};
use rql_retro::{RetroConfig, RetroStore, SnapshotReader};

use crate::ast::{InsertSource, SelectStmt, Stmt};
use crate::cancel::CancelToken;
use crate::catalog::Catalog;
use crate::cexpr::{compile, eval, Scope};
use crate::delta::{self, DeltaScan, DeltaSelectRunner};
use crate::error::{Result, SqlError};
use crate::exec::{run_select_cancellable, QueryResult};
use crate::exec_stats::ExecStats;
use crate::heap::{FreeSpaceMap, RecordId};
use crate::parser::parse_statements;
use crate::record::{encode_index_key, encode_row, Row};
use crate::schema::{ColumnType, IndexSchema, TableSchema};
use crate::sidecar::PredSummary;
use crate::udf::UdfRegistry;
use crate::value::Value;

/// Result of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A query's rows (boxed: `QueryResult` dwarfs the other variants).
    Rows(Box<QueryResult>),
    /// DML row count.
    Affected(u64),
    /// `COMMIT WITH SNAPSHOT` declared this snapshot.
    SnapshotDeclared(u64),
    /// DDL or transaction control with nothing to report.
    Done,
}

impl ExecOutcome {
    /// The query result, if this outcome carries rows.
    pub fn rows(self) -> Option<QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Some(*r),
            _ => None,
        }
    }
}

/// A SQL database over a Retro snapshot store.
pub struct Database {
    store: Arc<RetroStore>,
    udfs: RwLock<UdfRegistry>,
    /// Open explicit transaction (`BEGIN` … `COMMIT`).
    open_txn: Mutex<Option<WriteTxn>>,
    /// Per-table free-space maps (keyed by heap root page id).
    fsms: Mutex<HashMap<u64, FreeSpaceMap>>,
    /// I/O cost model used when reporting modeled latencies.
    cost_model: IoCostModel,
    /// Cooperative interrupt flag (the `sqlite3_interrupt` analog):
    /// polled by the executor at scan/join checkpoints. Sticky until
    /// [`CancelToken::clear`]; shared with watchdogs via
    /// [`Database::cancel_token`].
    cancel: CancelToken,
    /// Pruning filter columns per lowercase table name. Declared entries
    /// ([`Database::declare_filter_columns`]) are fixed; undeclared ones
    /// grow by auto-inference from the refutable conjuncts of snapshot
    /// (`AS OF`/delta) queries.
    filter_cols: RwLock<HashMap<String, FilterCols>>,
}

/// One table's sidecar filter-column configuration.
#[derive(Debug, Clone)]
struct FilterCols {
    /// Table-local column indices, sorted, deduplicated.
    cols: Vec<usize>,
    /// `true` when explicitly declared — auto-inference leaves it alone.
    declared: bool,
}

impl Database {
    /// In-memory database (the benchmark and test configuration).
    pub fn in_memory(config: RetroConfig) -> Arc<Database> {
        Self::over_store(RetroStore::in_memory(config))
    }

    /// In-memory database with default configuration.
    pub fn default_in_memory() -> Arc<Database> {
        Self::in_memory(RetroConfig::new())
    }

    /// Wrap an existing store (used by recovery paths and tests).
    pub fn over_store(store: Arc<RetroStore>) -> Arc<Database> {
        let db = Database {
            store,
            udfs: RwLock::new(UdfRegistry::new()),
            open_txn: Mutex::new(None),
            fsms: Mutex::new(HashMap::new()),
            cost_model: IoCostModel::default(),
            cancel: CancelToken::new(),
            filter_cols: RwLock::new(HashMap::new()),
        };
        db.ensure_catalog();
        Arc::new(db)
    }

    /// The database's interrupt flag. Clone it into a watchdog or server
    /// cancel registry; tripping it unwinds any in-flight query on this
    /// database with `[RQL3xx] SqlError::Cancelled` at its next
    /// checkpoint. Call [`CancelToken::clear`] to run queries again.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    fn ensure_catalog(&self) {
        if self.store.pager().page_count() == 0 {
            let mut txn = self.store.begin().expect("no writer during init");
            Catalog::bootstrap(&mut txn).expect("catalog bootstrap");
            self.store.commit(txn).expect("catalog commit");
        }
    }

    /// Whether an explicit transaction (`BEGIN` without a matching
    /// `COMMIT`/`ROLLBACK`) is open. Servers use this to scope a global
    /// write lock to the whole transaction rather than one statement.
    pub fn has_open_txn(&self) -> bool {
        self.open_txn.lock().is_some()
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &Arc<RetroStore> {
        &self.store
    }

    /// Shared I/O counters.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.store.stats()
    }

    /// The configured I/O cost model.
    pub fn cost_model(&self) -> IoCostModel {
        self.cost_model
    }

    /// Register a scalar UDF (`sqlite3_create_function` analog).
    pub fn register_udf(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.udfs.write().register(name, f);
    }

    /// Execute a script of `;`-separated statements, returning the last
    /// statement's outcome.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let stmts = parse_statements(sql)?;
        let mut last = ExecOutcome::Done;
        for stmt in &stmts {
            last = self.execute_stmt(stmt)?;
        }
        Ok(last)
    }

    /// Execute a single query and return its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        match self.execute(sql)? {
            ExecOutcome::Rows(r) => Ok(*r),
            _ => Err(SqlError::Invalid("statement returned no rows".into())),
        }
    }

    /// Run a query and return only its access-path decisions (one line
    /// per table). The query executes — plans are recorded during
    /// execution, which also makes them exact rather than estimated.
    pub fn explain(&self, sql: &str) -> Result<Vec<String>> {
        Ok(self.query(sql)?.plan)
    }

    /// `sqlite3_exec` analog: run a query, invoking `cb` for every row.
    pub fn query_with_callback(
        &self,
        sql: &str,
        mut cb: impl FnMut(&[String], &Row) -> Result<()>,
    ) -> Result<ExecStats> {
        let result = self.query(sql)?;
        for row in &result.rows {
            cb(&result.columns, row)?;
        }
        Ok(result.stats)
    }

    /// Execute one parsed statement.
    pub fn execute_stmt(&self, stmt: &Stmt) -> Result<ExecOutcome> {
        match stmt {
            Stmt::Select(select) => Ok(ExecOutcome::Rows(Box::new(
                self.run_select_dispatch(select)?,
            ))),
            Stmt::Begin => {
                let mut open = self.open_txn.lock();
                if open.is_some() {
                    return Err(SqlError::Invalid("transaction already open".into()));
                }
                *open = Some(self.store.begin()?);
                Ok(ExecOutcome::Done)
            }
            Stmt::Commit { with_snapshot } => {
                let txn = self
                    .open_txn
                    .lock()
                    .take()
                    .ok_or_else(|| SqlError::Invalid("no open transaction".into()))?;
                if *with_snapshot {
                    let sid = self.store.commit_with_snapshot(txn)?;
                    Ok(ExecOutcome::SnapshotDeclared(sid))
                } else {
                    self.store.commit(txn)?;
                    Ok(ExecOutcome::Done)
                }
            }
            Stmt::Rollback => {
                let txn = self
                    .open_txn
                    .lock()
                    .take()
                    .ok_or_else(|| SqlError::Invalid("no open transaction".into()))?;
                self.store.abort(txn);
                // Write-set state is gone; cached free-space maps may lie.
                self.fsms.lock().clear();
                Ok(ExecOutcome::Done)
            }
            other => self.execute_write(other),
        }
    }

    /// `COMMIT WITH SNAPSHOT` on an empty transaction — the paper's bare
    /// snapshot declaration (Figure 3 lines 1–2).
    pub fn declare_snapshot(&self) -> Result<u64> {
        let txn = self.store.begin()?;
        Ok(self.store.commit_with_snapshot(txn)?)
    }

    // ---- reads -----------------------------------------------------------

    fn run_select_dispatch(&self, select: &SelectStmt) -> Result<QueryResult> {
        let udfs = self.udfs.read().clone();
        let io_before = self.io_stats().snapshot();
        let mut result = match &select.as_of {
            Some(expr) => {
                let sid = self.eval_const_expr(expr)?;
                let Some(sid) = sid.as_i64() else {
                    return Err(SqlError::Invalid(format!(
                        "AS OF requires an integer snapshot id, got {sid}"
                    )));
                };
                let reader = self.store.open_snapshot(sid as u64)?;
                let spt_build = reader.build_stats().duration;
                let catalog = Catalog::load(&reader)?;
                let mut r =
                    run_select_cancellable(select, &reader, &catalog, &udfs, Some(&self.cancel))?;
                r.stats.spt_build = spt_build;
                // Snapshot scans are the pruning workload: learn this
                // query's refutable columns so future commits (and a
                // backfill now) carry sidecars for them.
                self.note_query_filter_cols(select, &catalog, &udfs);
                r
            }
            None => {
                // Inside an open transaction, read through it (own writes
                // visible); otherwise pin a fresh MVCC view. The lock is
                // dropped before view execution so that UDFs invoked by
                // the query can re-enter the database (the RQL loop-body
                // pattern: `SELECT rql_udf(...) FROM SnapIds`).
                let mut open = self.open_txn.lock();
                if let Some(txn) = open.as_mut() {
                    let catalog = Catalog::load(&*txn)?;
                    run_select_cancellable(select, &*txn, &catalog, &udfs, Some(&self.cancel))?
                } else {
                    drop(open);
                    let view = self.store.current_view();
                    let catalog = Catalog::load(&view)?;
                    run_select_cancellable(select, &view, &catalog, &udfs, Some(&self.cancel))?
                }
            }
        };
        result.stats.io = self.io_stats().snapshot().delta(&io_before);
        result.stats.pages_pruned_filter = result.stats.io.pages_pruned;
        Ok(result)
    }

    /// Run a query over a specific snapshot without `AS OF` in the text
    /// (used by RQL's rewriter tests and the harness).
    pub fn query_as_of(&self, sid: u64, sql: &str) -> Result<QueryResult> {
        let stmts = parse_statements(sql)?;
        let [Stmt::Select(select)] = stmts.as_slice() else {
            return Err(SqlError::Invalid("expected a single SELECT".into()));
        };
        let mut with_as_of = select.clone();
        with_as_of.as_of = Some(crate::ast::Expr::int(sid as i64));
        self.run_select_dispatch(&with_as_of)
    }

    // ---- delta-aware reads ----------------------------------------------

    /// Run `select` over `reader` through `runner`'s delta-aware scan,
    /// then the ordinary post-scan stages — output is byte-identical to
    /// [`Self::query_as_of`] for the same snapshot. Returns `Ok(None)`
    /// when the shape is not delta-scannable (the caller must fall back
    /// to the ordinary path and the runner has self-invalidated).
    ///
    /// `reader` should come from
    /// [`rql_retro::RetroStore::open_snapshot_chain`] so it carries a
    /// changed-page set; without one the scan still works but rebuilds.
    pub fn delta_query(
        &self,
        reader: &SnapshotReader,
        select: &SelectStmt,
        runner: &mut DeltaSelectRunner,
    ) -> Result<Option<QueryResult>> {
        let Some((scan, mut stats)) = self.delta_scan(reader, select, runner)? else {
            return Ok(None);
        };
        let table = select.from[0].name.clone();
        let udfs = self.udfs.read().clone();
        let io_before = self.io_stats().snapshot();
        let started = Instant::now();
        let catalog = Catalog::load(reader)?;
        let (columns, rows) = delta::finish_over_rows(select, scan.rows, &catalog, &udfs)?;
        stats.eval += started.elapsed();
        stats
            .io
            .accumulate(&self.io_stats().snapshot().delta(&io_before));
        stats.rows = rows.len() as u64;
        Ok(Some(QueryResult {
            columns,
            rows,
            stats,
            plan: vec![format!("{table}: delta seq scan")],
        }))
    }

    /// The scan half of [`Self::delta_query`]: filtered base rows plus
    /// the row delta against the runner's previous scan, without the
    /// projection/aggregation stages. Incremental consumers (the RQL
    /// delta mechanisms) fold `added`/`removed` into their own state and
    /// only pay [`Self::delta_finish`] when they cannot.
    pub fn delta_scan(
        &self,
        reader: &SnapshotReader,
        select: &SelectStmt,
        runner: &mut DeltaSelectRunner,
    ) -> Result<Option<(DeltaScan, ExecStats)>> {
        let udfs = self.udfs.read().clone();
        let io_before = self.io_stats().snapshot();
        let started = Instant::now();
        let catalog = Catalog::load(reader)?;
        let Some(scan) = runner.scan(select, reader, &catalog, &udfs)? else {
            return Ok(None);
        };
        self.note_query_filter_cols(select, &catalog, &udfs);
        let stats = ExecStats {
            spt_build: reader.build_stats().duration,
            eval: started.elapsed(),
            io: self.io_stats().snapshot().delta(&io_before),
            pages_skipped_delta: scan.pages_skipped,
            pages_pruned_filter: scan.pages_pruned,
            delta_eligible: 1,
            ..Default::default()
        };
        Ok(Some((scan, stats)))
    }

    /// The pipeline half: run `select`'s post-scan stages over base rows
    /// a delta scan produced (in scan order). Same code path as the
    /// ordinary plan, so given the same rows the output is identical.
    pub fn delta_finish(
        &self,
        reader: &SnapshotReader,
        select: &SelectStmt,
        rows: Vec<Row>,
    ) -> Result<QueryResult> {
        let table = select.from[0].name.clone();
        let udfs = self.udfs.read().clone();
        let io_before = self.io_stats().snapshot();
        let started = Instant::now();
        let catalog = Catalog::load(reader)?;
        let (columns, out_rows) = delta::finish_over_rows(select, rows, &catalog, &udfs)?;
        let stats = ExecStats {
            eval: started.elapsed(),
            io: self.io_stats().snapshot().delta(&io_before),
            rows: out_rows.len() as u64,
            ..Default::default()
        };
        Ok(QueryResult {
            columns,
            rows: out_rows,
            stats,
            plan: vec![format!("{table}: delta seq scan")],
        })
    }

    fn eval_const_expr(&self, expr: &crate::ast::Expr) -> Result<Value> {
        let udfs = self.udfs.read().clone();
        let compiled = compile(expr, &Scope::empty(), &udfs, None)?;
        eval(&compiled, &[], &[])
    }

    // ---- pruning sidecars ------------------------------------------------

    /// Declare the sidecar filter columns for `table` — the DDL-hint
    /// override. From the next commit on, written pages carry zone-map +
    /// bloom sidecars over these columns; current pages are backfilled
    /// immediately. Auto-inference stops touching a declared table.
    /// Returns how many current pages were backfilled.
    pub fn declare_filter_columns(&self, table: &str, cols: &[&str]) -> Result<usize> {
        let view = self.store.current_view();
        let catalog = Catalog::load(&view)?;
        let info = catalog.require_table(table)?;
        let mut idx = Vec::with_capacity(cols.len());
        for c in cols {
            idx.push(info.schema.require_column(c)?);
        }
        idx.sort_unstable();
        idx.dedup();
        self.filter_cols.write().insert(
            info.schema.name.to_ascii_lowercase(),
            FilterCols {
                cols: idx,
                declared: true,
            },
        );
        self.refresh_sidecar_builder();
        // A store opened from disk (crash recovery, or a replication
        // follower's seed) lost its in-memory archived sidecars; with a
        // builder installed, regrow them from the Maplog so `AS OF`
        // scans of old snapshots prune again.
        let _ = self.store.rebuild_archived_sidecars();
        self.backfill_sidecars()
    }

    /// The filter columns currently driving sidecar builds for `table`
    /// (sorted table-local indices), or `None` when the table has no
    /// pruning configuration.
    pub fn filter_columns(&self, table: &str) -> Option<Vec<usize>> {
        self.filter_cols
            .read()
            .get(&table.to_ascii_lowercase())
            .map(|f| f.cols.clone())
    }

    /// Hash of the pruning configuration: sidecar format version plus
    /// every table's filter columns. Folded into memoization keys so a
    /// cached result is never matched across a configuration change
    /// (results don't depend on sidecars, but the page-version vectors
    /// compared for a hit are read under this configuration).
    pub fn filter_config_hash(&self) -> u64 {
        let reg = self.filter_cols.read();
        let mut items: Vec<(&String, &FilterCols)> = reg.iter().collect();
        items.sort_by(|a, b| a.0.cmp(b.0));
        let mut buf = vec![crate::sidecar::SIDECAR_FORMAT_VERSION];
        for (name, fc) in items {
            buf.extend_from_slice(name.as_bytes());
            buf.push(0);
            for c in &fc.cols {
                buf.extend_from_slice(&(*c as u64).to_le_bytes());
            }
            buf.push(u8::from(fc.declared));
        }
        rql_pagestore::fnv1a(&buf)
    }

    /// Build and install sidecars for the current pages of every table
    /// with filter columns. The install is epoch-guarded inside
    /// [`RetroStore::install_current_sidecars`]: a commit racing this
    /// backfill wins, and losing only means those pages stay
    /// sidecar-less until rewritten. Returns how many were installed.
    pub fn backfill_sidecars(&self) -> Result<usize> {
        let reg: Vec<(String, Vec<usize>)> = {
            let reg = self.filter_cols.read();
            reg.iter()
                .filter(|(_, f)| !f.cols.is_empty())
                .map(|(k, f)| (k.clone(), f.cols.clone()))
                .collect()
        };
        if reg.is_empty() {
            return Ok(0);
        }
        // The epoch must be read before the view is pinned: any commit
        // between the two bumps it and voids this whole batch.
        let epoch = self.store.sidecar_epoch();
        let view = self.store.current_view();
        let catalog = Catalog::load(&view)?;
        let mut entries = Vec::new();
        for (tname, cols) in &reg {
            let Some(info) = catalog.table(tname) else {
                continue;
            };
            let mut pid = info.root;
            loop {
                let page = view.page(pid)?;
                if let Some(bytes) = crate::sidecar::build_sidecar(pid, &page, cols) {
                    entries.push((pid, bytes));
                }
                match crate::heap::page_next(&page) {
                    Some(n) => pid = n,
                    None => break,
                }
            }
        }
        Ok(self.store.install_current_sidecars(epoch, entries))
    }

    /// Re-install the store's sidecar builder over the union of every
    /// table's filter columns. The builder is table-blind (it sees bare
    /// page images at commit), so it summarizes the union; columns a
    /// page's rows don't have are skipped by the builder itself.
    fn refresh_sidecar_builder(&self) {
        let union: Vec<usize> = {
            let reg = self.filter_cols.read();
            let mut u: Vec<usize> = reg.values().flat_map(|f| f.cols.iter().copied()).collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        if union.is_empty() {
            return;
        }
        self.store.set_sidecar_builder(Arc::new(move |pid, page| {
            crate::sidecar::build_sidecar(pid, page, &union)
        }));
    }

    /// Auto-inference: fold the refutable (`col ⋄ const`) columns of a
    /// single-table snapshot query into the table's filter set, unless
    /// it was explicitly declared. On growth, refresh the commit-time
    /// builder and backfill current pages so pruning starts now rather
    /// than after the next rewrite of each page.
    fn note_query_filter_cols(&self, select: &SelectStmt, catalog: &Catalog, udfs: &UdfRegistry) {
        if select.from.len() != 1 || !select.joins.is_empty() {
            return;
        }
        let Some(w) = &select.where_clause else {
            return;
        };
        let Ok(info) = catalog.require_table(&select.from[0].name) else {
            return;
        };
        let alias = select.from[0].binding().to_ascii_lowercase();
        let mut scope = Scope::empty();
        scope.push(
            &alias,
            info.schema.columns.iter().map(|c| c.name.clone()).collect(),
        );
        let mut conjuncts = Vec::new();
        crate::exec::collect_conjuncts(w, &mut conjuncts);
        let mut compiled = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            let Ok(cc) = compile(c, &scope, udfs, None) else {
                return;
            };
            compiled.push(cc);
        }
        let pred = PredSummary::from_conjuncts(compiled.iter(), 0);
        let mut cols: Vec<usize> = pred
            .atoms
            .iter()
            .map(super::sidecar::PredAtom::col)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() {
            return;
        }
        let grew = {
            let mut reg = self.filter_cols.write();
            let entry = reg
                .entry(info.schema.name.to_ascii_lowercase())
                .or_insert_with(|| FilterCols {
                    cols: Vec::new(),
                    declared: false,
                });
            if entry.declared {
                false
            } else {
                let before = entry.cols.len();
                for c in cols {
                    if !entry.cols.contains(&c) {
                        entry.cols.push(c);
                    }
                }
                entry.cols.sort_unstable();
                entry.cols.len() > before
            }
        };
        if grew {
            self.refresh_sidecar_builder();
            // Same recovery path as `declare_filter_columns`: archived
            // pre-states from before this process get sidecars too.
            let _ = self.store.rebuild_archived_sidecars();
            let _ = self.backfill_sidecars();
        }
    }

    // ---- writes ----------------------------------------------------------

    /// Public variant of the internal transaction wrapper for extension layers
    /// (the RQL mechanisms drive [`crate::tablewriter::TableWriter`]s
    /// through it).
    pub fn with_write_txn_pub<T>(
        &self,
        f: impl FnOnce(&Database, &mut WriteTxn) -> Result<T>,
    ) -> Result<T> {
        self.with_write_txn(f)
    }

    /// Run `f` against the open transaction, or an auto-commit one.
    fn with_write_txn<T>(
        &self,
        f: impl FnOnce(&Database, &mut WriteTxn) -> Result<T>,
    ) -> Result<T> {
        let mut open = self.open_txn.lock();
        match open.as_mut() {
            Some(txn) => f(self, txn),
            None => {
                drop(open);
                let mut txn = self.store.begin()?;
                match f(self, &mut txn) {
                    Ok(v) => {
                        self.store.commit(txn)?;
                        Ok(v)
                    }
                    Err(e) => {
                        self.store.abort(txn);
                        self.fsms.lock().clear();
                        Err(e)
                    }
                }
            }
        }
    }

    fn with_fsm<T>(
        &self,
        root: rql_pagestore::PageId,
        f: impl FnOnce(&mut FreeSpaceMap) -> Result<T>,
    ) -> Result<T> {
        let mut fsms = self.fsms.lock();
        let fsm = fsms.entry(root.0).or_default();
        f(fsm)
    }

    fn execute_write(&self, stmt: &Stmt) -> Result<ExecOutcome> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
                ..
            } => self.with_write_txn(|db, txn| {
                let schema =
                    TableSchema::new(name, columns.iter().map(|(n, t)| (n.clone(), *t)).collect());
                let existing = Catalog::load(&*txn)?;
                if existing.table(name).is_some() {
                    if *if_not_exists {
                        return Ok(ExecOutcome::Done);
                    }
                    return Err(SqlError::Constraint(format!("table {name} already exists")));
                }
                db.with_fsm(Catalog::ROOT, |fsm| {
                    Catalog::persist_table(txn, &schema, fsm)
                })?;
                Ok(ExecOutcome::Done)
            }),
            Stmt::CreateTableAs { name, select, .. } => self.create_table_as(name, select),
            Stmt::CreateIndex {
                name,
                table,
                columns,
            } => self.with_write_txn(|db, txn| {
                let schema = IndexSchema::new(name, table, columns.clone());
                let info = db.with_fsm(Catalog::ROOT, |fsm| {
                    Catalog::persist_index(txn, &schema, fsm)
                })?;
                // Backfill from existing rows.
                let catalog = Catalog::load(&*txn)?;
                let tinfo = catalog.require_table(table)?.clone();
                let key_cols: Vec<usize> = schema
                    .columns
                    .iter()
                    .map(|c| tinfo.schema.require_column(c))
                    .collect::<Result<_>>()?;
                let tree = crate::btree::BTree::new(info.root);
                let rows = tinfo.heap().all_rows(&*txn)?;
                for (rid, row) in rows {
                    let key_vals: Vec<Value> = key_cols.iter().map(|&i| row[i].clone()).collect();
                    let mut key = Vec::new();
                    encode_index_key(&key_vals, &mut key);
                    tree.insert(txn, &key, rid)?;
                }
                Ok(ExecOutcome::Done)
            }),
            Stmt::DropTable { name, if_exists } => self.with_write_txn(|db, txn| {
                let existing = Catalog::load(&*txn)?;
                if existing.table(name).is_none() {
                    if *if_exists {
                        return Ok(ExecOutcome::Done);
                    }
                    return Err(SqlError::Unknown(format!("table {name}")));
                }
                db.with_fsm(Catalog::ROOT, |fsm| Catalog::remove_table(txn, name, fsm))?;
                Ok(ExecOutcome::Done)
            }),
            Stmt::Insert {
                table,
                columns,
                source,
            } => self.insert(table, columns.as_deref(), source),
            Stmt::Delete {
                table,
                where_clause,
            } => self.delete(table, where_clause.as_ref()),
            Stmt::Update {
                table,
                sets,
                where_clause,
            } => self.update(table, sets, where_clause.as_ref()),
            other => Err(SqlError::Invalid(format!(
                "statement not executable here: {other:?}"
            ))),
        }
    }

    fn create_table_as(&self, name: &str, select: &SelectStmt) -> Result<ExecOutcome> {
        // Evaluate the query first (it may carry AS OF), then materialize.
        let result = self.run_select_dispatch(select)?;
        self.with_write_txn(|db, txn| {
            let schema = TableSchema::new(
                name,
                result
                    .columns
                    .iter()
                    .map(|c| (c.clone(), ColumnType::Any))
                    .collect(),
            );
            let info = db.with_fsm(Catalog::ROOT, |fsm| {
                Catalog::persist_table(txn, &schema, fsm)
            })?;
            db.with_fsm(info.root, |fsm| {
                let heap = info.heap();
                let mut buf = Vec::new();
                for row in &result.rows {
                    buf.clear();
                    encode_row(row, &mut buf);
                    heap.insert(txn, &buf, fsm)?;
                }
                Ok(())
            })?;
            Ok(ExecOutcome::Affected(result.rows.len() as u64))
        })
    }

    fn insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        // Materialize source rows first (INSERT…SELECT may read the table
        // being written; materializing gives SQLite's snapshot semantics).
        let input_rows: Vec<Row> = match source {
            InsertSource::Values(exprs) => {
                let mut rows = Vec::with_capacity(exprs.len());
                for row_exprs in exprs {
                    let mut row = Vec::with_capacity(row_exprs.len());
                    for e in row_exprs {
                        row.push(self.eval_const_expr(e)?);
                    }
                    rows.push(row);
                }
                rows
            }
            InsertSource::Select(select) => self.run_select_dispatch(select)?.rows,
        };
        self.with_write_txn(|db, txn| {
            let catalog = Catalog::load(&*txn)?;
            let info = catalog.require_table(table)?.clone();
            let arity = info.schema.arity();
            // Map provided columns to schema positions.
            let positions: Vec<usize> = match columns {
                Some(cols) => cols
                    .iter()
                    .map(|c| info.schema.require_column(c))
                    .collect::<Result<_>>()?,
                None => (0..arity).collect(),
            };
            let indexes = db.table_indexes(&catalog, &info)?;
            let heap = info.heap();
            let mut count = 0u64;
            let mut buf = Vec::new();
            for input in &input_rows {
                if input.len() != positions.len() {
                    return Err(SqlError::Invalid(format!(
                        "expected {} values, got {}",
                        positions.len(),
                        input.len()
                    )));
                }
                let mut row = vec![Value::Null; arity];
                for (pos, v) in positions.iter().zip(input) {
                    row[*pos] = info.schema.columns[*pos].ty.coerce(v.clone());
                }
                buf.clear();
                encode_row(&row, &mut buf);
                let rid = db.with_fsm(info.root, |fsm| heap.insert(txn, &buf, fsm))?;
                db.index_insert(txn, &indexes, &row, rid)?;
                count += 1;
            }
            Ok(ExecOutcome::Affected(count))
        })
    }

    fn delete(&self, table: &str, where_clause: Option<&crate::ast::Expr>) -> Result<ExecOutcome> {
        let udfs = self.udfs.read().clone();
        self.with_write_txn(|db, txn| {
            let catalog = Catalog::load(&*txn)?;
            let info = catalog.require_table(table)?.clone();
            let indexes = db.table_indexes(&catalog, &info)?;
            let heap = info.heap();
            let filter = db.compile_row_filter(&info, where_clause, &udfs)?;
            let mut victims: Vec<(RecordId, Row)> = Vec::new();
            heap.scan(&*txn, |rid, row| {
                if filter(&row)? {
                    victims.push((rid, row));
                }
                Ok(true)
            })?;
            for (rid, row) in &victims {
                db.with_fsm(info.root, |fsm| heap.delete(txn, *rid, fsm))?;
                db.index_delete(txn, &indexes, row, *rid)?;
            }
            Ok(ExecOutcome::Affected(victims.len() as u64))
        })
    }

    fn update(
        &self,
        table: &str,
        sets: &[(String, crate::ast::Expr)],
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<ExecOutcome> {
        let udfs = self.udfs.read().clone();
        self.with_write_txn(|db, txn| {
            let catalog = Catalog::load(&*txn)?;
            let info = catalog.require_table(table)?.clone();
            let indexes = db.table_indexes(&catalog, &info)?;
            let heap = info.heap();
            let filter = db.compile_row_filter(&info, where_clause, &udfs)?;
            let mut scope = Scope::empty();
            scope.push(
                &info.schema.name,
                info.schema.columns.iter().map(|c| c.name.clone()).collect(),
            );
            let mut compiled_sets = Vec::with_capacity(sets.len());
            for (col, e) in sets {
                let pos = info.schema.require_column(col)?;
                compiled_sets.push((pos, compile(e, &scope, &udfs, None)?));
            }
            let mut victims: Vec<(RecordId, Row)> = Vec::new();
            heap.scan(&*txn, |rid, row| {
                if filter(&row)? {
                    victims.push((rid, row));
                }
                Ok(true)
            })?;
            let mut buf = Vec::new();
            for (rid, old_row) in &victims {
                let mut new_row = old_row.clone();
                for (pos, c) in &compiled_sets {
                    new_row[*pos] = info.schema.columns[*pos].ty.coerce(eval(c, old_row, &[])?);
                }
                buf.clear();
                encode_row(&new_row, &mut buf);
                let new_rid = db.with_fsm(info.root, |fsm| heap.update(txn, *rid, &buf, fsm))?;
                db.index_delete(txn, &indexes, old_row, *rid)?;
                db.index_insert(txn, &indexes, &new_row, new_rid)?;
            }
            Ok(ExecOutcome::Affected(victims.len() as u64))
        })
    }

    /// Compile a WHERE filter over a single table's rows.
    fn compile_row_filter(
        &self,
        info: &crate::catalog::TableInfo,
        where_clause: Option<&crate::ast::Expr>,
        udfs: &UdfRegistry,
    ) -> Result<RowFilter> {
        let Some(w) = where_clause else {
            return Ok(Box::new(|_| Ok(true)));
        };
        let mut scope = Scope::empty();
        scope.push(
            &info.schema.name,
            info.schema.columns.iter().map(|c| c.name.clone()).collect(),
        );
        let compiled = compile(w, &scope, udfs, None)?;
        Ok(Box::new(move |row| {
            Ok(eval(&compiled, row, &[])?.is_truthy())
        }))
    }

    /// Resolve a table's indexes into (tree, key column positions).
    fn table_indexes(
        &self,
        catalog: &Catalog,
        info: &crate::catalog::TableInfo,
    ) -> Result<Vec<(crate::btree::BTree, Vec<usize>)>> {
        let mut out = Vec::new();
        for idx in catalog.indexes_on(&info.schema.name) {
            let cols: Vec<usize> = idx
                .schema
                .columns
                .iter()
                .map(|c| info.schema.require_column(c))
                .collect::<Result<_>>()?;
            out.push((crate::btree::BTree::new(idx.root), cols));
        }
        Ok(out)
    }

    fn index_insert(
        &self,
        txn: &mut WriteTxn,
        indexes: &[(crate::btree::BTree, Vec<usize>)],
        row: &Row,
        rid: RecordId,
    ) -> Result<()> {
        for (tree, cols) in indexes {
            let key_vals: Vec<Value> = cols.iter().map(|&i| row[i].clone()).collect();
            let mut key = Vec::new();
            encode_index_key(&key_vals, &mut key);
            tree.insert(txn, &key, rid)?;
        }
        Ok(())
    }

    fn index_delete(
        &self,
        txn: &mut WriteTxn,
        indexes: &[(crate::btree::BTree, Vec<usize>)],
        row: &Row,
        rid: RecordId,
    ) -> Result<()> {
        for (tree, cols) in indexes {
            let key_vals: Vec<Value> = cols.iter().map(|&i| row[i].clone()).collect();
            let mut key = Vec::new();
            encode_index_key(&key_vals, &mut key);
            tree.delete(txn, &key, rid)?;
        }
        Ok(())
    }

    /// Approximate on-disk size of a table in bytes (pages × page size),
    /// used for the paper's memory-footprint comparisons (§5.3).
    pub fn table_size_bytes(&self, table: &str) -> Result<u64> {
        let view = self.store.current_view();
        let catalog = Catalog::load(&view)?;
        let info = catalog.require_table(table)?;
        let pages = info.heap().page_count_chain(&view)?;
        Ok(pages * self.store.pager().config().page_size as u64)
    }

    /// Row count of a table (full scan).
    pub fn table_row_count(&self, table: &str) -> Result<u64> {
        let view = self.store.current_view();
        let catalog = Catalog::load(&view)?;
        let info = catalog.require_table(table)?;
        let mut n = 0u64;
        info.heap().scan(&view, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    /// Schemas of every table in the current catalog, keyed by
    /// lowercase table name. Reads through an open transaction when one
    /// exists, mirroring the SELECT dispatch path. Used by the `rqlcheck`
    /// static analyzer to resolve names without opening snapshots.
    pub fn table_schemas(&self) -> Result<HashMap<String, TableSchema>> {
        let catalog = {
            let open = self.open_txn.lock();
            if let Some(txn) = open.as_ref() {
                Catalog::load(txn)?
            } else {
                drop(open);
                let view = self.store.current_view();
                Catalog::load(&view)?
            }
        };
        Ok(catalog
            .table_names()
            .into_iter()
            .filter_map(|name| {
                catalog
                    .table(&name)
                    .map(|info| (name.to_ascii_lowercase(), info.schema.clone()))
            })
            .collect())
    }

    /// Schemas of every table as of snapshot `sid` (for resolving
    /// programs whose Qq references tables since dropped from the
    /// current catalog).
    pub fn table_schemas_as_of(&self, sid: u64) -> Result<HashMap<String, TableSchema>> {
        let reader = self.store.open_snapshot(sid)?;
        let catalog = Catalog::load(&reader)?;
        Ok(catalog
            .table_names()
            .into_iter()
            .filter_map(|name| {
                catalog
                    .table(&name)
                    .map(|info| (name.to_ascii_lowercase(), info.schema.clone()))
            })
            .collect())
    }

    /// Names of all registered scalar UDFs (lowercase).
    pub fn udf_names(&self) -> Vec<String> {
        self.udfs.read().names()
    }

    /// Time a closure and a counter window together (harness helper).
    pub fn measure<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<(T, ExecStats)> {
        let before = self.io_stats().snapshot();
        let start = Instant::now();
        let v = f()?;
        let eval = start.elapsed();
        let io = self.io_stats().snapshot().delta(&before);
        Ok((
            v,
            ExecStats {
                eval,
                io,
                ..Default::default()
            },
        ))
    }
}

/// Compiled per-row predicate used by DELETE/UPDATE.
type RowFilter = Box<dyn Fn(&Row) -> Result<bool>>;

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("pages", &self.store.pager().page_count())
            .field("snapshots", &self.store.snapshot_count())
            .finish()
    }
}
