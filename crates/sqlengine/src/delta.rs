//! Delta-aware heap scanning between closely-spaced snapshots.
//!
//! The RQL loop evaluates the same `Qq` against every snapshot in the
//! set. Consecutive snapshots of a slowly-changing table share most of
//! their heap pages, so re-reading the whole table per iteration wastes
//! the dominant cost of the loop (the Pagelog reads of Figure 8). A
//! [`DeltaTableScanner`] caches, per heap page, the filtered rows of the
//! previous snapshot's scan and re-fetches **only the pages in the
//! changed set** reported by [`PageSource::changed_pages`] (computed from
//! Maplog declarations by `RetroStore::open_snapshot_chain`).
//!
//! Correctness rests on three invariants:
//!
//! * the changed set is a *conservative superset* of pages whose bytes
//!   differ between the two snapshots, so an unchanged page's cached rows
//!   **and its cached `next` pointer** are still exact;
//! * heap scan order is chain order × slot order, and
//!   [`crate::heap::HeapFile::scan`] never reorders surviving pages, so
//!   splicing cached per-page row vectors in walk order reproduces a full
//!   scan's row order byte for byte;
//! * row comparison for the add/remove delta uses **representation
//!   equality** ([`ExactValue`]), not SQL equality — `Integer(1)` and
//!   `Real(1.0)` are SQL-equal but not byte-equal, and a delta consumer
//!   folding `SUM` must see such a change.
//!
//! When anything is off — no changed set, different root, prior error —
//! the scanner falls back to a full rebuild and reports `rebuilt = true`
//! so consumers re-seed their incremental state.

use std::collections::{HashMap, HashSet};

use rql_pagestore::PageId;

use crate::ast::SelectStmt;
use crate::catalog::Catalog;
use crate::cexpr::{compile, eval, CExpr, Scope};
use crate::error::{Result, SqlError};
use crate::exec;
use crate::heap::{page_next, page_rows};
use crate::pagesource::PageSource;
use crate::record::Row;
use crate::sidecar::PredSummary;
use crate::udf::UdfRegistry;
use crate::value::Value;

/// A [`Value`] under representation equality: `Real` compares by bit
/// pattern, and no cross-type coercion applies.
#[derive(PartialEq, Eq, Hash)]
enum ExactValue {
    Null,
    Integer(i64),
    Real(u64),
    Text(String),
}

fn exact_key(row: &Row) -> Vec<ExactValue> {
    row.iter()
        .map(|v| match v {
            Value::Null => ExactValue::Null,
            Value::Integer(i) => ExactValue::Integer(*i),
            Value::Real(f) => ExactValue::Real(f.to_bits()),
            Value::Text(s) => ExactValue::Text(s.clone()),
        })
        .collect()
}

/// Multiset difference `old → new` under representation equality.
/// Rows in `new` not matched by `old` go to `added`; rows in `old` not
/// matched by `new` go to `removed`.
fn diff_rows(old: &[Row], new: &[Row], added: &mut Vec<Row>, removed: &mut Vec<Row>) {
    if old.is_empty() {
        added.extend(new.iter().cloned());
        return;
    }
    if new.is_empty() {
        removed.extend(old.iter().cloned());
        return;
    }
    let mut counts: HashMap<Vec<ExactValue>, i64> = HashMap::with_capacity(old.len());
    for r in old {
        *counts.entry(exact_key(r)).or_insert(0) += 1;
    }
    for r in new {
        match counts.get_mut(&exact_key(r)) {
            Some(c) if *c > 0 => *c -= 1,
            _ => added.push(r.clone()),
        }
    }
    // Positive leftovers are removed instances; recover the actual rows
    // by a second pass over `old`, consuming counts.
    for r in old {
        if let Some(c) = counts.get_mut(&exact_key(r)) {
            if *c > 0 {
                *c -= 1;
                removed.push(r.clone());
            }
        }
    }
}

/// One scan's outcome: the full current row set plus the delta against
/// the previous scan.
#[derive(Debug)]
pub struct DeltaScan {
    /// All filtered rows of the current snapshot, in scan order — exactly
    /// what a full seq scan with the same filter would produce.
    pub rows: Vec<Row>,
    /// Rows present now but not in the previous scan (multiset,
    /// representation equality). Empty when `rebuilt`.
    pub added: Vec<Row>,
    /// Rows present in the previous scan but not now. Empty when
    /// `rebuilt`.
    pub removed: Vec<Row>,
    /// `true` when the scanner had no usable previous state and read
    /// every page; `added`/`removed` are meaningless and incremental
    /// consumers must re-seed from `rows`.
    pub rebuilt: bool,
    /// Heap pages fetched through the source.
    pub pages_read: u64,
    /// Heap pages served from the scanner's cache without a fetch.
    pub pages_skipped: u64,
    /// Heap pages whose sidecar refuted the filter — skipped without a
    /// fetch *and* without cached rows.
    pub pages_pruned: u64,
}

/// Why a whole snapshot iteration needed no page fetch and produced no
/// row delta — the consumer may reuse the previous iteration's output
/// verbatim instead of re-running the post-scan stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Every page was served from the scanner's cache (nothing changed
    /// since the previous snapshot).
    Delta,
    /// The snapshot's changed pages were all refuted by their sidecars:
    /// the work set was non-empty but pruning emptied it.
    Pruned,
}

impl DeltaScan {
    /// `Some(reason)` when this scan read zero heap pages and the row set
    /// is byte-identical to the previous iteration's, so downstream
    /// filtering/projection can be skipped outright. `Pruned` wins over
    /// `Delta` when sidecar refutation is what emptied the fetch list.
    pub fn snapshot_skip(&self) -> Option<SkipReason> {
        if self.rebuilt
            || self.pages_read != 0
            || !self.added.is_empty()
            || !self.removed.is_empty()
        {
            return None;
        }
        if self.pages_pruned > 0 {
            Some(SkipReason::Pruned)
        } else if self.pages_skipped > 0 {
            Some(SkipReason::Delta)
        } else {
            None
        }
    }
}

/// Per-page cached state from the previous scan.
struct CachedPage {
    /// Chain successor as of the cached read.
    next: Option<PageId>,
    /// Filtered rows of the page, in slot order.
    rows: Vec<Row>,
}

/// One page's worth of exported scanner state (see [`ScannerSeed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SeedPage {
    /// Heap page id.
    pub page: u64,
    /// Chain successor as of the seeding scan.
    pub next: Option<u64>,
    /// Filtered rows of the page, in slot order.
    pub rows: Vec<Row>,
}

/// A portable snapshot of a [`DeltaTableScanner`]'s cache, keyed by the
/// (query fingerprint, snapshot) it was exported at. Importing a seed
/// puts a scanner in exactly the state it had after scanning that
/// snapshot, so the *next* scan in chain order stays on the delta path
/// instead of rebuilding — this is what lets a memoized iteration keep
/// the chain warm without re-reading any heap pages.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannerSeed {
    /// Heap root page the cache was built from.
    pub root: u64,
    /// Per-page cache entries, in no particular order.
    pub pages: Vec<SeedPage>,
}

/// A stateful scanner over one table's heap chain that re-reads only
/// changed pages between consecutive scans.
///
/// The cached rows are **post-filter**, so a scanner is only valid for a
/// fixed filter; callers re-creating the filter per scan must guarantee
/// it is equivalent each time (the RQL delta driver compiles it from the
/// same `Qq` text once per loop).
pub struct DeltaTableScanner {
    root: Option<PageId>,
    cache: HashMap<u64, CachedPage>,
    valid: bool,
}

impl Default for DeltaTableScanner {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaTableScanner {
    /// Empty scanner; the first scan is always a rebuild.
    pub fn new() -> Self {
        DeltaTableScanner {
            root: None,
            cache: HashMap::new(),
            valid: false,
        }
    }

    /// Drop all cached state; the next scan rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.root = None;
        self.cache.clear();
        self.valid = false;
    }

    /// Export the cache as a portable seed, or `None` if the scanner has
    /// no usable state (never scanned, or invalidated).
    pub fn export_seed(&self) -> Option<ScannerSeed> {
        let root = match (self.valid, self.root) {
            (true, Some(r)) => r.0,
            _ => return None,
        };
        let pages = self
            .cache
            .iter()
            .map(|(&page, entry)| SeedPage {
                page,
                next: entry.next.map(|p| p.0),
                rows: entry.rows.clone(),
            })
            .collect();
        Some(ScannerSeed { root, pages })
    }

    /// Replace the scanner's state with an imported seed. The caller
    /// must guarantee the seed was exported for the same table, the same
    /// filter, and the snapshot *preceding* the next scan in chain order
    /// — the scanner itself can only check the root.
    pub fn import_seed(&mut self, seed: ScannerSeed) {
        self.cache.clear();
        self.root = Some(PageId(seed.root));
        for p in seed.pages {
            self.cache.insert(
                p.page,
                CachedPage {
                    next: p.next.map(PageId),
                    rows: p.rows,
                },
            );
        }
        self.valid = true;
    }

    /// Scan the heap rooted at `root` through `src`, returning filtered
    /// rows plus the delta against the previous scan. Falls back to a
    /// full rebuild when `src` reports no changed set, the root moved, or
    /// the scanner was invalidated.
    ///
    /// When `pred` is non-empty, pages whose sidecar (via
    /// [`PageSource::sidecar_for`]) refutes it are skipped without a
    /// fetch; `pred` must be an over-approximation of `filter` (every
    /// row passing `filter` satisfies every atom of `pred`).
    pub fn scan<S: PageSource>(
        &mut self,
        src: &S,
        root: PageId,
        filter: &dyn Fn(&Row) -> Result<bool>,
        pred: &PredSummary,
    ) -> Result<DeltaScan> {
        let result = self.scan_inner(src, root, filter, pred);
        if result.is_err() {
            // A partial walk may have updated some cache entries but not
            // produced a delta; don't let a retry diff against it.
            self.invalidate();
        }
        result
    }

    fn scan_inner<S: PageSource>(
        &mut self,
        src: &S,
        root: PageId,
        filter: &dyn Fn(&Row) -> Result<bool>,
        pred: &PredSummary,
    ) -> Result<DeltaScan> {
        let use_delta = self.valid && self.root == Some(root) && src.changed_pages().is_some();
        if !use_delta {
            return self.rebuild(src, root, filter, pred);
        }
        let changed = src.changed_pages().expect("checked above");

        let mut rows: Vec<Row> = Vec::new();
        let mut added: Vec<Row> = Vec::new();
        let mut removed: Vec<Row> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut pages_read = 0u64;
        let mut pages_skipped = 0u64;
        let mut pages_pruned = 0u64;
        let mut pid = root;
        loop {
            if !visited.insert(pid.0) {
                return Err(SqlError::Invalid(format!(
                    "heap chain cycle at page {}",
                    pid.0
                )));
            }
            let next = if changed.contains(&pid) || !self.cache.contains_key(&pid.0) {
                if let Some(next) = prune_page(src, pid, pred) {
                    // The sidecar proved no row of this page version can
                    // pass the filter: same outcome as fetching the page
                    // and keeping nothing, minus the fetch.
                    pages_pruned += 1;
                    let old_rows = self
                        .cache
                        .get(&pid.0)
                        .map_or(&[][..], |c| c.rows.as_slice());
                    diff_rows(old_rows, &[], &mut added, &mut removed);
                    self.cache.insert(
                        pid.0,
                        CachedPage {
                            next,
                            rows: Vec::new(),
                        },
                    );
                    match next {
                        Some(n) => {
                            pid = n;
                            continue;
                        }
                        None => break,
                    }
                }
                let page = src.page(pid)?;
                pages_read += 1;
                let mut kept = Vec::new();
                for row in page_rows(&page)? {
                    if filter(&row)? {
                        kept.push(row);
                    }
                }
                let next = page_next(&page);
                let old_rows = self
                    .cache
                    .get(&pid.0)
                    .map_or(&[][..], |c| c.rows.as_slice());
                diff_rows(old_rows, &kept, &mut added, &mut removed);
                rows.extend(kept.iter().cloned());
                self.cache.insert(pid.0, CachedPage { next, rows: kept });
                next
            } else {
                let entry = &self.cache[&pid.0];
                pages_skipped += 1;
                rows.extend(entry.rows.iter().cloned());
                entry.next
            };
            match next {
                Some(n) => pid = n,
                None => break,
            }
        }
        // Cache entries for pages no longer reachable from the root:
        // their rows left the scan (defensive — the heap never unlinks
        // pages today, but a vacuum would).
        let orphans: Vec<u64> = self
            .cache
            .keys()
            .copied()
            .filter(|k| !visited.contains(k))
            .collect();
        for k in orphans {
            if let Some(entry) = self.cache.remove(&k) {
                removed.extend(entry.rows);
            }
        }
        Ok(DeltaScan {
            rows,
            added,
            removed,
            rebuilt: false,
            pages_read,
            pages_skipped,
            pages_pruned,
        })
    }

    fn rebuild<S: PageSource>(
        &mut self,
        src: &S,
        root: PageId,
        filter: &dyn Fn(&Row) -> Result<bool>,
        pred: &PredSummary,
    ) -> Result<DeltaScan> {
        self.cache.clear();
        self.root = Some(root);
        let mut rows: Vec<Row> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut pages_read = 0u64;
        let mut pages_pruned = 0u64;
        let mut pid = root;
        loop {
            if !visited.insert(pid.0) {
                return Err(SqlError::Invalid(format!(
                    "heap chain cycle at page {}",
                    pid.0
                )));
            }
            if let Some(next) = prune_page(src, pid, pred) {
                pages_pruned += 1;
                self.cache.insert(
                    pid.0,
                    CachedPage {
                        next,
                        rows: Vec::new(),
                    },
                );
                match next {
                    Some(n) => {
                        pid = n;
                        continue;
                    }
                    None => break,
                }
            }
            let page = src.page(pid)?;
            pages_read += 1;
            let mut kept = Vec::new();
            for row in page_rows(&page)? {
                if filter(&row)? {
                    kept.push(row);
                }
            }
            let next = page_next(&page);
            rows.extend(kept.iter().cloned());
            self.cache.insert(pid.0, CachedPage { next, rows: kept });
            match next {
                Some(n) => pid = n,
                None => break,
            }
        }
        self.valid = true;
        Ok(DeltaScan {
            rows,
            added: Vec::new(),
            removed: Vec::new(),
            rebuilt: true,
            pages_read,
            pages_pruned,
            pages_skipped: 0,
        })
    }
}

/// Consult `src`'s sidecar for `pid`: `Some(next)` when the sidecar
/// refutes `pred` (the page can be skipped and the chain continued at
/// `next`), `None` when the page must be read — no sidecar, a decode
/// fault, an empty predicate, or a summary that can't rule the page out.
fn prune_page<S: PageSource>(src: &S, pid: PageId, pred: &PredSummary) -> Option<Option<PageId>> {
    if pred.is_empty() {
        return None;
    }
    let sc = src.sidecar_for(pid)?;
    if sc.refutes(pred) {
        src.count_page_pruned();
        Some(sc.next)
    } else {
        None
    }
}

/// Does the compiled expression call a user-defined function anywhere?
/// UDFs may close over external state (the RQL loop-body pattern), so a
/// filter containing one cannot be assumed stable across scans.
fn contains_udf(c: &CExpr) -> bool {
    match c {
        CExpr::Const(_) | CExpr::Col(_) | CExpr::Agg(_) => false,
        CExpr::Unary(_, e) | CExpr::IsNull(e, _) => contains_udf(e),
        CExpr::Binary(_, a, b) | CExpr::Like(a, b, _) => contains_udf(a) || contains_udf(b),
        CExpr::Func { udf, args, .. } => udf.is_some() || args.iter().any(contains_udf),
        CExpr::InList(e, list, _) => contains_udf(e) || list.iter().any(contains_udf),
        CExpr::Between(e, lo, hi, _) => contains_udf(e) || contains_udf(lo) || contains_udf(hi),
        CExpr::Case {
            operand,
            arms,
            else_branch,
        } => {
            operand.as_deref().is_some_and(contains_udf)
                || arms.iter().any(|(w, t)| contains_udf(w) || contains_udf(t))
                || else_branch.as_deref().is_some_and(contains_udf)
        }
    }
}

/// Drives a [`DeltaTableScanner`] for one `SELECT` shape, deciding per
/// catalog whether the delta path can reproduce the ordinary plan.
///
/// The delta path is taken only when the ordinary planner would pick a
/// plain seq scan of a single table: one FROM table, no joins, no native
/// index satisfying an equality conjunct (an index scan visits rows in
/// key order, and byte-identical output requires identical row order),
/// and no UDF calls in the WHERE clause (their results may vary between
/// scans). On any other shape [`DeltaSelectRunner::scan`] returns
/// `Ok(None)` and the caller must run the ordinary path.
pub struct DeltaSelectRunner {
    scanner: DeltaTableScanner,
}

impl Default for DeltaSelectRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaSelectRunner {
    /// Fresh runner with an empty scanner.
    pub fn new() -> Self {
        DeltaSelectRunner {
            scanner: DeltaTableScanner::new(),
        }
    }

    /// Drop cached scan state (e.g. after a fallback execution that the
    /// scanner did not observe).
    pub fn invalidate(&mut self) {
        self.scanner.invalidate();
    }

    /// Export the underlying scanner's state (see
    /// [`DeltaTableScanner::export_seed`]).
    pub fn export_seed(&self) -> Option<ScannerSeed> {
        self.scanner.export_seed()
    }

    /// Import scanner state previously exported at the preceding
    /// snapshot of the chain (see [`DeltaTableScanner::import_seed`]).
    pub fn import_seed(&mut self, seed: ScannerSeed) {
        self.scanner.import_seed(seed);
    }

    /// Structural eligibility: a single FROM table and no joins. Cheap
    /// pre-check; [`Self::scan`] still re-verifies against the catalog.
    pub fn eligible_shape(select: &SelectStmt) -> bool {
        select.from.len() == 1 && select.joins.is_empty()
    }

    /// Scan the FROM table through the delta scanner, applying all WHERE
    /// conjuncts. Returns `Ok(None)` — after invalidating the scanner —
    /// when the ordinary planner would not use a plain seq scan here.
    pub fn scan<S: PageSource>(
        &mut self,
        select: &SelectStmt,
        src: &S,
        catalog: &Catalog,
        udfs: &UdfRegistry,
    ) -> Result<Option<DeltaScan>> {
        if !Self::eligible_shape(select) {
            self.scanner.invalidate();
            return Ok(None);
        }
        let info = catalog.require_table(&select.from[0].name)?.clone();
        let alias = select.from[0].binding().to_ascii_lowercase();
        let mut scope = Scope::empty();
        scope.push(
            &alias,
            info.schema.columns.iter().map(|c| c.name.clone()).collect(),
        );

        let mut ast_conjuncts = Vec::new();
        if let Some(w) = &select.where_clause {
            exec::collect_conjuncts(w, &mut ast_conjuncts);
        }
        let mut compiled: Vec<CExpr> = Vec::with_capacity(ast_conjuncts.len());
        for c in ast_conjuncts {
            compiled.push(compile(c, &scope, udfs, None)?);
        }
        for c in &compiled {
            if contains_udf(c) {
                self.scanner.invalidate();
                return Ok(None);
            }
            // Mirror scan_base_table's probe detection: an equality
            // conjunct over an indexed column makes the planner take an
            // index scan, whose row order a chain walk cannot reproduce.
            if let Some((off, _)) = exec::equality_probe(c) {
                let col = &info.schema.columns[off].name;
                if catalog.index_on_column(&info.schema.name, col).is_some() {
                    self.scanner.invalidate();
                    return Ok(None);
                }
            }
        }
        // Single-table scope: compiled `Col` offsets *are* table column
        // indices, so the refutable summary uses col_base 0.
        let pred = PredSummary::from_conjuncts(compiled.iter(), 0);
        let filter = |row: &Row| -> Result<bool> {
            for c in &compiled {
                if !eval(c, row, &[])?.is_truthy() {
                    return Ok(false);
                }
            }
            Ok(true)
        };
        self.scanner.scan(src, info.root, &filter, &pred).map(Some)
    }
}

/// Run the post-scan stages of `select` (projection/aggregation,
/// DISTINCT, ORDER BY, LIMIT) over already-filtered base rows in scan
/// order. This is [`exec::finish_select`] — the same code the ordinary
/// plan runs — so the output is byte-identical to a full execution whose
/// scan produced `rows`.
pub fn finish_over_rows(
    select: &SelectStmt,
    rows: Vec<Row>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<(Vec<String>, Vec<Row>)> {
    let info = catalog.require_table(&select.from[0].name)?;
    let alias = select.from[0].binding().to_ascii_lowercase();
    let cols: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();
    let mut scope = Scope::empty();
    scope.push(&alias, cols.clone());
    let written = vec![(alias, cols)];
    exec::finish_select(select, rows, &scope, &written, udfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, ExecOutcome};
    use crate::parser::parse_select;
    use rql_pagestore::PagerConfig;
    use rql_retro::RetroConfig;

    fn small_page_db() -> std::sync::Arc<Database> {
        Database::in_memory(RetroConfig {
            pager: PagerConfig {
                page_size: 256,
                cache_capacity: 1024,
                wal_sync_on_commit: false,
            },
            ..RetroConfig::new()
        })
    }

    fn snapshot(db: &Database) -> u64 {
        db.declare_snapshot().unwrap()
    }

    #[test]
    fn diff_rows_multiset_and_representation() {
        let old = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(1)],
            vec![Value::Integer(2)],
        ];
        let new = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(3)],
            vec![Value::Real(2.0)],
        ];
        let (mut added, mut removed) = (Vec::new(), Vec::new());
        diff_rows(&old, &new, &mut added, &mut removed);
        // One Integer(1) and the Integer(2) leave; Integer(3) and
        // Real(2.0) arrive — Integer(2) vs Real(2.0) are SQL-equal but
        // NOT representation-equal, and must show up in the delta.
        assert_eq!(added, vec![vec![Value::Integer(3)], vec![Value::Real(2.0)]]);
        assert_eq!(
            removed,
            vec![vec![Value::Integer(1)], vec![Value::Integer(2)]]
        );
    }

    #[test]
    fn rebuild_matches_ordinary_scan() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        for i in 0..40 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
                .unwrap();
        }
        let select = parse_select("SELECT a, b FROM t WHERE a >= 10").unwrap();
        let expected = db.query("SELECT a, b FROM t WHERE a >= 10").unwrap();

        let view = db.store().current_view();
        let catalog = Catalog::load(&view).unwrap();
        let udfs = UdfRegistry::new();
        let mut runner = DeltaSelectRunner::new();
        let scan = runner
            .scan(&select, &view, &catalog, &udfs)
            .unwrap()
            .expect("seq-scannable shape");
        assert!(scan.rebuilt);
        assert_eq!(scan.pages_skipped, 0);
        let (cols, rows) = finish_over_rows(&select, scan.rows, &catalog, &udfs).unwrap();
        assert_eq!(cols, expected.columns);
        assert_eq!(rows, expected.rows);
    }

    #[test]
    fn delta_scan_skips_unchanged_pages_and_matches_full_scan() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        for i in 0..60 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'padpadpad-{i}')"))
                .unwrap();
        }
        let s1 = snapshot(&db);
        // Touch a single row: only its page(s) plus the root may change.
        db.execute("UPDATE t SET b = 'CHANGED' WHERE a = 30")
            .unwrap();
        let s2 = snapshot(&db);

        let readers = db.store().open_snapshot_chain(&[s1, s2]).unwrap();
        let select = parse_select("SELECT a, b FROM t").unwrap();
        let udfs = UdfRegistry::new();
        let mut runner = DeltaSelectRunner::new();

        let catalog1 = Catalog::load(&readers[0]).unwrap();
        let scan1 = runner
            .scan(&select, &readers[0], &catalog1, &udfs)
            .unwrap()
            .unwrap();
        assert!(scan1.rebuilt);
        let total_pages = scan1.pages_read;
        assert!(total_pages > 3, "want a multi-page heap, got {total_pages}");

        let catalog2 = Catalog::load(&readers[1]).unwrap();
        let scan2 = runner
            .scan(&select, &readers[1], &catalog2, &udfs)
            .unwrap()
            .unwrap();
        assert!(!scan2.rebuilt);
        assert!(
            scan2.pages_skipped > 0,
            "expected unchanged pages to be skipped (read {}, skipped {})",
            scan2.pages_read,
            scan2.pages_skipped
        );
        assert!(scan2.pages_read < total_pages);

        // Rows must equal a from-scratch AS OF scan, in order.
        let expected = db.query_as_of(s2, "SELECT a, b FROM t").unwrap();
        assert_eq!(scan2.rows, expected.rows);

        // The delta must describe exactly the one update.
        assert_eq!(
            scan2.added,
            vec![vec![Value::Integer(30), Value::text("CHANGED")]]
        );
        assert_eq!(
            scan2.removed,
            vec![vec![Value::Integer(30), Value::text("padpadpad-30")]]
        );
    }

    #[test]
    fn delta_scan_sees_inserts_and_deletes() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..30 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let s1 = snapshot(&db);
        db.execute("INSERT INTO t VALUES (100)").unwrap();
        db.execute("DELETE FROM t WHERE a = 5").unwrap();
        let s2 = snapshot(&db);

        let readers = db.store().open_snapshot_chain(&[s1, s2]).unwrap();
        let select = parse_select("SELECT a FROM t").unwrap();
        let udfs = UdfRegistry::new();
        let mut runner = DeltaSelectRunner::new();
        let c1 = Catalog::load(&readers[0]).unwrap();
        runner
            .scan(&select, &readers[0], &c1, &udfs)
            .unwrap()
            .unwrap();
        let c2 = Catalog::load(&readers[1]).unwrap();
        let scan2 = runner
            .scan(&select, &readers[1], &c2, &udfs)
            .unwrap()
            .unwrap();
        assert_eq!(scan2.added, vec![vec![Value::Integer(100)]]);
        assert_eq!(scan2.removed, vec![vec![Value::Integer(5)]]);
        let expected = db.query_as_of(s2, "SELECT a FROM t").unwrap();
        assert_eq!(scan2.rows, expected.rows);
    }

    #[test]
    fn seed_export_import_keeps_chain_delta() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        for i in 0..60 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'padpadpad-{i}')"))
                .unwrap();
        }
        let s1 = snapshot(&db);
        db.execute("UPDATE t SET b = 'CHANGED' WHERE a = 30")
            .unwrap();
        let s2 = snapshot(&db);

        let readers = db.store().open_snapshot_chain(&[s1, s2]).unwrap();
        let select = parse_select("SELECT a, b FROM t").unwrap();
        let udfs = UdfRegistry::new();

        // Scan s1, export, and continue on a *fresh* runner via the seed.
        let mut seeder = DeltaSelectRunner::new();
        let c1 = Catalog::load(&readers[0]).unwrap();
        seeder
            .scan(&select, &readers[0], &c1, &udfs)
            .unwrap()
            .unwrap();
        let seed = seeder.export_seed().expect("seed after scan");

        let mut fresh = DeltaSelectRunner::new();
        assert!(fresh.export_seed().is_none(), "fresh scanner has no seed");
        fresh.import_seed(seed);
        let c2 = Catalog::load(&readers[1]).unwrap();
        let scan2 = fresh
            .scan(&select, &readers[1], &c2, &udfs)
            .unwrap()
            .unwrap();
        assert!(!scan2.rebuilt, "imported seed must keep the delta path");
        assert!(scan2.pages_skipped > 0);
        let expected = db.query_as_of(s2, "SELECT a, b FROM t").unwrap();
        assert_eq!(scan2.rows, expected.rows);
        assert_eq!(
            scan2.added,
            vec![vec![Value::Integer(30), Value::text("CHANGED")]]
        );
        assert_eq!(
            scan2.removed,
            vec![vec![Value::Integer(30), Value::text("padpadpad-30")]]
        );
    }

    #[test]
    fn filter_applies_before_caching() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..30 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let s1 = snapshot(&db);
        db.execute("UPDATE t SET a = 200 WHERE a = 2").unwrap();
        let s2 = snapshot(&db);

        let readers = db.store().open_snapshot_chain(&[s1, s2]).unwrap();
        let select = parse_select("SELECT a FROM t WHERE a < 100").unwrap();
        let udfs = UdfRegistry::new();
        let mut runner = DeltaSelectRunner::new();
        let c1 = Catalog::load(&readers[0]).unwrap();
        runner
            .scan(&select, &readers[0], &c1, &udfs)
            .unwrap()
            .unwrap();
        let c2 = Catalog::load(&readers[1]).unwrap();
        let scan2 = runner
            .scan(&select, &readers[1], &c2, &udfs)
            .unwrap()
            .unwrap();
        // 2 → 200 leaves the filtered set entirely; nothing is added.
        assert_eq!(scan2.added, Vec::<Row>::new());
        assert_eq!(scan2.removed, vec![vec![Value::Integer(2)]]);
        let expected = db.query_as_of(s2, "SELECT a FROM t WHERE a < 100").unwrap();
        assert_eq!(scan2.rows, expected.rows);
    }

    #[test]
    fn index_probe_shape_bails_to_ordinary_path() {
        let db = small_page_db();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.execute("CREATE INDEX idx_a ON t (a)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
        let view = db.store().current_view();
        let catalog = Catalog::load(&view).unwrap();
        let udfs = UdfRegistry::new();
        let mut runner = DeltaSelectRunner::new();

        // Equality over the indexed column → planner uses the index.
        let probed = parse_select("SELECT * FROM t WHERE a = 1").unwrap();
        assert!(runner
            .scan(&probed, &view, &catalog, &udfs)
            .unwrap()
            .is_none());

        // Range predicate over the same column stays a seq scan.
        let ranged = parse_select("SELECT * FROM t WHERE a > 0").unwrap();
        assert!(runner
            .scan(&ranged, &view, &catalog, &udfs)
            .unwrap()
            .is_some());

        // Joins are never delta-scanned.
        let joined = parse_select("SELECT * FROM t, t t2").unwrap();
        assert!(runner
            .scan(&joined, &view, &catalog, &udfs)
            .unwrap()
            .is_none());
    }

    #[test]
    fn where_udf_bails() {
        let db = small_page_db();
        db.register_udf("always_true", |_| Ok(Value::Integer(1)));
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let view = db.store().current_view();
        let catalog = Catalog::load(&view).unwrap();
        let select = parse_select("SELECT a FROM t WHERE always_true()").unwrap();
        // Compile against the database's registry (which knows the UDF).
        let outcome = db.execute("SELECT a FROM t WHERE always_true()").unwrap();
        assert!(matches!(outcome, ExecOutcome::Rows(_)));
        let mut runner = DeltaSelectRunner::new();
        let udfs_with = {
            let mut r = UdfRegistry::new();
            r.register("always_true", |_| Ok(Value::Integer(1)));
            r
        };
        assert!(runner
            .scan(&select, &view, &catalog, &udfs_with)
            .unwrap()
            .is_none());
    }
}
