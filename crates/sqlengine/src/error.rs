//! SQL engine error type.

use std::fmt;

use rql_pagestore::StoreError;

use crate::cancel::CancelCause;
use crate::lexer::Span;

/// Errors raised by parsing, planning or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexer/parser failure with position context.
    Parse(String),
    /// Lexer/parser failure carrying the byte range of the offending
    /// source text, so front-ends can point at the exact location.
    ParseAt {
        /// Human-readable message (no position prefix).
        message: String,
        /// Byte range of the offending text.
        span: Span,
    },
    /// Unknown table, column, function, or other name resolution failure.
    Unknown(String),
    /// Semantically invalid statement (e.g. aggregate misuse).
    Invalid(String),
    /// Constraint violation (duplicate table, record too large, …).
    Constraint(String),
    /// Underlying storage failure.
    Store(StoreError),
    /// A user-defined function reported an error.
    Udf(String),
    /// The query was cooperatively cancelled mid-flight (client `CANCEL`
    /// or deadline). Carries the cause so the `[RQL3xx]` code survives.
    Cancelled(CancelCause),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::ParseAt { message, span } => {
                write!(
                    f,
                    "parse error: {message} (bytes {}..{})",
                    span.start, span.end
                )
            }
            SqlError::Unknown(m) => write!(f, "unknown name: {m}"),
            SqlError::Invalid(m) => write!(f, "invalid statement: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Store(e) => write!(f, "storage error: {e}"),
            SqlError::Udf(m) => write!(f, "udf error: {m}"),
            SqlError::Cancelled(cause) => write!(f, "cancelled: {cause}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl SqlError {
    /// Build a [`SqlError::ParseAt`] from a message and a source span.
    pub fn parse_at(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::ParseAt {
            message: message.into(),
            span,
        }
    }

    /// The source span attached to this error, if any.
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::ParseAt { span, .. } => Some(*span),
            _ => None,
        }
    }

    /// The bare message without the variant prefix or position suffix.
    pub fn message(&self) -> &str {
        match self {
            SqlError::Parse(m)
            | SqlError::Unknown(m)
            | SqlError::Invalid(m)
            | SqlError::Constraint(m)
            | SqlError::Udf(m) => m,
            SqlError::ParseAt { message, .. } => message,
            SqlError::Store(_) => "storage error",
            SqlError::Cancelled(cause) => cause.reason(),
        }
    }
}

impl From<StoreError> for SqlError {
    fn from(e: StoreError) -> Self {
        SqlError::Store(e)
    }
}

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        let e: SqlError = StoreError::InvalidOffset(3).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(SqlError::Unknown("t".into()).to_string().contains("t"));
    }
}
