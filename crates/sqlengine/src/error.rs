//! SQL engine error type.

use std::fmt;

use rql_pagestore::StoreError;

/// Errors raised by parsing, planning or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexer/parser failure with position context.
    Parse(String),
    /// Unknown table, column, function, or other name resolution failure.
    Unknown(String),
    /// Semantically invalid statement (e.g. aggregate misuse).
    Invalid(String),
    /// Constraint violation (duplicate table, record too large, …).
    Constraint(String),
    /// Underlying storage failure.
    Store(StoreError),
    /// A user-defined function reported an error.
    Udf(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Unknown(m) => write!(f, "unknown name: {m}"),
            SqlError::Invalid(m) => write!(f, "invalid statement: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Store(e) => write!(f, "storage error: {e}"),
            SqlError::Udf(m) => write!(f, "udf error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for SqlError {
    fn from(e: StoreError) -> Self {
        SqlError::Store(e)
    }
}

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        let e: SqlError = StoreError::InvalidOffset(3).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(SqlError::Unknown("t".into()).to_string().contains("t"));
    }
}
