//! SELECT planning and execution.
//!
//! The planner is deliberately SQLite-shaped because the paper explains
//! RQL costs in terms of SQLite behaviour:
//!
//! * single-table equality predicates use a **native index** when one
//!   exists (Figure 9's "w/ index" case);
//! * an equi-join with no native index on the inner side builds an
//!   **ad-hoc hash index** over the inner table — the analog of SQLite's
//!   "automatic covering index", whose build time is reported separately
//!   in [`ExecStats::index_creation`] (the dominant bar of Figure 9's
//!   "w/o index" case);
//! * everything else is scan → filter → hash aggregate → sort.
//!
//! Execution materializes intermediate rows; result rows are delivered to
//! a per-row callback (the `sqlite3_exec` shape the RQL loop body uses).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt};
use crate::cancel::{CancelToken, CHECK_EVERY_ROWS};
use crate::catalog::{Catalog, IndexInfo, TableInfo};
use crate::cexpr::{compile, eval, AggFunc, AggSpec, CExpr, Scope};
use crate::error::{Result, SqlError};
use crate::exec_stats::ExecStats;
use crate::pagesource::PageSource;
use crate::record::{encode_index_key, Row};
use crate::udf::UdfRegistry;
use crate::value::{GroupKey, Value};

/// A query's output.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
    /// Cost breakdown (I/O delta and SPT build filled by the caller).
    pub stats: ExecStats,
    /// Human-readable access-path decisions, one line per table, e.g.
    /// `"orders: seq scan"`, `"lineitem: index nested loop via idx_l"`.
    /// Tests and tooling assert planner behaviour through this.
    pub plan: Vec<String>,
}

impl QueryResult {
    /// First value of the first row, if any (for single-value queries).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Run a `SELECT` over `src`. `catalog` must describe the same source
/// (i.e. be loaded through it, so AS OF sees the snapshot's schema).
pub fn run_select<S: PageSource>(
    select: &SelectStmt,
    src: &S,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<QueryResult> {
    run_select_cancellable(select, src, catalog, udfs, None)
}

/// [`run_select`] with a cooperative [`CancelToken`] polled at scan and
/// join checkpoints (every [`CHECK_EVERY_ROWS`] rows), so a long scan
/// unwinds with `SqlError::Cancelled` within one batch of a trip.
pub fn run_select_cancellable<S: PageSource>(
    select: &SelectStmt,
    src: &S,
    catalog: &Catalog,
    udfs: &UdfRegistry,
    cancel: Option<&CancelToken>,
) -> Result<QueryResult> {
    let started = Instant::now();
    if let Some(token) = cancel {
        token.check()?;
    }
    let mut index_creation = Duration::ZERO;
    let mut plan: Vec<String> = Vec::new();

    // ---- bind tables ---------------------------------------------------
    // For comma-joins, mimic SQLite's planner: tables whose join column
    // has a native index go last, so they become the inner (probed) side
    // of an index nested-loop instead of being scanned first. This is
    // what makes Figure 9's "w/ index" case skip the ad-hoc index build.
    let from_order = order_comma_join(select, catalog);
    let mut bindings: Vec<(String, TableInfo)> = Vec::new();
    for tref in from_order
        .iter()
        .copied()
        .chain(select.joins.iter().map(|j| &j.table))
    {
        let info = catalog.require_table(&tref.name)?.clone();
        bindings.push((tref.binding().to_ascii_lowercase(), info));
    }
    let mut scope = Scope::empty();
    let mut binding_ranges: Vec<(usize, usize)> = Vec::new(); // [start, end)
    for (alias, info) in &bindings {
        let cols: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();
        let start = scope.push(alias, cols);
        binding_ranges.push((start, scope.width()));
    }

    // ---- compile conjuncts ----------------------------------------------
    let mut ast_conjuncts: Vec<&Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        collect_conjuncts(w, &mut ast_conjuncts);
    }
    for j in &select.joins {
        collect_conjuncts(&j.on, &mut ast_conjuncts);
    }
    // (compiled conjunct, bindings needed before it can run)
    let mut conjuncts: Vec<(CExpr, usize)> = Vec::new();
    for c in ast_conjuncts {
        let compiled = compile(c, &scope, udfs, None)?;
        let mut offs = Vec::new();
        compiled.column_offsets(&mut offs);
        let need = offs
            .iter()
            .map(|&o| scope.binding_index_of_offset(o) + 1)
            .max()
            .unwrap_or(0);
        conjuncts.push((compiled, need));
    }
    let mut used = vec![false; conjuncts.len()];

    // ---- build the joined row set ----------------------------------------
    let mut rows: Vec<Row>;
    if bindings.is_empty() {
        rows = vec![Vec::new()]; // SELECT without FROM: one empty row
    } else {
        rows = scan_base_table(
            src,
            catalog,
            &bindings[0],
            binding_ranges[0],
            &conjuncts,
            &mut used,
            &mut plan,
            cancel,
        )?;
        for k in 1..bindings.len() {
            if let Some(token) = cancel {
                token.check()?;
            }
            rows = join_next_table(
                src,
                catalog,
                &bindings[k],
                binding_ranges[k],
                rows,
                &conjuncts,
                &mut used,
                &mut index_creation,
                &mut plan,
                cancel,
            )?;
        }
    }
    // Any conjunct not yet applied (e.g. constant predicates).
    for (i, (c, _)) in conjuncts.iter().enumerate() {
        if !used[i] {
            rows = filter_rows(rows, c)?;
            used[i] = true;
        }
    }

    // ---- projection / aggregation ---------------------------------------
    // Wildcards expand in the *written* FROM order, regardless of how the
    // planner reordered execution.
    let written_bindings: Vec<(String, Vec<String>)> = select
        .from
        .iter()
        .chain(select.joins.iter().map(|j| &j.table))
        .map(|tref| {
            let info = catalog.require_table(&tref.name)?;
            Ok((
                tref.binding().to_ascii_lowercase(),
                info.schema.columns.iter().map(|c| c.name.clone()).collect(),
            ))
        })
        .collect::<Result<_>>()?;
    let (columns, out_rows) = finish_select(select, rows, &scope, &written_bindings, udfs)?;

    let stats = ExecStats {
        index_creation,
        eval: started.elapsed().saturating_sub(index_creation),
        rows: out_rows.len() as u64,
        ..Default::default()
    };
    Ok(QueryResult {
        columns,
        rows: out_rows,
        stats,
        plan,
    })
}

/// The post-scan stages of a `SELECT`: wildcard expansion, projection or
/// aggregation, DISTINCT, ORDER BY and LIMIT (the last two inside the
/// projection stages, which append their own sort keys).
///
/// `rows` are fully joined and filtered input rows in scan order. Shared
/// between [`run_select`] and the delta-aware path in [`crate::delta`],
/// which re-runs these stages over cached base rows so its output is the
/// ordinary plan's, byte for byte.
pub(crate) fn finish_select(
    select: &SelectStmt,
    rows: Vec<Row>,
    scope: &Scope,
    written_bindings: &[(String, Vec<String>)],
    udfs: &UdfRegistry,
) -> Result<(Vec<String>, Vec<Row>)> {
    let items = expand_items(&select.items, written_bindings, scope)?;
    let is_aggregate = !select.group_by.is_empty()
        || items.iter().any(|(e, _)| e.contains_aggregate())
        || select.having.as_ref().is_some_and(Expr::contains_aggregate);

    let (columns, mut out_rows) = if is_aggregate {
        run_aggregate(select, &items, rows, scope, udfs)?
    } else {
        run_projection(select, &items, rows, scope, udfs)?
    };

    if select.distinct {
        let mut seen: HashSet<GroupKey> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|r| seen.insert(GroupKey(r.clone())));
    }
    Ok((columns, out_rows))
}

/// Order the FROM tables of a comma-join: tables with a native index on
/// an equi-join column move to the back (inner/probed side). Explicit
/// `JOIN … ON` chains keep the written order.
fn order_comma_join<'a>(
    select: &'a SelectStmt,
    catalog: &Catalog,
) -> Vec<&'a crate::ast::TableRef> {
    let refs: Vec<&crate::ast::TableRef> = select.from.iter().collect();
    if refs.len() < 2 || !select.joins.is_empty() {
        return refs;
    }
    // Column = Column equality conjuncts at the AST level.
    let mut conjuncts = Vec::new();
    if let Some(w) = &select.where_clause {
        collect_conjuncts(w, &mut conjuncts);
    }
    let mut join_cols: Vec<(&Option<String>, &String)> = Vec::new();
    for c in &conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = c
        {
            if let (
                Expr::Column {
                    table: ta,
                    name: na,
                },
                Expr::Column {
                    table: tb,
                    name: nb,
                },
            ) = (&**lhs, &**rhs)
            {
                join_cols.push((ta, na));
                join_cols.push((tb, nb));
            }
        }
    }
    let has_probe_index = |tref: &crate::ast::TableRef| -> bool {
        let Some(info) = catalog.table(&tref.name) else {
            return false;
        };
        join_cols.iter().any(|(qual, col)| {
            let qual_ok = qual
                .as_deref()
                .is_none_or(|q| q.eq_ignore_ascii_case(tref.binding()));
            qual_ok
                && info.schema.column_index(col).is_some()
                && catalog.index_on_column(&info.schema.name, col).is_some()
        })
    };
    let (mut unindexed, indexed): (Vec<_>, Vec<_>) =
        refs.into_iter().partition(|t| !has_probe_index(t));
    if unindexed.is_empty() {
        // Every table is indexed; keep written order (first one scans).
        return indexed;
    }
    unindexed.extend(indexed);
    unindexed
}

/// Split nested ANDs into conjuncts.
pub(crate) fn collect_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        collect_conjuncts(lhs, out);
        collect_conjuncts(rhs, out);
    } else {
        out.push(e);
    }
}

/// Scan the first table, applying its single-table conjuncts and using a
/// native index for an equality conjunct when possible.
#[allow(clippy::too_many_arguments)]
fn scan_base_table<S: PageSource>(
    src: &S,
    catalog: &Catalog,
    binding: &(String, TableInfo),
    range: (usize, usize),
    conjuncts: &[(CExpr, usize)],
    used: &mut [bool],
    plan: &mut Vec<String>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Row>> {
    let _span = rql_trace::span(rql_trace::SpanId::Scan);
    let (_, info) = binding;
    let heap = info.heap();
    let applicable: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, (c, need))| !used[*i] && *need <= 1 && c.references_columns())
        .map(|(i, _)| i)
        .collect();

    // Equality probe through a native index?
    let mut probe: Option<(&IndexInfo, Value)> = None;
    for &i in &applicable {
        if let Some((off, v)) = equality_probe(&conjuncts[i].0) {
            let col = &info.schema.columns[off - range.0].name;
            if let Some(idx) = catalog.index_on_column(&info.schema.name, col) {
                probe = Some((idx, v));
                break;
            }
        }
    }

    let mut rows = Vec::new();
    let keep = |row: &Row| -> Result<bool> {
        for &i in &applicable {
            if !eval(&conjuncts[i].0, row, &[])?.is_truthy() {
                return Ok(false);
            }
        }
        Ok(true)
    };
    match probe {
        Some((idx, v)) => {
            plan.push(format!(
                "{}: index scan via {}",
                info.schema.name, idx.schema.name
            ));
            let mut key = Vec::new();
            encode_index_key(std::slice::from_ref(&v), &mut key);
            let tree = crate::btree::BTree::new(idx.root);
            let mut seen = 0usize;
            for rid in tree.scan_prefix(src, &key)? {
                seen += 1;
                if seen.is_multiple_of(CHECK_EVERY_ROWS) {
                    if let Some(token) = cancel {
                        token.check()?;
                    }
                }
                let row = heap.get_row(src, rid)?;
                if keep(&row)? {
                    rows.push(row);
                }
            }
        }
        None => {
            plan.push(format!("{}: seq scan", info.schema.name));
            // Refutable summary of the conjuncts this scan applies; the
            // compiled offsets are absolute, so rebase to the table's
            // column range. Sidecar-less sources prune nothing.
            let pred = crate::sidecar::PredSummary::from_conjuncts(
                applicable.iter().map(|&i| &conjuncts[i].0),
                range.0,
            );
            let mut seen = 0usize;
            heap.scan_pruned(src, &pred, |_, row| {
                seen += 1;
                if seen.is_multiple_of(CHECK_EVERY_ROWS) {
                    if let Some(token) = cancel {
                        token.check()?;
                    }
                }
                if keep(&row)? {
                    rows.push(row);
                }
                Ok(true)
            })?;
        }
    }
    for i in applicable {
        used[i] = true;
    }
    Ok(rows)
}

/// `Col(off) = <constant>` (either orientation) → `(off, value)`.
pub(crate) fn equality_probe(c: &CExpr) -> Option<(usize, Value)> {
    let CExpr::Binary(BinOp::Eq, lhs, rhs) = c else {
        return None;
    };
    match (&**lhs, &**rhs) {
        (CExpr::Col(off), e) | (e, CExpr::Col(off)) if !e.references_columns() => {
            eval(e, &[], &[]).ok().map(|v| (*off, v))
        }
        _ => None,
    }
}

/// Join the next table onto the current row set.
#[allow(clippy::too_many_arguments)]
fn join_next_table<S: PageSource>(
    src: &S,
    catalog: &Catalog,
    binding: &(String, TableInfo),
    range: (usize, usize),
    prefix_rows: Vec<Row>,
    conjuncts: &[(CExpr, usize)],
    used: &mut [bool],
    index_creation: &mut Duration,
    plan: &mut Vec<String>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Row>> {
    let _span = rql_trace::span(rql_trace::SpanId::Join);
    let (_, info) = binding;
    let heap = info.heap();
    let prefix_width = range.0;
    // Row-batch cancellation checkpoint shared by every join strategy
    // below: polls the token once per CHECK_EVERY_ROWS rows touched.
    let mut touched = 0usize;
    let mut checkpoint = move || -> Result<()> {
        touched += 1;
        if touched.is_multiple_of(CHECK_EVERY_ROWS) {
            if let Some(token) = cancel {
                token.check()?;
            }
        }
        Ok(())
    };

    // Conjuncts that are (newly) applicable once this table is bound:
    // unused, and every referenced offset is within the extended prefix.
    let new_conjuncts: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, (c, _))| {
            !used[*i] && c.references_columns() && {
                let mut offs = Vec::new();
                c.column_offsets(&mut offs);
                offs.iter().all(|&o| o < range.1)
            }
        })
        .map(|(i, _)| i)
        .collect();

    // Partition: conjuncts touching only this table vs. linking ones.
    let mut local: Vec<usize> = Vec::new();
    let mut linking: Vec<usize> = Vec::new();
    for &i in &new_conjuncts {
        let mut offs = Vec::new();
        conjuncts[i].0.column_offsets(&mut offs);
        if offs.iter().all(|&o| o >= range.0 && o < range.1) {
            local.push(i);
        } else {
            linking.push(i);
        }
    }

    // Find an equi-join among the linking conjuncts:
    // side A only in this table, side B only in the prefix.
    let mut equi: Option<(usize, CExpr, CExpr)> = None; // (conjunct, this-side, prefix-side)
    for &i in &linking {
        if let CExpr::Binary(BinOp::Eq, lhs, rhs) = &conjuncts[i].0 {
            let side = |e: &CExpr| -> Option<bool> {
                // Some(true) = all offsets in this table; Some(false) = all in prefix.
                let mut offs = Vec::new();
                e.column_offsets(&mut offs);
                if offs.is_empty() {
                    return None;
                }
                if offs.iter().all(|&o| o >= range.0 && o < range.1) {
                    Some(true)
                } else if offs.iter().all(|&o| o < prefix_width) {
                    Some(false)
                } else {
                    None
                }
            };
            match (side(lhs), side(rhs)) {
                (Some(true), Some(false)) => {
                    equi = Some((i, (**lhs).clone(), (**rhs).clone()));
                    break;
                }
                (Some(false), Some(true)) => {
                    equi = Some((i, (**rhs).clone(), (**lhs).clone()));
                    break;
                }
                _ => {}
            }
        }
    }

    // Helper: pad a bare table row out to full-scope offsets.
    let pad = |row: &Row| -> Row {
        let mut padded = vec![Value::Null; prefix_width];
        padded.extend(row.iter().cloned());
        padded
    };
    let local_keep = |padded: &Row| -> Result<bool> {
        for &i in &local {
            if !eval(&conjuncts[i].0, padded, &[])?.is_truthy() {
                return Ok(false);
            }
        }
        Ok(true)
    };

    let mut out: Vec<Row> = Vec::new();
    match equi {
        Some((ci, this_side, prefix_side)) => {
            // Native index on this table's join column?
            let native = match &this_side {
                CExpr::Col(off) => {
                    let col = &info.schema.columns[*off - range.0].name;
                    catalog.index_on_column(&info.schema.name, col)
                }
                _ => None,
            };
            match native {
                Some(idx) => {
                    // Index nested-loop join through the native B-tree.
                    plan.push(format!(
                        "{}: index nested loop via {}",
                        info.schema.name, idx.schema.name
                    ));
                    let tree = crate::btree::BTree::new(idx.root);
                    for prow in &prefix_rows {
                        let key_val = eval(&prefix_side, prow, &[])?;
                        if key_val.is_null() {
                            continue;
                        }
                        let mut key = Vec::new();
                        encode_index_key(std::slice::from_ref(&key_val), &mut key);
                        for rid in tree.scan_prefix(src, &key)? {
                            checkpoint()?;
                            let trow = heap.get_row(src, rid)?;
                            let padded = pad(&trow);
                            if !local_keep(&padded)? {
                                continue;
                            }
                            let mut joined = prow.clone();
                            joined.extend(trow);
                            // Re-verify (index key space conflates 1/1.0).
                            if eval(&conjuncts[ci].0, &joined, &[])?.is_truthy() {
                                out.push(joined);
                            }
                        }
                    }
                }
                None => {
                    // Ad-hoc hash index over this table (SQLite's automatic
                    // covering index). Build time is reported separately.
                    plan.push(format!(
                        "{}: hash join (ad-hoc index build)",
                        info.schema.name
                    ));
                    let build_start = Instant::now();
                    let mut hash: HashMap<GroupKey, Vec<Row>> = HashMap::new();
                    {
                        let _idx_span = rql_trace::span(rql_trace::SpanId::IndexBuild);
                        heap.scan(src, |_, trow| {
                            checkpoint()?;
                            let padded = pad(&trow);
                            if local_keep(&padded)? {
                                let key_val = eval(&this_side, &padded, &[])?;
                                if !key_val.is_null() {
                                    hash.entry(GroupKey(vec![key_val])).or_default().push(trow);
                                }
                            }
                            Ok(true)
                        })?;
                    }
                    *index_creation += build_start.elapsed();
                    for prow in &prefix_rows {
                        let key_val = eval(&prefix_side, prow, &[])?;
                        if key_val.is_null() {
                            continue;
                        }
                        if let Some(matches) = hash.get(&GroupKey(vec![key_val])) {
                            for trow in matches {
                                checkpoint()?;
                                let mut joined = prow.clone();
                                joined.extend(trow.iter().cloned());
                                out.push(joined);
                            }
                        }
                    }
                }
            }
            used[ci] = true;
        }
        None => {
            // Cross join with local filters applied to the inner scan.
            plan.push(format!("{}: nested-loop cross join", info.schema.name));
            let mut inner: Vec<Row> = Vec::new();
            heap.scan(src, |_, trow| {
                checkpoint()?;
                let padded = pad(&trow);
                if local_keep(&padded)? {
                    inner.push(trow);
                }
                Ok(true)
            })?;
            for prow in &prefix_rows {
                for trow in &inner {
                    checkpoint()?;
                    let mut joined = prow.clone();
                    joined.extend(trow.iter().cloned());
                    out.push(joined);
                }
            }
        }
    }
    for i in local {
        used[i] = true;
    }
    // Remaining linking conjuncts become post-join filters.
    for i in linking {
        if !used[i] {
            out = filter_rows(out, &conjuncts[i].0)?;
            used[i] = true;
        }
    }
    Ok(out)
}

fn filter_rows(rows: Vec<Row>, c: &CExpr) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if eval(c, &row, &[])?.is_truthy() {
            out.push(row);
        }
    }
    Ok(out)
}

/// Expand `*` / `t.*` into concrete expressions with output names.
///
/// `*` expands in the *written* FROM order (`written_bindings`), not the
/// planner's execution order — join reordering must never change the
/// column order a user sees. Expansion is alias-qualified so duplicate
/// column names across tables resolve unambiguously.
fn expand_items(
    items: &[SelectItem],
    written_bindings: &[(String, Vec<String>)],
    scope: &Scope,
) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for (alias, cols) in written_bindings {
                    for name in cols {
                        out.push((
                            Expr::Column {
                                table: Some(alias.clone()),
                                name: name.clone(),
                            },
                            name.clone(),
                        ));
                    }
                }
                if out.is_empty() && scope.width() > 0 {
                    return Err(SqlError::Invalid("cannot expand *".into()));
                }
            }
            SelectItem::TableWildcard(t) => {
                let (_, cols) = scope.binding_columns(t)?;
                for name in cols {
                    out.push((
                        Expr::Column {
                            table: Some(t.clone()),
                            name: name.clone(),
                        },
                        name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        Expr::Function { name, .. } => name.clone(),
        // SQLite names a literal projection by its text ("SELECT 1" → "1").
        Expr::Literal(v) => v.to_string(),
        _ => "expr".to_owned(),
    }
}

fn run_projection(
    select: &SelectStmt,
    items: &[(Expr, String)],
    rows: Vec<Row>,
    scope: &Scope,
    udfs: &UdfRegistry,
) -> Result<(Vec<String>, Vec<Row>)> {
    let mut compiled = Vec::with_capacity(items.len());
    for (expr, _) in items {
        compiled.push(compile(expr, scope, udfs, None)?);
    }
    let columns: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();

    // ORDER BY keys.
    let order = compile_order(select, &columns, scope, udfs, None)?;

    let mut out: Vec<(Row, Row)> = Vec::with_capacity(rows.len()); // (keys, row)
    for row in rows {
        let mut orow = Vec::with_capacity(compiled.len());
        for c in &compiled {
            orow.push(eval(c, &row, &[])?);
        }
        let keys = eval_order_keys(&order, &row, &orow, &[])?;
        out.push((keys, orow));
    }
    let rows = finish_rows(select, order.as_ref(), out)?;
    Ok((columns, rows))
}

enum OrderKeys {
    /// Keys computed from the input row (compiled expressions) or the
    /// output row (column index), with per-key descending flags.
    Keys(Vec<(OrderKey, bool)>),
}

enum OrderKey {
    Input(CExpr),
    Output(usize),
}

fn compile_order(
    select: &SelectStmt,
    columns: &[String],
    scope: &Scope,
    udfs: &UdfRegistry,
    mut aggs: Option<&mut Vec<AggSpec>>,
) -> Result<Option<OrderKeys>> {
    if select.order_by.is_empty() {
        return Ok(None);
    }
    let mut keys = Vec::new();
    for (expr, desc) in &select.order_by {
        // Positional: ORDER BY 2.
        if let Expr::Literal(Value::Integer(i)) = expr {
            let idx = *i as usize;
            if idx == 0 || idx > columns.len() {
                return Err(SqlError::Invalid(format!("ORDER BY position {i}")));
            }
            keys.push((OrderKey::Output(idx - 1), *desc));
            continue;
        }
        // Alias reference.
        if let Expr::Column { table: None, name } = expr {
            if let Some(idx) = columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                keys.push((OrderKey::Output(idx), *desc));
                continue;
            }
        }
        let compiled = compile(expr, scope, udfs, aggs.as_deref_mut())?;
        keys.push((OrderKey::Input(compiled), *desc));
    }
    Ok(Some(OrderKeys::Keys(keys)))
}

fn eval_order_keys(
    order: &Option<OrderKeys>,
    in_row: &[Value],
    out_row: &[Value],
    aggs: &[Value],
) -> Result<Row> {
    let Some(OrderKeys::Keys(keys)) = order else {
        return Ok(Vec::new());
    };
    let mut v = Vec::with_capacity(keys.len());
    for (k, _) in keys {
        v.push(match k {
            OrderKey::Input(c) => eval(c, in_row, aggs)?,
            OrderKey::Output(i) => out_row
                .get(*i)
                .cloned()
                .ok_or_else(|| SqlError::Invalid("ORDER BY position out of range".into()))?,
        });
    }
    Ok(v)
}

/// Sort by keys, apply LIMIT, strip keys.
fn finish_rows(
    select: &SelectStmt,
    order: Option<&OrderKeys>,
    mut keyed: Vec<(Row, Row)>,
) -> Result<Vec<Row>> {
    if let Some(OrderKeys::Keys(keys)) = order {
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, desc)) in keys.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(limit_expr) = &select.limit {
        let v = match limit_expr {
            Expr::Literal(Value::Integer(i)) => *i,
            _ => return Err(SqlError::Invalid("LIMIT must be an integer literal".into())),
        };
        rows.truncate(v.max(0) as usize);
    }
    Ok(rows)
}

// ---- aggregation ---------------------------------------------------------

/// One aggregate's running state.
enum AggAcc {
    Count(i64),
    Sum(Option<Value>),
    Total(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggAcc {
    fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::Count => AggAcc::Count(0),
            AggFunc::Sum => AggAcc::Sum(None),
            AggFunc::Total => AggAcc::Total(0.0),
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
            AggFunc::Avg => AggAcc::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Update with one input; `None` means COUNT(*) (count every row).
    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggAcc::Count(n) => {
                if v.is_none_or(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            AggAcc::Sum(acc) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *acc = Some(match acc.take() {
                            None => v.clone(),
                            Some(a) => a.add(v),
                        });
                    }
                }
            }
            AggAcc::Total(t) => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *t += x;
                }
            }
            AggAcc::Min(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggAcc::Max(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Greater)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggAcc::Avg { sum, count } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Integer(*n),
            AggAcc::Sum(acc) => acc.clone().unwrap_or(Value::Null),
            AggAcc::Total(t) => Value::Real(*t),
            AggAcc::Min(b) | AggAcc::Max(b) => b.clone().unwrap_or(Value::Null),
            AggAcc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Real(sum / *count as f64)
                }
            }
        }
    }
}

struct GroupState {
    accs: Vec<AggAcc>,
    distinct_seen: Vec<Option<HashSet<GroupKey>>>,
    representative: Row,
}

fn run_aggregate(
    select: &SelectStmt,
    items: &[(Expr, String)],
    rows: Vec<Row>,
    scope: &Scope,
    udfs: &UdfRegistry,
) -> Result<(Vec<String>, Vec<Row>)> {
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut compiled_items = Vec::with_capacity(items.len());
    for (expr, _) in items {
        compiled_items.push(compile(expr, scope, udfs, Some(&mut aggs))?);
    }
    let group_exprs: Vec<CExpr> = select
        .group_by
        .iter()
        .map(|e| compile(e, scope, udfs, None))
        .collect::<Result<_>>()?;
    let having = select
        .having
        .as_ref()
        .map(|h| compile(h, scope, udfs, Some(&mut aggs)))
        .transpose()?;
    let columns: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    let order = compile_order(select, &columns, scope, udfs, Some(&mut aggs))?;

    // Accumulate.
    let mut groups: HashMap<GroupKey, GroupState> = HashMap::new();
    let mut group_order: Vec<GroupKey> = Vec::new();
    for row in rows {
        let mut key_vals = Vec::with_capacity(group_exprs.len());
        for g in &group_exprs {
            key_vals.push(eval(g, &row, &[])?);
        }
        let key = GroupKey(key_vals);
        let state = match groups.entry(key.clone()) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                group_order.push(key);
                v.insert(GroupState {
                    accs: aggs.iter().map(|s| AggAcc::new(s.func)).collect(),
                    distinct_seen: aggs.iter().map(|s| s.distinct.then(HashSet::new)).collect(),
                    representative: row.clone(),
                })
            }
        };
        for (i, spec) in aggs.iter().enumerate() {
            let arg_val = match &spec.arg {
                Some(e) => Some(eval(e, &row, &[])?),
                None => None,
            };
            if let Some(seen) = &mut state.distinct_seen[i] {
                let Some(v) = &arg_val else { continue };
                if v.is_null() || !seen.insert(GroupKey(vec![v.clone()])) {
                    continue;
                }
            }
            state.accs[i].update(arg_val.as_ref());
        }
    }

    // Global aggregate over empty input still yields one group.
    if groups.is_empty() && select.group_by.is_empty() {
        let key = GroupKey(Vec::new());
        group_order.push(key.clone());
        groups.insert(
            key,
            GroupState {
                accs: aggs.iter().map(|s| AggAcc::new(s.func)).collect(),
                distinct_seen: vec![None; aggs.len()],
                representative: vec![Value::Null; scope.width()],
            },
        );
    }

    // Emit.
    let mut keyed: Vec<(Row, Row)> = Vec::with_capacity(groups.len());
    for key in &group_order {
        let state = &groups[key];
        let agg_vals: Vec<Value> = state.accs.iter().map(AggAcc::finish).collect();
        if let Some(h) = &having {
            if !eval(h, &state.representative, &agg_vals)?.is_truthy() {
                continue;
            }
        }
        let mut orow = Vec::with_capacity(compiled_items.len());
        for c in &compiled_items {
            orow.push(eval(c, &state.representative, &agg_vals)?);
        }
        let keys = eval_order_keys(&order, &state.representative, &orow, &agg_vals)?;
        keyed.push((keys, orow));
    }
    let rows = finish_rows(select, order.as_ref(), keyed)?;
    Ok((columns, rows))
}
