//! Per-query cost breakdown.
//!
//! The paper's Figures 8–13 decompose a single RQL iteration into I/O,
//! SPT build, (ad-hoc) index creation, query evaluation, and RQL UDF
//! time. The engine fills the first four here; the RQL layer adds its UDF
//! component on top.

use std::time::Duration;

use rql_pagestore::{IoCostModel, IoStatsSnapshot};

/// Cost breakdown of one query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Time to build the snapshot page table (zero for current-state
    /// queries).
    pub spt_build: Duration,
    /// Time spent building ad-hoc join indexes (SQLite's "automatic
    /// covering index"; the dominant cost in Figure 9 without a native
    /// index).
    pub index_creation: Duration,
    /// Remaining query evaluation time (scan, filter, aggregate, sort).
    pub eval: Duration,
    /// Page-fetch counters during the query (pagelog reads = disk I/O in
    /// the paper's setup).
    pub io: IoStatsSnapshot,
    /// Rows produced.
    pub rows: u64,
    /// Heap pages a delta-aware scan served from its page cache instead
    /// of fetching (zero for ordinary executions).
    pub pages_skipped_delta: u64,
    /// Heap pages skipped because their zone-map/bloom sidecar refuted
    /// the WHERE clause — no fetch, no cached rows (both the delta and
    /// the ordinary seq-scan path report these).
    pub pages_pruned_filter: u64,
    /// 1 when this execution took the delta-aware scan path, 0 otherwise
    /// (accumulates to "delta iterations" across a report).
    pub delta_eligible: u64,
}

impl ExecStats {
    /// Modeled I/O latency under `model`.
    pub fn io_cost(&self, model: &IoCostModel) -> Duration {
        model.io_cost(&self.io)
    }

    /// Modeled total latency: measured CPU components plus modeled I/O.
    pub fn total_cost(&self, model: &IoCostModel) -> Duration {
        self.spt_build + self.index_creation + self.eval + self.io_cost(model)
    }

    /// Merge another breakdown into this one (for multi-statement or
    /// multi-iteration accumulation).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.spt_build += other.spt_build;
        self.index_creation += other.index_creation;
        self.eval += other.eval;
        self.io.accumulate(&other.io);
        self.rows += other.rows;
        self.pages_skipped_delta += other.pages_skipped_delta;
        self.pages_pruned_filter += other.pages_pruned_filter;
        self.delta_eligible += other.delta_eligible;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_sums_components() {
        let stats = ExecStats {
            spt_build: Duration::from_millis(1),
            index_creation: Duration::from_millis(2),
            eval: Duration::from_millis(3),
            io: IoStatsSnapshot {
                pagelog_reads: 10,
                ..Default::default()
            },
            rows: 5,
            ..Default::default()
        };
        let model = IoCostModel::default(); // 100 µs per pagelog read
        assert_eq!(stats.io_cost(&model), Duration::from_millis(1));
        assert_eq!(stats.total_cost(&model), Duration::from_millis(7));
    }

    #[test]
    fn accumulate_adds() {
        let mut a = ExecStats {
            rows: 1,
            ..Default::default()
        };
        let b = ExecStats {
            rows: 2,
            eval: Duration::from_millis(4),
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.rows, 3);
        assert_eq!(a.eval, Duration::from_millis(4));
    }
}
