//! Heap files: slotted pages chained into a table.
//!
//! Layout of a heap page:
//!
//! ```text
//! 0        8            10          12         14      16
//! +--------+------------+-----------+----------+-------+----- ... ----+
//! | next   | slot_count | cell_start| dead     | rsvd  | slots | ...  |
//! | page   | (u16)      | (u16)     | (u16)    |       | 4B ea | cells|
//! +--------+------------+-----------+----------+-------+--------------+
//! ```
//!
//! Slots grow upward after the header; cells grow downward from the end.
//! A deleted slot keeps its 4-byte entry with `len = 0` and its cell bytes
//! become dead space, reclaimed by compaction when an insert needs room.
//! Free space is tracked per table in an in-memory [`FreeSpaceMap`]
//! (rebuilt lazily after open/abort), so inserts do not walk the chain.

use std::collections::BTreeMap;

use rql_pagestore::{Page, PageId, WriteTxn};

use crate::error::{Result, SqlError};
use crate::pagesource::PageSource;
use crate::record::{decode_row, Row};

const HEADER: usize = 16;
const SLOT_SIZE: usize = 4;
pub(crate) const OFF_NEXT: usize = 0;
const OFF_SLOT_COUNT: usize = 8;
const OFF_CELL_START: usize = 10;
const OFF_DEAD: usize = 12;
/// "No next page" marker.
const NIL: u64 = u64::MAX;

/// Location of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap file rooted at a fixed page.
#[derive(Debug, Clone, Copy)]
pub struct HeapFile {
    root: PageId,
}

/// In-memory free-space map for one heap file: page id → usable free
/// bytes. Rebuilt lazily; never consulted by readers.
#[derive(Debug, Default)]
pub struct FreeSpaceMap {
    map: BTreeMap<u64, usize>,
    loaded: bool,
}

impl FreeSpaceMap {
    /// Empty (unloaded) map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all knowledge (after an abort, the map may be stale).
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.loaded = false;
    }

    fn first_with(&self, need: usize) -> Option<PageId> {
        self.map
            .iter()
            .find(|&(_, &free)| free >= need)
            .map(|(&pid, _)| PageId(pid))
    }
}

impl HeapFile {
    /// Open a heap rooted at `root`.
    pub fn new(root: PageId) -> Self {
        HeapFile { root }
    }

    /// Allocate and initialize a new heap in `txn`.
    pub fn create(txn: &mut WriteTxn) -> Result<HeapFile> {
        let root = txn.allocate_page();
        let mut page = txn.page_for_update(root)?;
        init_heap_page(&mut page);
        txn.write_page(root, page)?;
        Ok(HeapFile { root })
    }

    /// Root page id (persisted in the catalog).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Insert `record` bytes, returning where it landed.
    pub fn insert(
        &self,
        txn: &mut WriteTxn,
        record: &[u8],
        fsm: &mut FreeSpaceMap,
    ) -> Result<RecordId> {
        let page_size = self.ensure_fsm(txn, fsm)?;
        let max_record = page_size - HEADER - SLOT_SIZE;
        if record.len() > max_record {
            return Err(SqlError::Constraint(format!(
                "record of {} bytes exceeds page capacity {max_record}",
                record.len()
            )));
        }
        let need = record.len() + SLOT_SIZE;
        // The map is a *hint*: it may overestimate when another writer
        // (e.g. a TableWriter with its own map) filled a page since it was
        // built. A failed placement self-heals the entry and moves on.
        loop {
            let target = match fsm.first_with(need) {
                Some(pid) => pid,
                None => self.append_page(txn, fsm)?,
            };
            let mut page = txn.page_for_update(target)?;
            match insert_into_page(&mut page, record) {
                Some(slot) => {
                    fsm.map.insert(target.0, usable_free(&page));
                    txn.write_page(target, page)?;
                    return Ok(RecordId { page: target, slot });
                }
                None => {
                    // Stale hint: record the page's true free space (which
                    // is below `need`) and retry elsewhere.
                    fsm.map.insert(target.0, usable_free(&page).min(need - 1));
                }
            }
        }
    }

    /// Delete the record at `rid`.
    pub fn delete(&self, txn: &mut WriteTxn, rid: RecordId, fsm: &mut FreeSpaceMap) -> Result<()> {
        self.ensure_fsm(txn, fsm)?;
        let mut page = txn.page_for_update(rid.page)?;
        delete_from_page(&mut page, rid.slot)?;
        fsm.map.insert(rid.page.0, usable_free(&page));
        txn.write_page(rid.page, page)?;
        Ok(())
    }

    /// Replace the record at `rid`; may move it (returns the new id).
    pub fn update(
        &self,
        txn: &mut WriteTxn,
        rid: RecordId,
        record: &[u8],
        fsm: &mut FreeSpaceMap,
    ) -> Result<RecordId> {
        // Simple and correct: delete + insert. In-place optimization is
        // pointless here because any touch of the page already COWs it.
        self.delete(txn, rid, fsm)?;
        self.insert(txn, record, fsm)
    }

    /// Read one record's bytes.
    pub fn get<S: PageSource>(&self, src: &S, rid: RecordId) -> Result<Vec<u8>> {
        let page = src.page(rid.page)?;
        read_cell(&page, rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| SqlError::Invalid(format!("no record at {rid:?}")))
    }

    /// Read and decode one record.
    pub fn get_row<S: PageSource>(&self, src: &S, rid: RecordId) -> Result<Row> {
        decode_row(&self.get(src, rid)?)
    }

    /// Scan all records, invoking `f(rid, row)`; stops early if `f`
    /// returns `false`.
    pub fn scan<S: PageSource>(
        &self,
        src: &S,
        mut f: impl FnMut(RecordId, Row) -> Result<bool>,
    ) -> Result<()> {
        let mut pid = self.root;
        loop {
            let page = src.page(pid)?;
            let slot_count = page.read_u16(OFF_SLOT_COUNT);
            for slot in 0..slot_count {
                if let Some(bytes) = read_cell(&page, slot) {
                    let row = decode_row(bytes)?;
                    if !f(RecordId { page: pid, slot }, row)? {
                        return Ok(());
                    }
                }
            }
            let next = page.read_u64(OFF_NEXT);
            if next == NIL {
                return Ok(());
            }
            pid = PageId(next);
        }
    }

    /// Like [`Self::scan`], but consults the source's pruning sidecars
    /// first: a page whose sidecar refutes `pred` is skipped — its chain
    /// successor taken from the sidecar — without fetching the body.
    /// Returns the number of pages pruned. `pred` must over-approximate
    /// whatever filtering `f` applies.
    pub fn scan_pruned<S: PageSource>(
        &self,
        src: &S,
        pred: &crate::sidecar::PredSummary,
        mut f: impl FnMut(RecordId, Row) -> Result<bool>,
    ) -> Result<u64> {
        let mut pruned = 0u64;
        let mut pid = self.root;
        loop {
            if !pred.is_empty() {
                if let Some(sc) = src.sidecar_for(pid) {
                    if sc.refutes(pred) {
                        src.count_page_pruned();
                        pruned += 1;
                        match sc.next {
                            Some(n) => {
                                pid = n;
                                continue;
                            }
                            None => return Ok(pruned),
                        }
                    }
                }
            }
            let page = src.page(pid)?;
            let slot_count = page.read_u16(OFF_SLOT_COUNT);
            for slot in 0..slot_count {
                if let Some(bytes) = read_cell(&page, slot) {
                    let row = decode_row(bytes)?;
                    if !f(RecordId { page: pid, slot }, row)? {
                        return Ok(pruned);
                    }
                }
            }
            let next = page.read_u64(OFF_NEXT);
            if next == NIL {
                return Ok(pruned);
            }
            pid = PageId(next);
        }
    }

    /// Collect every row (convenience for small scans and tests).
    pub fn all_rows<S: PageSource>(&self, src: &S) -> Result<Vec<(RecordId, Row)>> {
        let mut out = Vec::new();
        self.scan(src, |rid, row| {
            out.push((rid, row));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of pages in the chain.
    pub fn page_count_chain<S: PageSource>(&self, src: &S) -> Result<u64> {
        let mut n = 0;
        let mut pid = self.root;
        loop {
            n += 1;
            let page = src.page(pid)?;
            let next = page.read_u64(OFF_NEXT);
            if next == NIL {
                return Ok(n);
            }
            pid = PageId(next);
        }
    }

    /// Lazily (re)build the free-space map by walking the chain.
    fn ensure_fsm(&self, txn: &WriteTxn, fsm: &mut FreeSpaceMap) -> Result<usize> {
        let first = txn.read_page(self.root)?;
        let page_size = first.size();
        if fsm.loaded {
            return Ok(page_size);
        }
        fsm.map.clear();
        let mut pid = self.root;
        loop {
            let page = txn.read_page(pid)?;
            fsm.map.insert(pid.0, usable_free(&page));
            let next = page.read_u64(OFF_NEXT);
            if next == NIL {
                break;
            }
            pid = PageId(next);
        }
        fsm.loaded = true;
        Ok(page_size)
    }

    /// Link a fresh page right after the root (scan order is not
    /// insertion order, which SQL does not promise anyway).
    fn append_page(&self, txn: &mut WriteTxn, fsm: &mut FreeSpaceMap) -> Result<PageId> {
        let new_pid = txn.allocate_page();
        let mut root_page = txn.page_for_update(self.root)?;
        let old_next = root_page.read_u64(OFF_NEXT);
        let mut new_page = txn.page_for_update(new_pid)?;
        init_heap_page(&mut new_page);
        new_page.write_u64(OFF_NEXT, old_next);
        root_page.write_u64(OFF_NEXT, new_pid.0);
        fsm.map.insert(new_pid.0, usable_free(&new_page));
        txn.write_page(new_pid, new_page)?;
        txn.write_page(self.root, root_page)?;
        Ok(new_pid)
    }
}

/// Decode all live rows of one heap page in slot order — the per-page
/// unit a delta-aware scan caches (see [`crate::delta`]). Matches the
/// order [`HeapFile::scan`] visits rows within a page.
pub(crate) fn page_rows(page: &Page) -> Result<Vec<Row>> {
    let slot_count = page.read_u16(OFF_SLOT_COUNT);
    let mut rows = Vec::new();
    for slot in 0..slot_count {
        if let Some(bytes) = read_cell(page, slot) {
            rows.push(decode_row(bytes)?);
        }
    }
    Ok(rows)
}

/// The chain successor of a heap page (`None` at end of chain).
pub(crate) fn page_next(page: &Page) -> Option<PageId> {
    let next = page.read_u64(OFF_NEXT);
    (next != NIL).then_some(PageId(next))
}

fn init_heap_page(page: &mut Page) {
    page.write_u64(OFF_NEXT, NIL);
    page.write_u16(OFF_SLOT_COUNT, 0);
    page.write_u16(OFF_CELL_START, page.size() as u16);
    page.write_u16(OFF_DEAD, 0);
}

/// Usable free bytes: contiguous gap plus dead cell space. Slightly
/// optimistic about slot reuse; the insert path re-checks precisely.
fn usable_free(page: &Page) -> usize {
    let slot_count = page.read_u16(OFF_SLOT_COUNT) as usize;
    let cell_start = page.read_u16(OFF_CELL_START) as usize;
    let dead = page.read_u16(OFF_DEAD) as usize;
    let contiguous = cell_start.saturating_sub(HEADER + SLOT_SIZE * slot_count);
    contiguous + dead
}

fn slot_offsets(page: &Page, slot: u16) -> (usize, usize) {
    let base = HEADER + SLOT_SIZE * slot as usize;
    (
        page.read_u16(base) as usize,
        page.read_u16(base + 2) as usize,
    )
}

fn read_cell(page: &Page, slot: u16) -> Option<&[u8]> {
    if slot >= page.read_u16(OFF_SLOT_COUNT) {
        return None;
    }
    let (off, len) = slot_offsets(page, slot);
    if len == 0 {
        return None;
    }
    Some(page.read_slice(off, len))
}

/// Insert `record` into `page`, returning the slot, or `None` if it does
/// not fit even after compaction.
fn insert_into_page(page: &mut Page, record: &[u8]) -> Option<u16> {
    let slot_count = page.read_u16(OFF_SLOT_COUNT);
    // Reuse a freed slot when available.
    let free_slot = (0..slot_count).find(|&s| slot_offsets(page, s).1 == 0);
    let slot_overhead = if free_slot.is_some() { 0 } else { SLOT_SIZE };
    let contiguous = {
        let cell_start = page.read_u16(OFF_CELL_START) as usize;
        cell_start.saturating_sub(HEADER + SLOT_SIZE * slot_count as usize)
    };
    if contiguous < record.len() + slot_overhead {
        let dead = page.read_u16(OFF_DEAD) as usize;
        if contiguous + dead < record.len() + slot_overhead {
            return None;
        }
        compact_page(page);
    }
    let cell_start = page.read_u16(OFF_CELL_START) as usize;
    let new_start = cell_start - record.len();
    page.write_slice(new_start, record);
    page.write_u16(OFF_CELL_START, new_start as u16);
    let slot = match free_slot {
        Some(s) => s,
        None => {
            page.write_u16(OFF_SLOT_COUNT, slot_count + 1);
            slot_count
        }
    };
    let base = HEADER + SLOT_SIZE * slot as usize;
    page.write_u16(base, new_start as u16);
    page.write_u16(base + 2, record.len() as u16);
    Some(slot)
}

fn delete_from_page(page: &mut Page, slot: u16) -> Result<()> {
    if slot >= page.read_u16(OFF_SLOT_COUNT) {
        return Err(SqlError::Invalid(format!("delete of unknown slot {slot}")));
    }
    let (_, len) = slot_offsets(page, slot);
    if len == 0 {
        return Err(SqlError::Invalid(format!("double delete of slot {slot}")));
    }
    let base = HEADER + SLOT_SIZE * slot as usize;
    page.write_u16(base, 0);
    page.write_u16(base + 2, 0);
    let dead = page.read_u16(OFF_DEAD);
    page.write_u16(OFF_DEAD, dead + len as u16);
    Ok(())
}

/// Rewrite all live cells contiguously at the end of the page.
fn compact_page(page: &mut Page) {
    let slot_count = page.read_u16(OFF_SLOT_COUNT);
    let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
    for slot in 0..slot_count {
        let (off, len) = slot_offsets(page, slot);
        if len > 0 {
            live.push((slot, page.read_slice(off, len).to_vec()));
        }
    }
    let mut cell_start = page.size();
    for (slot, bytes) in live {
        cell_start -= bytes.len();
        page.write_slice(cell_start, &bytes);
        let base = HEADER + SLOT_SIZE * slot as usize;
        page.write_u16(base, cell_start as u16);
        page.write_u16(base + 2, bytes.len() as u16);
    }
    page.write_u16(OFF_CELL_START, cell_start as u16);
    page.write_u16(OFF_DEAD, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_row;
    use crate::value::Value;
    use rql_pagestore::{Pager, PagerConfig};
    use std::sync::Arc;

    fn pager(page_size: usize) -> Arc<Pager> {
        Arc::new(Pager::new(PagerConfig {
            page_size,
            cache_capacity: 16,
            wal_sync_on_commit: false,
        }))
    }

    fn rec(i: i64, text: &str) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_row(&[Value::Integer(i), Value::text(text)], &mut buf);
        buf
    }

    #[test]
    fn insert_get_scan_roundtrip() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let mut rids = Vec::new();
        for i in 0..20 {
            rids.push(heap.insert(&mut txn, &rec(i, "row"), &mut fsm).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            let row = heap.get_row(&txn, *rid).unwrap();
            assert_eq!(row[0], Value::Integer(i as i64));
        }
        let all = heap.all_rows(&txn).unwrap();
        assert_eq!(all.len(), 20);
        pager.commit(txn, None, |_, _| Ok(())).unwrap();
    }

    #[test]
    fn spans_multiple_pages() {
        let pager = pager(128);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        for i in 0..50 {
            heap.insert(&mut txn, &rec(i, "aaaaaaaaaaaaaaaa"), &mut fsm)
                .unwrap();
        }
        assert!(heap.page_count_chain(&txn).unwrap() > 1);
        assert_eq!(heap.all_rows(&txn).unwrap().len(), 50);
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let pager = pager(128);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let mut rids = Vec::new();
        for i in 0..30 {
            rids.push(
                heap.insert(&mut txn, &rec(i, "xxxxxxxxxxxxxxxx"), &mut fsm)
                    .unwrap(),
            );
        }
        let pages_before = heap.page_count_chain(&txn).unwrap();
        for rid in &rids {
            heap.delete(&mut txn, *rid, &mut fsm).unwrap();
        }
        assert_eq!(heap.all_rows(&txn).unwrap().len(), 0);
        // Re-insert: reuses freed space, no new pages.
        for i in 0..30 {
            heap.insert(&mut txn, &rec(i, "yyyyyyyyyyyyyyyy"), &mut fsm)
                .unwrap();
        }
        assert_eq!(heap.page_count_chain(&txn).unwrap(), pages_before);
        assert_eq!(heap.all_rows(&txn).unwrap().len(), 30);
    }

    #[test]
    fn double_delete_rejected() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let rid = heap.insert(&mut txn, &rec(1, "a"), &mut fsm).unwrap();
        heap.delete(&mut txn, rid, &mut fsm).unwrap();
        assert!(heap.delete(&mut txn, rid, &mut fsm).is_err());
    }

    #[test]
    fn update_moves_record() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let rid = heap.insert(&mut txn, &rec(1, "short"), &mut fsm).unwrap();
        let rid2 = heap
            .update(&mut txn, rid, &rec(2, "a much longer value"), &mut fsm)
            .unwrap();
        let row = heap.get_row(&txn, rid2).unwrap();
        assert_eq!(row[0], Value::Integer(2));
        assert_eq!(heap.all_rows(&txn).unwrap().len(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let pager = pager(128);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        let big = rec(1, &"z".repeat(500));
        assert!(matches!(
            heap.insert(&mut txn, &big, &mut fsm),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let pager = pager(128);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        // Fill one page, free alternating records, then insert something
        // that only fits after compaction.
        let mut rids = Vec::new();
        for i in 0..6 {
            rids.push(
                heap.insert(&mut txn, &rec(i, "0123456789"), &mut fsm)
                    .unwrap(),
            );
        }
        let first_page = rids[0].page;
        for rid in rids.iter().step_by(2) {
            if rid.page == first_page {
                heap.delete(&mut txn, *rid, &mut fsm).unwrap();
            }
        }
        let before_pages = heap.page_count_chain(&txn).unwrap();
        heap.insert(&mut txn, &rec(99, "0123456789012345678901234"), &mut fsm)
            .unwrap();
        // Depending on layout it may or may not fit on page 1, but data
        // must be intact either way.
        let rows = heap.all_rows(&txn).unwrap();
        assert!(rows.iter().any(|(_, r)| r[0] == Value::Integer(99)));
        assert!(heap.page_count_chain(&txn).unwrap() >= before_pages);
    }

    #[test]
    fn fsm_rebuilds_after_invalidate() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        for i in 0..10 {
            heap.insert(&mut txn, &rec(i, "row"), &mut fsm).unwrap();
        }
        fsm.invalidate();
        // Insert after invalidation must still reuse existing pages.
        let pages = heap.page_count_chain(&txn).unwrap();
        heap.insert(&mut txn, &rec(10, "row"), &mut fsm).unwrap();
        assert_eq!(heap.page_count_chain(&txn).unwrap(), pages);
        assert_eq!(heap.all_rows(&txn).unwrap().len(), 11);
    }

    #[test]
    fn scan_early_stop() {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        for i in 0..10 {
            heap.insert(&mut txn, &rec(i, "row"), &mut fsm).unwrap();
        }
        let mut seen = 0;
        heap.scan(&txn, |_, _| {
            seen += 1;
            Ok(seen < 3)
        })
        .unwrap();
        assert_eq!(seen, 3);
    }
}
