//! SQL tokenizer.
//!
//! Every token carries its byte range in the source text ([`Span`]) so
//! parse errors and the `rqlcheck` semantic analyzer can point at the
//! offending characters instead of merely naming them.

use crate::error::{Result, SqlError};

/// A byte range into the SQL source text (`start..end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Shift both offsets by `base` (embedding a sub-query's span into
    /// its enclosing program text).
    pub fn offset(self, base: usize) -> Span {
        Span {
            start: self.start + base,
            end: self.end + base,
        }
    }

    /// 1-based `(line, column)` of `start` within `src` (columns count
    /// characters, not bytes).
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto.rsplit('\n').next().map_or(0, |l| l.chars().count()) + 1;
        (line, col)
    }
}

/// A token plus its byte range in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Its source location.
    pub span: Span,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved; keyword matching is
    /// case-insensitive in the parser). Double-quoted identifiers arrive
    /// here too, unquoted.
    Word(String),
    /// String literal, already unescaped (`''` → `'`).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator symbol.
    Sym(Sym),
}

/// Operator / punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=` (also `==`)
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||`
    Concat,
}

/// Tokenize `sql` into a token stream, discarding source locations.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(sql)?
        .into_iter()
        .map(|st| st.token)
        .collect())
}

/// Tokenize `sql`, keeping each token's byte range in the source.
pub fn tokenize_spanned(sql: &str) -> Result<Vec<SpannedToken>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        let token = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let close = sql[i + 2..].find("*/").ok_or_else(|| {
                    SqlError::parse_at("unterminated comment", Span::new(start, sql.len()))
                })?;
                i += 2 + close + 2;
                continue;
            }
            b'\'' => {
                let (s, next) = lex_string(sql, i)?;
                i = next;
                Token::Str(s)
            }
            b'"' => {
                let close = sql[i + 1..].find('"').ok_or_else(|| {
                    SqlError::parse_at("unterminated identifier", Span::new(start, sql.len()))
                })?;
                i += close + 2;
                Token::Word(sql[start + 1..start + 1 + close].to_owned())
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(sql, i)?;
                i = next;
                tok
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                Token::Word(sql[start..i].to_owned())
            }
            _ => {
                let (sym, len) = lex_symbol(bytes, i)?;
                i += len;
                Token::Sym(sym)
            }
        };
        tokens.push(SpannedToken {
            token,
            span: Span::new(start, i),
        });
    }
    Ok(tokens)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            None => {
                return Err(SqlError::parse_at(
                    "unterminated string literal",
                    Span::new(start, sql.len()),
                ))
            }
            Some(b'\'') => {
                if bytes.get(i + 1) == Some(&b'\'') {
                    out.push('\'');
                    i += 2;
                } else {
                    return Ok((out, i + 1));
                }
            }
            Some(_) => {
                // Consume one full UTF-8 character; fall back to a single
                // byte if the slice boundary is ever mid-character (it
                // cannot be, since `i` only advances by full characters).
                match sql[i..].chars().next() {
                    Some(ch) => {
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                    None => {
                        return Err(SqlError::parse_at(
                            "unterminated string literal",
                            Span::new(start, sql.len()),
                        ))
                    }
                }
            }
        }
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    let span = Span::new(start, i);
    let tok = if is_float {
        Token::Float(
            text.parse()
                .map_err(|_| SqlError::parse_at(format!("bad float literal {text}"), span))?,
        )
    } else {
        match text.parse::<i64>() {
            Ok(v) => Token::Int(v),
            // Integer literals beyond i64 fall back to float, like SQLite.
            Err(_) => Token::Float(
                text.parse()
                    .map_err(|_| SqlError::parse_at(format!("bad numeric literal {text}"), span))?,
            ),
        }
    };
    Ok((tok, i))
}

fn lex_symbol(bytes: &[u8], i: usize) -> Result<(Sym, usize)> {
    let two = |a: u8| bytes.get(i + 1) == Some(&a);
    let (sym, len) = match bytes[i] {
        b'(' => (Sym::LParen, 1),
        b')' => (Sym::RParen, 1),
        b',' => (Sym::Comma, 1),
        b';' => (Sym::Semi, 1),
        b'.' => (Sym::Dot, 1),
        b'*' => (Sym::Star, 1),
        b'+' => (Sym::Plus, 1),
        b'-' => (Sym::Minus, 1),
        b'/' => (Sym::Slash, 1),
        b'%' => (Sym::Percent, 1),
        b'=' if two(b'=') => (Sym::Eq, 2),
        b'=' => (Sym::Eq, 1),
        b'!' if two(b'=') => (Sym::Ne, 2),
        b'<' if two(b'>') => (Sym::Ne, 2),
        b'<' if two(b'=') => (Sym::Le, 2),
        b'<' => (Sym::Lt, 1),
        b'>' if two(b'=') => (Sym::Ge, 2),
        b'>' => (Sym::Gt, 1),
        b'|' if two(b'|') => (Sym::Concat, 2),
        c => {
            return Err(SqlError::parse_at(
                format!("unexpected character {:?}", c as char),
                Span::new(i, i + 1),
            ))
        }
    };
    Ok((sym, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_strings() {
        let toks = tokenize("SELECT o_orderkey, 42, 1.5, 'it''s' FROM t").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("o_orderkey".into()),
                Token::Sym(Sym::Comma),
                Token::Int(42),
                Token::Sym(Sym::Comma),
                Token::Float(1.5),
                Token::Sym(Sym::Comma),
                Token::Str("it's".into()),
                Token::Word("FROM".into()),
                Token::Word("t".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("a<=b <> c>=d != e || f == g").unwrap();
        let syms: Vec<Sym> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![Sym::Le, Sym::Ne, Sym::Ge, Sym::Ne, Sym::Concat, Sym::Eq]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT /* hi */ 1 -- trailing\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Sym(Sym::Comma),
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"Weird Name\"").unwrap();
        assert_eq!(toks, vec![Token::Word("Weird Name".into())]);
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks, vec![Token::Float(1000.0), Token::Float(0.025)]);
    }

    #[test]
    fn huge_integer_becomes_float() {
        let toks = tokenize("99999999999999999999").unwrap();
        assert!(matches!(toks[0], Token::Float(_)));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* no close").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo ≤'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo ≤".into())]);
    }

    #[test]
    fn spans_cover_tokens() {
        let src = "SELECT a,\n  'x''y' FROM t";
        let toks = tokenize_spanned(src).unwrap();
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(&src[toks[0].span.start..toks[0].span.end], "SELECT");
        let s = toks
            .iter()
            .find(|t| matches!(t.token, Token::Str(_)))
            .unwrap();
        assert_eq!(&src[s.span.start..s.span.end], "'x''y'");
        assert_eq!(s.span.line_col(src), (2, 3));
        let last = toks.last().unwrap();
        assert_eq!(&src[last.span.start..last.span.end], "t");
    }

    #[test]
    fn lex_errors_carry_spans() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(2, 3)));
        let err = tokenize("'oops").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(0, 5)));
    }
}
