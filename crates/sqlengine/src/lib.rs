//! # rql-sqlengine
//!
//! A SQLite-like relational engine over the Retro snapshot store — the
//! substrate the RQL reproduction runs its SQL on.
//!
//! What it provides, mirroring the pieces the paper's implementation
//! (§3) relies on from SQLite/BDB:
//!
//! * dynamically typed [`value::Value`]s, slotted-page [`heap`] tables and
//!   page-backed [`btree`] indexes, all snapshot-captured because they
//!   live in pages (including the [`catalog`], rooted at page 0);
//! * a SQL subset ([`lexer`], [`parser`], [`ast`]) with the Retro
//!   extension `SELECT AS OF <sid>` and `COMMIT WITH SNAPSHOT`;
//! * a planner/executor ([`exec`]) that uses native indexes when present
//!   and builds ad-hoc hash indexes for un-indexed equi-joins, reporting
//!   that build separately (the cost split of the paper's Figure 9);
//! * a scalar [`udf`] framework (the `sqlite3_create_function` analog the
//!   RQL mechanisms are built on) and per-row callbacks (`sqlite3_exec`);
//! * [`db::Database`], the session facade: auto-commit or explicit
//!   `BEGIN`/`COMMIT [WITH SNAPSHOT]`, current-state reads over pinned
//!   MVCC views, `AS OF` reads over snapshot readers.

#![warn(missing_docs)]

pub mod ast;
pub mod btree;
pub mod cancel;
pub mod catalog;
pub mod cexpr;
pub mod db;
pub mod delta;
pub mod error;
pub mod exec;
pub mod exec_stats;
pub mod heap;
pub mod lexer;
pub mod pagesource;
pub mod parser;
pub mod record;
pub mod schema;
pub mod sidecar;
pub mod tablewriter;
pub mod udf;
pub mod value;

pub use ast::{Expr, SelectStmt, Stmt};
pub use cancel::{CancelCause, CancelToken};
pub use catalog::{Catalog, IndexInfo, TableInfo};
pub use db::{Database, ExecOutcome};
pub use delta::{
    DeltaScan, DeltaSelectRunner, DeltaTableScanner, ScannerSeed, SeedPage, SkipReason,
};
pub use error::{Result, SqlError};
pub use exec::QueryResult;
pub use exec_stats::ExecStats;
pub use heap::{FreeSpaceMap, HeapFile, RecordId};
pub use lexer::{tokenize_spanned, Span, SpannedToken};
pub use pagesource::PageSource;
pub use parser::{parse_select, parse_statement, parse_statements};
pub use record::Row;
pub use schema::{ColumnDef, ColumnType, IndexSchema, TableSchema};
pub use sidecar::{build_sidecar, PredAtom, PredSummary, Sidecar, SIDECAR_FORMAT_VERSION};
pub use tablewriter::TableWriter;
pub use udf::UdfRegistry;
pub use value::{GroupKey, Value};
