//! Read-path abstraction over "where pages come from".
//!
//! The same heap-scan and B-tree code runs over three sources: the current
//! database (a pinned MVCC [`DbView`]), a declared snapshot (a
//! [`SnapshotReader`] resolving pages through the SPT → cache → Pagelog),
//! and a write transaction's own view (its write set over the current
//! state). `SELECT AS OF` is nothing more than executing the ordinary
//! plan over a [`SnapshotReader`] source.

use rql_pagestore::{DbView, PageId, Result, SharedPage, WriteTxn};
use rql_retro::SnapshotReader;

/// A source of immutable page reads.
pub trait PageSource {
    /// Fetch page `pid`.
    fn page(&self, pid: PageId) -> Result<SharedPage>;

    /// Number of pages visible to this source.
    fn page_count(&self) -> u64;
}

impl PageSource for DbView {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        DbView::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        DbView::page_count(self)
    }
}

impl PageSource for SnapshotReader {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        SnapshotReader::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        SnapshotReader::page_count(self)
    }
}

impl PageSource for WriteTxn {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        self.read_page(pid)
    }

    fn page_count(&self) -> u64 {
        WriteTxn::page_count(self)
    }
}
