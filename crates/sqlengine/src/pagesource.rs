//! Read-path abstraction over "where pages come from".
//!
//! The same heap-scan and B-tree code runs over three sources: the current
//! database (a pinned MVCC [`DbView`]), a declared snapshot (a
//! [`SnapshotReader`] resolving pages through the SPT → cache → Pagelog),
//! and a write transaction's own view (its write set over the current
//! state). `SELECT AS OF` is nothing more than executing the ordinary
//! plan over a [`SnapshotReader`] source.

use std::collections::HashSet;
use std::sync::Arc;

use rql_pagestore::{DbView, PageId, Result, SharedPage, WriteTxn};
use rql_retro::SnapshotReader;

use crate::sidecar::Sidecar;

/// A source of immutable page reads.
pub trait PageSource {
    /// Fetch page `pid`.
    fn page(&self, pid: PageId) -> Result<SharedPage>;

    /// Number of pages visible to this source.
    fn page_count(&self) -> u64;

    /// Pages that may differ from the previous source a delta-aware scan
    /// ran over, or `None` when unknown (every page must then be assumed
    /// changed). Only snapshot readers opened through
    /// [`rql_retro::RetroStore::open_snapshot_chain`] report a set; the
    /// set is a conservative superset of truly-differing pages.
    fn changed_pages(&self) -> Option<&HashSet<PageId>> {
        None
    }

    /// Decoded, validated pruning sidecar for the page *version* this
    /// source would serve for `pid`, or `None` (= don't prune, read the
    /// page). Only snapshot readers resolve sidecars: current-state and
    /// in-transaction scans run over the memory-resident database where
    /// a page fetch costs nothing worth saving.
    fn sidecar_for(&self, _pid: PageId) -> Option<Sidecar> {
        None
    }

    /// Record a page skipped thanks to its sidecar (routes to the
    /// store's I/O counters where supported).
    fn count_page_pruned(&self) {}
}

impl PageSource for DbView {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        DbView::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        DbView::page_count(self)
    }
}

impl PageSource for SnapshotReader {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        SnapshotReader::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        SnapshotReader::page_count(self)
    }

    fn changed_pages(&self) -> Option<&HashSet<PageId>> {
        SnapshotReader::changed_from_prev(self)
    }

    fn sidecar_for(&self, pid: PageId) -> Option<Sidecar> {
        let bytes: Arc<Vec<u8>> = SnapshotReader::sidecar_for(self, pid)?;
        // Any decode fault (corrupt, misrouted, truncated) yields `None`
        // here and a counted full page read at the caller.
        Sidecar::decode(&bytes, pid)
    }

    fn count_page_pruned(&self) {
        SnapshotReader::count_page_pruned(self);
    }
}

impl PageSource for WriteTxn {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        self.read_page(pid)
    }

    fn page_count(&self) -> u64 {
        WriteTxn::page_count(self)
    }
}
