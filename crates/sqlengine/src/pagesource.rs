//! Read-path abstraction over "where pages come from".
//!
//! The same heap-scan and B-tree code runs over three sources: the current
//! database (a pinned MVCC [`DbView`]), a declared snapshot (a
//! [`SnapshotReader`] resolving pages through the SPT → cache → Pagelog),
//! and a write transaction's own view (its write set over the current
//! state). `SELECT AS OF` is nothing more than executing the ordinary
//! plan over a [`SnapshotReader`] source.

use std::collections::HashSet;

use rql_pagestore::{DbView, PageId, Result, SharedPage, WriteTxn};
use rql_retro::SnapshotReader;

/// A source of immutable page reads.
pub trait PageSource {
    /// Fetch page `pid`.
    fn page(&self, pid: PageId) -> Result<SharedPage>;

    /// Number of pages visible to this source.
    fn page_count(&self) -> u64;

    /// Pages that may differ from the previous source a delta-aware scan
    /// ran over, or `None` when unknown (every page must then be assumed
    /// changed). Only snapshot readers opened through
    /// [`rql_retro::RetroStore::open_snapshot_chain`] report a set; the
    /// set is a conservative superset of truly-differing pages.
    fn changed_pages(&self) -> Option<&HashSet<PageId>> {
        None
    }
}

impl PageSource for DbView {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        DbView::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        DbView::page_count(self)
    }
}

impl PageSource for SnapshotReader {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        SnapshotReader::page(self, pid)
    }

    fn page_count(&self) -> u64 {
        SnapshotReader::page_count(self)
    }

    fn changed_pages(&self) -> Option<&HashSet<PageId>> {
        SnapshotReader::changed_from_prev(self)
    }
}

impl PageSource for WriteTxn {
    fn page(&self, pid: PageId) -> Result<SharedPage> {
        self.read_page(pid)
    }

    fn page_count(&self) -> u64 {
        WriteTxn::page_count(self)
    }
}
