//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize_spanned, Span, SpannedToken, Sym, Token};
use crate::schema::ColumnType;
use crate::value::Value;

/// Parse a script of `;`-separated statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Stmt>> {
    let mut p = Parser::new(sql)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat_sym(Sym::Semi) {}
        if p.at_end() {
            return Ok(stmts);
        }
        stmts.push(p.parse_stmt()?);
        if !p.at_end() && !p.eat_sym(Sym::Semi) {
            return Err(p.err("expected ';' between statements"));
        }
    }
}

/// Parse exactly one statement.
pub fn parse_statement(sql: &str) -> Result<Stmt> {
    let stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().unwrap()),
        n => Err(SqlError::Parse(format!(
            "expected one statement, found {n}"
        ))),
    }
}

/// Parse a single `SELECT` (convenience for RQL's Qs/Qq strings).
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Stmt::Select(s) => Ok(s),
        _ => Err(SqlError::Parse("expected a SELECT statement".into())),
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize_spanned(sql)?,
            pos: 0,
            src_len: sql.len(),
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn token_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    /// Span of the token at the cursor, or an empty span at end of input.
    fn peek_span(&self) -> Span {
        match self.tokens.get(self.pos) {
            Some(t) => t.span,
            None => Span::new(self.src_len, self.src_len),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> SqlError {
        let span = self.peek_span();
        match self.peek() {
            Some(t) => SqlError::parse_at(format!("{msg} (at {t:?})"), span),
            None => SqlError::parse_at(format!("{msg} (at end of input)"), span),
        }
    }

    /// Case-insensitive keyword peek.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.token_at(offset), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        Ok(self.expect_ident_spanned()?.0)
    }

    fn expect_ident_spanned(&mut self) -> Result<(String, Span)> {
        let span = self.peek_span();
        match self.next() {
            Some(Token::Word(w)) => Ok((w, span)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.parse_select_stmt()?));
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            return self.parse_delete();
        }
        if self.eat_kw("CREATE") {
            return self.parse_create();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("BEGIN") {
            self.eat_kw("TRANSACTION");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            let with_snapshot = if self.eat_kw("WITH") {
                self.expect_kw("SNAPSHOT")?;
                true
            } else {
                false
            };
            return Ok(Stmt::Commit { with_snapshot });
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Stmt::Rollback);
        }
        Err(self.err("expected a statement"))
    }

    fn parse_select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut select = SelectStmt::default();
        // Retro extension: SELECT AS OF <expr> ...
        if self.peek_kw("AS") && self.peek_kw_at(1, "OF") {
            self.pos += 2;
            select.as_of = Some(self.parse_primary()?);
        }
        if self.eat_kw("DISTINCT") {
            select.distinct = true;
        } else {
            self.eat_kw("ALL");
        }
        loop {
            select.items.push(self.parse_select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            select.from.push(self.parse_table_ref()?);
            loop {
                if self.eat_sym(Sym::Comma) {
                    select.from.push(self.parse_table_ref()?);
                } else if self.peek_kw("JOIN")
                    || (self.peek_kw("INNER") && self.peek_kw_at(1, "JOIN"))
                {
                    self.eat_kw("INNER");
                    self.expect_kw("JOIN")?;
                    let table = self.parse_table_ref()?;
                    self.expect_kw("ON")?;
                    let on = self.parse_expr()?;
                    select.joins.push(Join { table, on });
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            select.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            select.having = Some(self.parse_expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                select.order_by.push((e, desc));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            select.limit = Some(self.parse_expr()?);
        }
        Ok(select)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // t.* pattern.
        if let (Some(Token::Word(w)), Some(Token::Sym(Sym::Dot)), Some(Token::Sym(Sym::Star))) =
            (self.token_at(0), self.token_at(1), self.token_at(2))
        {
            let name = w.clone();
            self.pos += 3;
            return Ok(SelectItem::TableWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            // Bare alias unless it is a clause keyword.
            const CLAUSES: [&str; 12] = [
                "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AS",
                "UNION", "AND",
            ];
            if CLAUSES.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                None
            } else {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let (name, span) = self.expect_ident_spanned()?;
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            const CLAUSES: [&str; 10] = [
                "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "SET",
                "VALUES",
            ];
            if CLAUSES.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                None
            } else {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
        } else {
            None
        };
        Ok(TableRef {
            name,
            alias,
            span: Some(span),
        })
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.eat_sym(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_sym(Sym::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
                rows.push(row);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("SELECT") {
            InsertSource::Select(Box::new(self.parse_select_stmt()?))
        } else {
            return Err(self.err("expected VALUES or SELECT"));
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        let table = self.expect_ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_sym(Sym::Eq)?;
            sets.push((col, self.parse_expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete {
            table,
            where_clause,
        })
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        let temp = self.eat_kw("TEMP") || self.eat_kw("TEMPORARY");
        if self.eat_kw("INDEX") {
            let name = self.expect_ident()?;
            self.expect_kw("ON")?;
            let table = self.expect_ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Stmt::CreateIndex {
                name,
                table,
                columns,
            });
        }
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        if self.eat_kw("AS") {
            let select = self.parse_select_stmt()?;
            return Ok(Stmt::CreateTableAs { name, select, temp });
        }
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.parse_column_type()?;
            columns.push((col, ty));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            temp,
            if_not_exists,
        })
    }

    /// Parse a column's type plus any trailing constraints we accept and
    /// ignore (PRIMARY KEY, NOT NULL, UNIQUE).
    fn parse_column_type(&mut self) -> Result<ColumnType> {
        let mut type_text = String::new();
        while let Some(Token::Word(w)) = self.peek() {
            let upper = w.to_ascii_uppercase();
            if ["PRIMARY", "NOT", "UNIQUE", "DEFAULT"].contains(&upper.as_str()) {
                break;
            }
            type_text.push_str(&upper);
            self.pos += 1;
            // Width spec like VARCHAR(15) or DECIMAL(15,2).
            if self.eat_sym(Sym::LParen) {
                while !self.eat_sym(Sym::RParen) {
                    if self.next().is_none() {
                        return Err(self.err("unterminated type width"));
                    }
                }
            }
        }
        // Swallow ignored constraints.
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
            } else if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
            } else if self.eat_kw("UNIQUE") {
            } else {
                break;
            }
        }
        Ok(ColumnType::parse(&type_text))
    }

    // ---- expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    /// `CASE [operand] WHEN e THEN e … [ELSE e] END` (the leading CASE
    /// word has been consumed).
    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if self.peek_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut arms = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let then = self.parse_expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(self.err("CASE requires at least one WHEN arm"));
        }
        let else_branch = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            arms,
            else_branch,
        })
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let expr = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = if self.peek_kw("NOT")
            && (self.peek_kw_at(1, "IN")
                || self.peek_kw_at(1, "BETWEEN")
                || self.peek_kw_at(1, "LIKE"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.parse_additive()?;
            self.expect_kw("AND")?;
            let hi = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => BinOp::Add,
                Some(Token::Sym(Sym::Minus)) => BinOp::Sub,
                Some(Token::Sym(Sym::Concat)) => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => BinOp::Mul,
                Some(Token::Sym(Sym::Slash)) => BinOp::Div,
                Some(Token::Sym(Sym::Percent)) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Integer(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Real(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Sym(Sym::LParen)) => {
                let e = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Sym(Sym::Star)) => Ok(Expr::Star),
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if w.eq_ignore_ascii_case("CASE") {
                    return self.parse_case();
                }
                // Reserved words cannot start a primary expression; this
                // turns `SELECT FROM t` into a parse error rather than a
                // column named "from".
                const RESERVED: [&str; 14] = [
                    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "ON", "AND",
                    "OR", "NOT", "SELECT", "SET", "VALUES",
                ];
                if RESERVED.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                    self.pos -= 1;
                    return Err(self.err("expected expression"));
                }
                // Function call?
                if matches!(self.peek(), Some(Token::Sym(Sym::LParen))) {
                    self.pos += 1;
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if !self.eat_sym(Sym::RParen) {
                        loop {
                            if self.eat_sym(Sym::Star) {
                                args.push(Expr::Star);
                            } else {
                                args.push(self.parse_expr()?);
                            }
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                        self.expect_sym(Sym::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: w.to_ascii_lowercase(),
                        args,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat_sym(Sym::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        table: Some(w),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    name: w,
                })
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("unexpected token {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_retro_query() {
        // Figure 3, line 9.
        let s = parse_select("SELECT AS OF 1 * FROM LoggedIn").unwrap();
        assert_eq!(s.as_of, Some(Expr::int(1)));
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from[0].name, "LoggedIn");
    }

    #[test]
    fn paper_collate_qq() {
        let s = parse_select("SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn")
            .unwrap();
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Function { name, args, .. },
                alias,
            } => {
                assert_eq!(name, "current_snapshot");
                assert!(args.is_empty());
                assert_eq!(alias.as_deref(), Some("sid"));
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn paper_qq_cpu_cross_join() {
        // Table 1 Qq_cpu.
        let s = parse_select(
            "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part \
             WHERE p_partkey = l_partkey and p_type = 'STANDARD POLISHED TIN'",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn paper_qq_agg_group_by() {
        let s = parse_select(
            "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av \
             FROM orders GROUP BY o_custkey",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn dml_statements() {
        let stmts = parse_statements(
            "BEGIN; DELETE FROM LoggedIn WHERE l_userid = 'UserA'; COMMIT WITH SNAPSHOT;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0], Stmt::Begin);
        assert!(matches!(stmts[1], Stmt::Delete { .. }));
        assert_eq!(
            stmts[2],
            Stmt::Commit {
                with_snapshot: true
            }
        );
    }

    #[test]
    fn insert_forms() {
        let s = parse_statement(
            "INSERT INTO LoggedIn (l_userid, l_time, l_country) \
             VALUES ('UserD', '2008-11-11 10:08:04', 'UK')",
        )
        .unwrap();
        match s {
            Stmt::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            } => {
                assert_eq!(table, "LoggedIn");
                assert_eq!(columns.unwrap().len(), 3);
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_statement("INSERT INTO t VALUES (1, 2), (3, 4)").unwrap();
        match s {
            Stmt::Insert {
                source: InsertSource::Values(rows),
                ..
            } => assert_eq!(rows.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_statement("INSERT INTO t SELECT * FROM u").unwrap(),
            Stmt::Insert {
                source: InsertSource::Select(_),
                ..
            }
        ));
    }

    #[test]
    fn create_table_with_types_and_constraints() {
        let s = parse_statement(
            "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, \
             o_totalprice DECIMAL(15,2) NOT NULL, o_orderdate DATE, o_comment VARCHAR(79))",
        )
        .unwrap();
        match s {
            Stmt::CreateTable { name, columns, .. } => {
                assert_eq!(name, "orders");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[0].1, ColumnType::Integer);
                assert_eq!(columns[1].1, ColumnType::Real);
                assert_eq!(columns[2].1, ColumnType::Text);
                assert_eq!(columns[3].1, ColumnType::Text);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_table_as_and_index() {
        assert!(matches!(
            parse_statement("CREATE TEMP TABLE r AS SELECT a FROM t").unwrap(),
            Stmt::CreateTableAs { temp: true, .. }
        ));
        match parse_statement("CREATE INDEX idx ON orders (o_custkey, o_orderdate)").unwrap() {
            Stmt::CreateIndex {
                name,
                table,
                columns,
            } => {
                assert_eq!(name, "idx");
                assert_eq!(table, "orders");
                assert_eq!(columns.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let s = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        match expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_and_or_precedence() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR at top, AND beneath.
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Or, rhs, ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_extras() {
        let s = parse_select(
            "SELECT * FROM t WHERE a IN (1,2) AND b NOT LIKE 'x%' \
             AND c BETWEEN 1 AND 9 AND d IS NOT NULL",
        )
        .unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn joins_and_aliases() {
        let s = parse_select(
            "SELECT o.o_orderkey FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
             WHERE l.l_quantity > 10 ORDER BY o.o_orderkey DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(s.from[0].binding(), "o");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.binding(), "l");
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
        assert_eq!(s.limit, Some(Expr::int(5)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("FLY ME TO THE MOON").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2").is_err()); // two stmts
        assert!(parse_statements("SELECT 1 SELECT 2").is_err()); // missing ;
        assert!(parse_statement("INSERT INTO t").is_err());
    }

    #[test]
    fn parse_errors_carry_spans() {
        // "FROM" is reserved, so the error points at it.
        let err = parse_statement("SELECT FROM t").unwrap_err();
        let span = err.span().expect("span");
        assert_eq!(span, Span::new(7, 11));
        // A dangling operator error points back at the operator.
        let err = parse_statement("SELECT 1 +").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(9, 10)));
        // Pure end-of-input errors use an empty span at the end.
        let err = parse_statement("CREATE TABLE t (a INTEGER").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(25, 25)));
    }

    #[test]
    fn table_refs_carry_spans() {
        let s = parse_select("SELECT * FROM orders o JOIN lineitem l ON 1=1").unwrap();
        let src = "SELECT * FROM orders o JOIN lineitem l ON 1=1";
        let span = s.from[0].span.expect("span");
        assert_eq!(&src[span.start..span.end], "orders");
        let span = s.joins[0].table.span.expect("span");
        assert_eq!(&src[span.start..span.end], "lineitem");
    }

    #[test]
    fn update_statement() {
        match parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c < 3").unwrap() {
            Stmt::Update {
                table,
                sets,
                where_clause,
            } => {
                assert_eq!(table, "t");
                assert_eq!(sets.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_wildcard_item() {
        let s = parse_select("SELECT o.*, l_partkey FROM orders o, lineitem").unwrap();
        assert_eq!(s.items[0], SelectItem::TableWildcard("o".into()));
    }

    #[test]
    fn count_distinct() {
        let s = parse_select("SELECT COUNT(DISTINCT a) FROM t").unwrap();
        let SelectItem::Expr {
            expr: Expr::Function { distinct, .. },
            ..
        } = &s.items[0]
        else {
            panic!()
        };
        assert!(*distinct);
    }
}
