//! Row ↔ byte-record serialization.
//!
//! Records are stored in slotted heap pages and B-tree leaves. The format
//! is a column count followed by tagged values; integers use a varint so
//! typical TPC-H rows stay compact.

use crate::error::{Result, SqlError};
use crate::value::Value;

/// A row of values.
pub type Row = Vec<Value>;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;

/// Encode a row into `out`.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    write_varint(row.len() as u64, out);
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Integer(i) => {
                out.push(TAG_INT);
                write_varint(zigzag(*i), out);
            }
            Value::Real(r) => {
                out.push(TAG_REAL);
                out.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            Value::Text(t) => {
                out.push(TAG_TEXT);
                write_varint(t.len() as u64, out);
                out.extend_from_slice(t.as_bytes());
            }
        }
    }
}

/// Encoded size of a row without allocating.
pub fn encoded_len(row: &[Value]) -> usize {
    let mut n = varint_len(row.len() as u64);
    for v in row {
        n += 1;
        n += match v {
            Value::Null => 0,
            Value::Integer(i) => varint_len(zigzag(*i)),
            Value::Real(_) => 8,
            Value::Text(t) => varint_len(t.len() as u64) + t.len(),
        };
    }
    n
}

/// Decode a row from `bytes`.
pub fn decode_row(bytes: &[u8]) -> Result<Row> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)? as usize;
    let mut row = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| corrupt("truncated record (tag)"))?;
        pos += 1;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Integer(unzigzag(read_varint(bytes, &mut pos)?)),
            TAG_REAL => {
                let raw = bytes
                    .get(pos..pos + 8)
                    .ok_or_else(|| corrupt("truncated record (real)"))?;
                pos += 8;
                Value::Real(f64::from_bits(u64::from_le_bytes(raw.try_into().unwrap())))
            }
            TAG_TEXT => {
                let len = read_varint(bytes, &mut pos)? as usize;
                let raw = bytes
                    .get(pos..pos + len)
                    .ok_or_else(|| corrupt("truncated record (text)"))?;
                pos += len;
                Value::Text(
                    std::str::from_utf8(raw)
                        .map_err(|_| corrupt("record text is not UTF-8"))?
                        .to_owned(),
                )
            }
            t => return Err(corrupt(&format!("bad value tag {t}"))),
        };
        row.push(v);
    }
    Ok(row)
}

fn corrupt(msg: &str) -> SqlError {
    SqlError::Invalid(format!("corrupt record: {msg}"))
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| corrupt("truncated varint"))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(corrupt("varint too long"));
        }
    }
}

/// Encode values as an order-preserving byte key for B-tree indexes:
/// comparing encoded keys with `memcmp` matches [`Value::total_cmp`]
/// lexicographically per column.
pub fn encode_index_key(values: &[Value], out: &mut Vec<u8>) {
    for v in values {
        match v {
            Value::Null => out.push(0x00),
            // Integers and reals share one numeric key space (both ordered
            // as f64) so `1` and `1.0` compare equal, matching
            // `Value::total_cmp`. Integers beyond 2^53 may collide in the
            // key space; executors always re-verify predicates on fetched
            // rows, so collisions cost a re-check, never a wrong answer.
            Value::Integer(i) => {
                out.push(0x01);
                out.extend_from_slice(&f64_key(*i as f64).to_be_bytes());
            }
            Value::Real(r) => {
                out.push(0x01);
                out.extend_from_slice(&f64_key(*r).to_be_bytes());
            }
            Value::Text(t) => {
                out.push(0x02);
                // Escape 0x00 so the terminator is unambiguous.
                for &b in t.as_bytes() {
                    if b == 0 {
                        out.extend_from_slice(&[0x00, 0xff]);
                    } else {
                        out.push(b);
                    }
                }
                out.extend_from_slice(&[0x00, 0x00]);
            }
        }
    }
}

/// Order-preserving 64-bit key for a float (`-0.0` normalized to `0.0`).
fn f64_key(r: f64) -> u64 {
    let r = if r == 0.0 { 0.0 } else { r };
    let bits = r.to_bits();
    if r >= 0.0 {
        bits ^ (1 << 63)
    } else {
        !bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Row) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), encoded_len(&row));
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn encode_decode_roundtrip() {
        roundtrip(vec![]);
        roundtrip(vec![Value::Null]);
        roundtrip(vec![
            Value::Integer(0),
            Value::Integer(-1),
            Value::Integer(i64::MAX),
            Value::Integer(i64::MIN),
        ]);
        roundtrip(vec![
            Value::Real(3.25),
            Value::Real(-0.0),
            Value::Real(f64::MAX),
        ]);
        roundtrip(vec![
            Value::text(""),
            Value::text("hello world"),
            Value::Null,
        ]);
        roundtrip(vec![
            Value::Integer(42),
            Value::text("UserB"),
            Value::Real(1.5),
            Value::Null,
        ]);
    }

    #[test]
    fn truncated_records_error() {
        let mut buf = Vec::new();
        encode_row(&[Value::text("hello")], &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_row(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn index_key_order_matches_value_order() {
        let values = vec![
            Value::Null,
            Value::Integer(-10),
            Value::Integer(0),
            Value::Real(0.5),
            Value::Integer(3),
            Value::Real(1e9),
            Value::text(""),
            Value::text("a"),
            Value::text("ab"),
            Value::text("b"),
        ];
        for a in &values {
            for b in &values {
                let (mut ka, mut kb) = (Vec::new(), Vec::new());
                encode_index_key(std::slice::from_ref(a), &mut ka);
                encode_index_key(std::slice::from_ref(b), &mut kb);
                assert_eq!(
                    ka.cmp(&kb),
                    a.total_cmp(b),
                    "key order mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn index_key_prefix_property() {
        // A multi-column key sorts by first column, then second.
        let (mut k1, mut k2) = (Vec::new(), Vec::new());
        encode_index_key(&[Value::text("a"), Value::Integer(5)], &mut k1);
        encode_index_key(&[Value::text("ab"), Value::Integer(1)], &mut k2);
        assert!(k1 < k2);
    }

    #[test]
    fn index_key_embedded_nul_unambiguous() {
        let (mut k1, mut k2) = (Vec::new(), Vec::new());
        encode_index_key(&[Value::text("a\0b")], &mut k1);
        encode_index_key(&[Value::text("a")], &mut k2);
        assert!(k2 < k1);
    }
}
