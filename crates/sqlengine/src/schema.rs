//! Table and index schemas.

use crate::error::{Result, SqlError};
use crate::value::Value;

/// Declared column type (affinity — storage stays dynamically typed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// INTEGER / INT / BIGINT.
    Integer,
    /// REAL / DOUBLE / FLOAT / DECIMAL.
    Real,
    /// TEXT / VARCHAR / CHAR / DATE (dates are ISO-8601 text, which
    /// compares correctly lexicographically).
    Text,
    /// No declared affinity.
    Any,
}

impl ColumnType {
    /// Parse a type name as written in DDL.
    pub fn parse(name: &str) -> ColumnType {
        let upper = name.to_ascii_uppercase();
        if upper.contains("INT") {
            ColumnType::Integer
        } else if upper.contains("REAL")
            || upper.contains("DOUB")
            || upper.contains("FLOA")
            || upper.contains("DECIMAL")
            || upper.contains("NUMERIC")
        {
            ColumnType::Real
        } else if upper.contains("CHAR") || upper.contains("TEXT") || upper.contains("DATE") {
            ColumnType::Text
        } else {
            ColumnType::Any
        }
    }

    /// Apply column affinity to an incoming value (lossless coercions
    /// only, SQLite-style).
    pub fn coerce(self, v: Value) -> Value {
        match (self, v) {
            (ColumnType::Real, Value::Integer(i)) => Value::Real(i as f64),
            (ColumnType::Integer, Value::Real(r)) if r.fract() == 0.0 && r.abs() < 9e15 => {
                Value::Integer(r as i64)
            }
            (_, v) => v,
        }
    }

    /// Canonical type name.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Integer => "INTEGER",
            ColumnType::Real => "REAL",
            ColumnType::Text => "TEXT",
            ColumnType::Any => "ANY",
        }
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (stored lower-case; SQL identifiers are
    /// case-insensitive).
    pub name: String,
    /// Declared affinity.
    pub ty: ColumnType,
}

/// A table's schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lower-case).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Create a schema, normalizing names to lower-case.
    pub fn new(name: &str, columns: Vec<(String, ColumnType)>) -> Self {
        TableSchema {
            name: name.to_ascii_lowercase(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| ColumnDef {
                    name: name.to_ascii_lowercase(),
                    ty,
                })
                .collect(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Index of a column, as a `Result`.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name)
            .ok_or_else(|| SqlError::Unknown(format!("column {name} in table {}", self.name)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Serialize for the catalog: `name:TYPE,name:TYPE,...`.
    pub fn columns_to_text(&self) -> String {
        self.columns
            .iter()
            .map(|c| format!("{}:{}", c.name, c.ty.name()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse the catalog serialization.
    pub fn columns_from_text(name: &str, text: &str) -> Result<TableSchema> {
        let mut columns = Vec::new();
        if !text.is_empty() {
            for part in text.split(',') {
                let (cname, ty) = part
                    .split_once(':')
                    .ok_or_else(|| SqlError::Invalid(format!("bad catalog column entry {part}")))?;
                columns.push((cname.to_owned(), ColumnType::parse(ty)));
            }
        }
        Ok(TableSchema::new(name, columns))
    }
}

/// A secondary-index schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSchema {
    /// Index name (lower-case).
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
}

impl IndexSchema {
    /// Create an index schema, normalizing names.
    pub fn new(name: &str, table: &str, columns: Vec<String>) -> Self {
        IndexSchema {
            name: name.to_ascii_lowercase(),
            table: table.to_ascii_lowercase(),
            columns: columns
                .into_iter()
                .map(|c| c.to_ascii_lowercase())
                .collect(),
        }
    }

    /// Serialize the key columns for the catalog.
    pub fn columns_to_text(&self) -> String {
        self.columns.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing() {
        assert_eq!(ColumnType::parse("INTEGER"), ColumnType::Integer);
        assert_eq!(ColumnType::parse("int"), ColumnType::Integer);
        assert_eq!(ColumnType::parse("BIGINT"), ColumnType::Integer);
        assert_eq!(ColumnType::parse("VARCHAR(15)"), ColumnType::Text);
        assert_eq!(ColumnType::parse("CHAR(1)"), ColumnType::Text);
        assert_eq!(ColumnType::parse("DATE"), ColumnType::Text);
        assert_eq!(ColumnType::parse("DECIMAL(15,2)"), ColumnType::Real);
        assert_eq!(ColumnType::parse("DOUBLE"), ColumnType::Real);
        assert_eq!(ColumnType::parse("BLOB"), ColumnType::Any);
    }

    #[test]
    fn coercion() {
        assert_eq!(ColumnType::Real.coerce(Value::Integer(2)), Value::Real(2.0));
        assert_eq!(
            ColumnType::Integer.coerce(Value::Real(2.0)),
            Value::Integer(2)
        );
        assert_eq!(
            ColumnType::Integer.coerce(Value::Real(2.5)),
            Value::Real(2.5)
        );
        assert_eq!(
            ColumnType::Text.coerce(Value::Integer(2)),
            Value::Integer(2)
        );
    }

    #[test]
    fn schema_lookup_case_insensitive() {
        let s = TableSchema::new(
            "LoggedIn",
            vec![
                ("l_userid".into(), ColumnType::Text),
                ("L_TIME".into(), ColumnType::Text),
            ],
        );
        assert_eq!(s.name, "loggedin");
        assert_eq!(s.column_index("L_USERID"), Some(0));
        assert_eq!(s.column_index("l_time"), Some(1));
        assert!(s.column_index("nope").is_none());
        assert!(s.require_column("nope").is_err());
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn catalog_text_roundtrip() {
        let s = TableSchema::new(
            "t",
            vec![
                ("a".into(), ColumnType::Integer),
                ("b".into(), ColumnType::Text),
                ("c".into(), ColumnType::Real),
            ],
        );
        let text = s.columns_to_text();
        let back = TableSchema::columns_from_text("t", &text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn index_schema_normalizes() {
        let i = IndexSchema::new("IDX", "Orders", vec!["O_CUSTKEY".into()]);
        assert_eq!(i.name, "idx");
        assert_eq!(i.table, "orders");
        assert_eq!(i.columns, vec!["o_custkey"]);
        assert_eq!(i.columns_to_text(), "o_custkey");
    }
}
