//! Pruning sidecars: per-page zone maps + bloom filters for Qq scans.
//!
//! A sidecar is a compact, self-describing summary of one heap page:
//! per-column min/max "zone maps" (split into exact integer bounds and
//! finite-real bounds, because the engine compares Integer↔Integer
//! exactly but Integer↔Real through an `f64` cast) plus one small bloom
//! filter over the text values of the covered columns. Sidecars are
//! built at commit time from the exact page images about to be
//! published, versioned alongside the COW pre-state in `retro`, and
//! consulted by scans *before* fetching a page body: when the zone map
//! or bloom refutes the query's conjunctive predicate, the page (and
//! its disk read) is skipped entirely.
//!
//! Safety model: a sidecar can only ever cause a page to be *skipped*,
//! so the refutation rules must be sound against the engine's actual
//! comparison semantics ([`crate::value::Value::total_cmp`]):
//!
//! * `NULL < numbers < text` is a total order across storage classes, so
//!   `col > 'a'`-style text comparisons are satisfiable by *any* text
//!   value and `col > 5` is satisfiable by any text value — the flags
//!   byte records which classes appear on the page.
//! * `cmp_f64` treats NaN as *equal to everything* (it uses
//!   `partial_cmp().unwrap_or(Equal)`), so a page containing NaN
//!   satisfies every numeric `=`, `<=`, `>=` — a dedicated `HAS_NAN`
//!   flag disables those refutations.
//! * Integers beyond 2⁵³ lose precision as `f64`; integer bounds are
//!   kept as exact `i64` and only compared through the same casts the
//!   engine itself uses.
//!
//! The encoded record carries the page id and an FNV checksum; decode
//! returns `None` on any fault (wrong magic/version/length/pid/checksum)
//! and the scan falls back to a counted full page read — a corrupted or
//! misrouted sidecar can cost a read, never an answer.

use rql_pagestore::{fnv1a, Page, PageId};

use crate::cexpr::CExpr;
use crate::record::Row;
use crate::value::Value;

/// Bump when the encoded layout changes; folded into the memo
/// page-version key so cached results can never be served across a
/// format change.
pub const SIDECAR_FORMAT_VERSION: u8 = 1;

/// Most columns one sidecar will summarize (keeps sidecars small).
pub const MAX_SIDECAR_COLS: usize = 8;

const MAGIC: &[u8; 4] = b"RQSC";
const BLOOM_BYTES: usize = 32;
/// Fixed header: magic(4) + version(1) + ncols(1) + reserved(2) +
/// pid(8) + next(8).
const HEADER: usize = 24;
/// Per-column entry: col_idx(2) + flags(1) + ilo(8) + ihi(8) + rlo(8) +
/// rhi(8).
const COL_ENTRY: usize = 35;
const NIL_NEXT: u64 = u64::MAX;

/// Column value classes observed on the page.
const F_INT: u8 = 1 << 0;
/// At least one finite `Real` (NaN excluded; ±inf included).
const F_REAL: u8 = 1 << 1;
const F_TEXT: u8 = 1 << 2;
const F_NULL: u8 = 1 << 3;
/// At least one `Real` NaN — NaN compares `Equal` to every number in
/// this engine, so it satisfies `=`, `<=`, `>=` against any constant.
const F_NAN: u8 = 1 << 4;

/// Per-column summary inside a decoded sidecar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Column index within the table's rows.
    pub col: usize,
    /// `F_*` class flags.
    flags: u8,
    /// Exact integer bounds (valid iff `F_INT`).
    ilo: i64,
    /// See [`ColumnStats::ilo`].
    ihi: i64,
    /// Finite-real bounds (valid iff `F_REAL`).
    rlo: f64,
    /// See [`ColumnStats::rlo`].
    rhi: f64,
}

/// A decoded (validated) sidecar for one heap page.
#[derive(Debug, Clone, PartialEq)]
pub struct Sidecar {
    /// Page this sidecar describes.
    pub pid: u64,
    /// The page's heap-chain successor at build time (`None` = end of
    /// chain), so a pruned scan can continue the walk without fetching
    /// the page body.
    pub next: Option<PageId>,
    cols: Vec<ColumnStats>,
    bloom: [u8; BLOOM_BYTES],
}

/// One refutable conjunct: a comparison between a column and a non-NULL,
/// non-NaN constant.
#[derive(Debug, Clone, PartialEq)]
pub enum PredAtom {
    /// `col = K`.
    Eq(usize, Value),
    /// `col < K`.
    Lt(usize, Value),
    /// `col <= K`.
    Le(usize, Value),
    /// `col > K`.
    Gt(usize, Value),
    /// `col >= K`.
    Ge(usize, Value),
}

impl PredAtom {
    /// The column this atom constrains.
    pub fn col(&self) -> usize {
        match self {
            PredAtom::Eq(c, _)
            | PredAtom::Lt(c, _)
            | PredAtom::Le(c, _)
            | PredAtom::Gt(c, _)
            | PredAtom::Ge(c, _) => *c,
        }
    }
}

/// The refutable fragment of a conjunctive WHERE clause.
///
/// Conjuncts that don't fit the `col ⋄ const` shape are simply *not
/// represented* — the summary is an over-approximation of the predicate,
/// so refuting any atom refutes the whole conjunction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredSummary {
    /// Extracted atoms.
    pub atoms: Vec<PredAtom>,
}

impl PredSummary {
    /// Extract refutable atoms from compiled conjuncts whose `Col`
    /// offsets start at `col_base` (subtracted so atoms use table-local
    /// column indices). Nested ANDs are walked; everything else that
    /// doesn't match `col ⋄ const` is ignored.
    pub fn from_conjuncts<'a>(
        conjuncts: impl IntoIterator<Item = &'a CExpr>,
        col_base: usize,
    ) -> PredSummary {
        let mut summary = PredSummary::default();
        for c in conjuncts {
            summary.collect(c, col_base);
        }
        summary
    }

    fn collect(&mut self, expr: &CExpr, col_base: usize) {
        use crate::ast::BinOp;
        match expr {
            CExpr::Binary(BinOp::And, a, b) => {
                self.collect(a, col_base);
                self.collect(b, col_base);
            }
            CExpr::Binary(op, a, b) => {
                let atom = match (&**a, &**b) {
                    (CExpr::Col(i), CExpr::Const(k)) => make_atom(*op, *i, k, col_base, false),
                    (CExpr::Const(k), CExpr::Col(i)) => make_atom(*op, *i, k, col_base, true),
                    _ => None,
                };
                if let Some(atom) = atom {
                    self.atoms.push(atom);
                }
            }
            CExpr::Between(e, lo, hi, false) => {
                if let (CExpr::Col(i), CExpr::Const(lo), CExpr::Const(hi)) = (&**e, &**lo, &**hi) {
                    if let Some(i) = i.checked_sub(col_base) {
                        if usable_const(lo) {
                            self.atoms.push(PredAtom::Ge(i, lo.clone()));
                        }
                        if usable_const(hi) {
                            self.atoms.push(PredAtom::Le(i, hi.clone()));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Whether no atoms were extracted (pruning can't help).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// NULL constants are skipped (three-valued logic makes `col < NULL`
/// reject every row — correct to not prune on, and rare); NaN constants
/// are skipped because NaN compares `Equal` to every number here.
fn usable_const(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Real(r) => !r.is_nan(),
        _ => true,
    }
}

fn make_atom(
    op: crate::ast::BinOp,
    col: usize,
    k: &Value,
    col_base: usize,
    flipped: bool,
) -> Option<PredAtom> {
    use crate::ast::BinOp;
    if !usable_const(k) {
        return None;
    }
    let col = col.checked_sub(col_base)?;
    let k = k.clone();
    // `K op col` mirrors to `col op' K`.
    Some(match (op, flipped) {
        (BinOp::Eq, _) => PredAtom::Eq(col, k),
        (BinOp::Lt, false) | (BinOp::Gt, true) => PredAtom::Lt(col, k),
        (BinOp::Le, false) | (BinOp::Ge, true) => PredAtom::Le(col, k),
        (BinOp::Gt, false) | (BinOp::Lt, true) => PredAtom::Gt(col, k),
        (BinOp::Ge, false) | (BinOp::Le, true) => PredAtom::Ge(col, k),
        _ => return None,
    })
}

impl ColumnStats {
    fn has(&self, f: u8) -> bool {
        self.flags & f != 0
    }

    /// Whether this column summary proves no value can satisfy `atom`.
    fn refutes(&self, atom: &PredAtom) -> bool {
        match atom {
            PredAtom::Eq(_, k) => match k {
                // NaN values compare Equal to any number: can't refute.
                Value::Integer(_) | Value::Real(_) if self.has(F_NAN) => false,
                Value::Integer(k) => {
                    let int_miss = !self.has(F_INT) || *k < self.ilo || *k > self.ihi;
                    let kf = *k as f64;
                    let real_miss = !self.has(F_REAL) || kf < self.rlo || kf > self.rhi;
                    int_miss && real_miss
                }
                Value::Real(k) => {
                    // Conservative: compare through the same f64 casts
                    // the engine uses for Integer↔Real.
                    let int_miss = !self.has(F_INT) || *k < self.ilo as f64 || *k > self.ihi as f64;
                    let real_miss = !self.has(F_REAL) || *k < self.rlo || *k > self.rhi;
                    int_miss && real_miss
                }
                // Only text equals text (numbers sort strictly below).
                Value::Text(_) => !self.has(F_TEXT),
                Value::Null => false,
            },
            PredAtom::Lt(_, k) | PredAtom::Le(_, k) => {
                let le = matches!(atom, PredAtom::Le(..));
                match k {
                    Value::Integer(_) | Value::Real(_) => {
                        // Only numeric values sort below a number; NaN
                        // compares Equal so it satisfies `<=` only.
                        if le && self.has(F_NAN) {
                            return false;
                        }
                        let int_sat = self.has(F_INT) && {
                            match k {
                                Value::Integer(k) => {
                                    if le {
                                        self.ilo <= *k
                                    } else {
                                        self.ilo < *k
                                    }
                                }
                                Value::Real(k) => {
                                    let lo = self.ilo as f64;
                                    if le {
                                        lo <= *k
                                    } else {
                                        lo < *k
                                    }
                                }
                                _ => unreachable!(),
                            }
                        };
                        let kf = num_as_f64(k);
                        let real_sat =
                            self.has(F_REAL) && if le { self.rlo <= kf } else { self.rlo < kf };
                        !int_sat && !real_sat
                    }
                    // Every number (and NaN) sorts below text, and we keep
                    // no text ordering info — refutable only when the
                    // column holds nothing but NULLs.
                    Value::Text(_) => {
                        !self.has(F_INT)
                            && !self.has(F_REAL)
                            && !self.has(F_NAN)
                            && !self.has(F_TEXT)
                    }
                    Value::Null => false,
                }
            }
            PredAtom::Gt(_, k) | PredAtom::Ge(_, k) => {
                let ge = matches!(atom, PredAtom::Ge(..));
                match k {
                    Value::Integer(_) | Value::Real(_) => {
                        // Any text sorts above every number.
                        if self.has(F_TEXT) {
                            return false;
                        }
                        // NaN compares Equal: satisfies `>=` only.
                        if ge && self.has(F_NAN) {
                            return false;
                        }
                        let int_sat = self.has(F_INT) && {
                            match k {
                                Value::Integer(k) => {
                                    if ge {
                                        self.ihi >= *k
                                    } else {
                                        self.ihi > *k
                                    }
                                }
                                Value::Real(k) => {
                                    let hi = self.ihi as f64;
                                    if ge {
                                        hi >= *k
                                    } else {
                                        hi > *k
                                    }
                                }
                                _ => unreachable!(),
                            }
                        };
                        let kf = num_as_f64(k);
                        let real_sat =
                            self.has(F_REAL) && if ge { self.rhi >= kf } else { self.rhi > kf };
                        !int_sat && !real_sat
                    }
                    // Only text sorts above text; we keep no text
                    // ordering, so text presence forbids refutation.
                    Value::Text(_) => !self.has(F_TEXT),
                    Value::Null => false,
                }
            }
        }
    }
}

fn num_as_f64(v: &Value) -> f64 {
    match v {
        Value::Integer(i) => *i as f64,
        Value::Real(r) => *r,
        _ => unreachable!("num_as_f64 on non-numeric"),
    }
}

impl Sidecar {
    /// Whether the page provably contains no row satisfying `pred`.
    ///
    /// Returns `false` (don't prune) whenever in doubt: unknown columns,
    /// empty summaries, anything not covered.
    pub fn refutes(&self, pred: &PredSummary) -> bool {
        pred.atoms.iter().any(|atom| {
            let Some(stats) = self.cols.iter().find(|c| c.col == atom.col()) else {
                return false;
            };
            if stats.refutes(atom) {
                return true;
            }
            // Bloom probe for text equality: zone flags said text is
            // present, but this exact string may still be provably
            // absent.
            if let PredAtom::Eq(_, Value::Text(s)) = atom {
                return !self.bloom_may_contain(atom.col(), s);
            }
            false
        })
    }

    fn bloom_may_contain(&self, col: usize, s: &str) -> bool {
        let (b1, b2) = bloom_bits(col, s);
        self.bloom[b1 / 8] & (1 << (b1 % 8)) != 0 && self.bloom[b2 / 8] & (1 << (b2 % 8)) != 0
    }

    /// Decode and validate a sidecar for page `pid`. Any fault — wrong
    /// length, magic, version, pid, checksum, inconsistent column count —
    /// yields `None`, and the caller falls back to reading the page.
    pub fn decode(bytes: &[u8], pid: PageId) -> Option<Sidecar> {
        if bytes.len() < HEADER + BLOOM_BYTES + 8 {
            return None;
        }
        if &bytes[0..4] != MAGIC || bytes[4] != SIDECAR_FORMAT_VERSION {
            return None;
        }
        let ncols = bytes[5] as usize;
        if ncols > MAX_SIDECAR_COLS {
            return None;
        }
        let expect_len = HEADER + ncols * COL_ENTRY + BLOOM_BYTES + 8;
        if bytes.len() != expect_len {
            return None;
        }
        let body = &bytes[..expect_len - 8];
        let stored_sum = u64::from_le_bytes(bytes[expect_len - 8..].try_into().ok()?);
        if fnv1a(body) != stored_sum {
            return None;
        }
        let stored_pid = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        if stored_pid != pid.0 {
            return None;
        }
        let next_raw = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        let mut cols = Vec::with_capacity(ncols);
        let mut pos = HEADER;
        for _ in 0..ncols {
            let col = u16::from_le_bytes(bytes[pos..pos + 2].try_into().ok()?) as usize;
            let flags = bytes[pos + 2];
            let ilo = i64::from_le_bytes(bytes[pos + 3..pos + 11].try_into().ok()?);
            let ihi = i64::from_le_bytes(bytes[pos + 11..pos + 19].try_into().ok()?);
            let rlo = f64::from_bits(u64::from_le_bytes(
                bytes[pos + 19..pos + 27].try_into().ok()?,
            ));
            let rhi = f64::from_bits(u64::from_le_bytes(
                bytes[pos + 27..pos + 35].try_into().ok()?,
            ));
            cols.push(ColumnStats {
                col,
                flags,
                ilo,
                ihi,
                rlo,
                rhi,
            });
            pos += COL_ENTRY;
        }
        let mut bloom = [0u8; BLOOM_BYTES];
        bloom.copy_from_slice(&bytes[pos..pos + BLOOM_BYTES]);
        Some(Sidecar {
            pid: pid.0,
            next: (next_raw != NIL_NEXT).then_some(PageId(next_raw)),
            cols,
            bloom,
        })
    }
}

fn bloom_bits(col: usize, s: &str) -> (usize, usize) {
    let mut key = Vec::with_capacity(2 + s.len());
    key.extend_from_slice(&(col as u16).to_le_bytes());
    key.extend_from_slice(s.as_bytes());
    let h = fnv1a(&key);
    ((h & 0xFF) as usize, ((h >> 32) & 0xFF) as usize)
}

/// Build the encoded sidecar for one heap page image, summarizing
/// `cols` (table-local column indices, deduplicated/truncated to
/// [`MAX_SIDECAR_COLS`]). Returns `None` when the page does not parse
/// as a well-formed heap page — the builder also sees B-tree and
/// catalog pages at commit time, and must never panic or misdescribe
/// them (their "sidecars" are simply absent, which scans treat as
/// "don't prune").
pub fn build_sidecar(pid: PageId, page: &Page, cols: &[usize]) -> Option<Vec<u8>> {
    let rows = safe_page_rows(page)?;
    let next = page.read_u64(crate::heap::OFF_NEXT);
    let mut picked: Vec<usize> = Vec::new();
    for &c in cols {
        if !picked.contains(&c) {
            picked.push(c);
        }
        if picked.len() == MAX_SIDECAR_COLS {
            break;
        }
    }
    if picked.is_empty() {
        return None;
    }
    picked.sort_unstable();

    let mut bloom = [0u8; BLOOM_BYTES];
    let mut stats: Vec<ColumnStats> = Vec::new();
    for &col in &picked {
        if col > u16::MAX as usize {
            continue;
        }
        // Skip columns absent from any row: the engine would error on
        // such rows anyway, and "not covered" is always safe.
        if rows.iter().any(|r| col >= r.len()) && !rows.is_empty() {
            continue;
        }
        let mut cs = ColumnStats {
            col,
            flags: 0,
            ilo: i64::MAX,
            ihi: i64::MIN,
            rlo: f64::INFINITY,
            rhi: f64::NEG_INFINITY,
        };
        for row in &rows {
            match &row[col] {
                Value::Null => cs.flags |= F_NULL,
                Value::Integer(i) => {
                    cs.flags |= F_INT;
                    cs.ilo = cs.ilo.min(*i);
                    cs.ihi = cs.ihi.max(*i);
                }
                Value::Real(r) if r.is_nan() => cs.flags |= F_NAN,
                Value::Real(r) => {
                    cs.flags |= F_REAL;
                    cs.rlo = cs.rlo.min(*r);
                    cs.rhi = cs.rhi.max(*r);
                }
                Value::Text(t) => {
                    cs.flags |= F_TEXT;
                    let (b1, b2) = bloom_bits(col, t);
                    bloom[b1 / 8] |= 1 << (b1 % 8);
                    bloom[b2 / 8] |= 1 << (b2 % 8);
                }
            }
        }
        stats.push(cs);
    }
    if stats.is_empty() {
        return None;
    }

    let mut out = Vec::with_capacity(HEADER + stats.len() * COL_ENTRY + BLOOM_BYTES + 8);
    out.extend_from_slice(MAGIC);
    out.push(SIDECAR_FORMAT_VERSION);
    out.push(stats.len() as u8);
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&pid.0.to_le_bytes());
    out.extend_from_slice(&next.to_le_bytes());
    for cs in &stats {
        out.extend_from_slice(&(cs.col as u16).to_le_bytes());
        out.push(cs.flags);
        out.extend_from_slice(&cs.ilo.to_le_bytes());
        out.extend_from_slice(&cs.ihi.to_le_bytes());
        out.extend_from_slice(&cs.rlo.to_bits().to_le_bytes());
        out.extend_from_slice(&cs.rhi.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&bloom);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Some(out)
}

/// Parse a page as a slotted heap page *without* trusting any of its
/// bytes: every offset is bounds-checked and every record's claimed
/// column count is validated against the cell length before allocation.
/// `None` means "not a heap page I can vouch for".
fn safe_page_rows(page: &Page) -> Option<Vec<Row>> {
    const PAGE_HEADER: usize = 16;
    const SLOT_SIZE: usize = 4;
    let size = page.size();
    if size < PAGE_HEADER {
        return None;
    }
    let slot_count = page.read_u16(8) as usize; // OFF_SLOT_COUNT
    let slots_end = PAGE_HEADER.checked_add(SLOT_SIZE.checked_mul(slot_count)?)?;
    if slots_end > size {
        return None;
    }
    let mut rows = Vec::new();
    for slot in 0..slot_count {
        let base = PAGE_HEADER + SLOT_SIZE * slot;
        let off = page.read_u16(base) as usize;
        let len = page.read_u16(base + 2) as usize;
        if len == 0 {
            continue;
        }
        if off < slots_end || off.checked_add(len)? > size {
            return None;
        }
        let cell = page.read_slice(off, len);
        // Reject absurd column counts before decode_row allocates.
        let mut pos = 0usize;
        let count = read_varint_checked(cell, &mut pos)? as usize;
        if count > len {
            return None;
        }
        rows.push(crate::record::decode_row(cell).ok()?);
    }
    Some(rows)
}

fn read_varint_checked(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use crate::heap::{FreeSpaceMap, HeapFile};
    use crate::record::encode_row;
    use rql_pagestore::{Pager, PagerConfig};
    use std::sync::Arc;

    fn page_with_rows(rows: &[Vec<Value>]) -> (PageId, Page) {
        let pager = Arc::new(Pager::new(PagerConfig {
            page_size: 4096,
            cache_capacity: 16,
            wal_sync_on_commit: false,
        }));
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        for row in rows {
            let mut buf = Vec::new();
            encode_row(row, &mut buf);
            heap.insert(&mut txn, &buf, &mut fsm).unwrap();
        }
        let pid = heap.root();
        let page = (*txn.read_page(pid).unwrap()).clone();
        pager.abort(txn);
        (pid, page)
    }

    fn sidecar_for(rows: &[Vec<Value>], cols: &[usize]) -> Sidecar {
        let (pid, page) = page_with_rows(rows);
        let bytes = build_sidecar(pid, &page, cols).expect("buildable");
        Sidecar::decode(&bytes, pid).expect("decodable")
    }

    fn eq(col: usize, v: Value) -> PredSummary {
        PredSummary {
            atoms: vec![PredAtom::Eq(col, v)],
        }
    }

    #[test]
    fn zone_map_refutes_out_of_range_eq_and_ranges() {
        let rows: Vec<Vec<Value>> = (10..20)
            .map(|i| vec![Value::Integer(i), Value::text(format!("u{i}"))])
            .collect();
        let sc = sidecar_for(&rows, &[0, 1]);
        assert!(sc.refutes(&eq(0, Value::Integer(5))));
        assert!(sc.refutes(&eq(0, Value::Integer(25))));
        assert!(!sc.refutes(&eq(0, Value::Integer(15))));
        // Ranges.
        let lt5 = PredSummary {
            atoms: vec![PredAtom::Lt(0, Value::Integer(10))],
        };
        assert!(sc.refutes(&lt5));
        let le10 = PredSummary {
            atoms: vec![PredAtom::Le(0, Value::Integer(10))],
        };
        assert!(!sc.refutes(&le10));
        let gt19 = PredSummary {
            atoms: vec![PredAtom::Gt(0, Value::Integer(19))],
        };
        assert!(sc.refutes(&gt19));
        let ge19 = PredSummary {
            atoms: vec![PredAtom::Ge(0, Value::Integer(19))],
        };
        assert!(!sc.refutes(&ge19));
        // Real constants against integer data.
        assert!(sc.refutes(&eq(0, Value::Real(5.5))));
        assert!(!sc.refutes(&eq(0, Value::Real(15.0))));
    }

    #[test]
    fn bloom_refutes_absent_text() {
        let rows: Vec<Vec<Value>> = (0..8)
            .map(|i| vec![Value::Integer(i), Value::text(format!("user{i}"))])
            .collect();
        let sc = sidecar_for(&rows, &[0, 1]);
        assert!(!sc.refutes(&eq(1, Value::text("user3"))));
        // A string that's absent: overwhelmingly likely to miss both bits.
        let mut refuted = 0;
        for i in 100..200 {
            if sc.refutes(&eq(1, Value::text(format!("nosuchuser{i}")))) {
                refuted += 1;
            }
        }
        assert!(refuted > 50, "bloom refuted only {refuted}/100 absent keys");
    }

    #[test]
    fn nan_disables_eq_le_ge_refutation() {
        let rows = vec![vec![Value::Real(f64::NAN)], vec![Value::Real(5.0)]];
        let sc = sidecar_for(&rows, &[0]);
        // NaN compares Equal to everything in this engine.
        assert!(!sc.refutes(&eq(0, Value::Real(999.0))));
        let le = PredSummary {
            atoms: vec![PredAtom::Le(0, Value::Real(-100.0))],
        };
        assert!(!sc.refutes(&le));
        let ge = PredSummary {
            atoms: vec![PredAtom::Ge(0, Value::Real(100.0))],
        };
        assert!(!sc.refutes(&ge));
        // Strict comparisons are still refutable: NaN is never Lt/Gt.
        let lt = PredSummary {
            atoms: vec![PredAtom::Lt(0, Value::Real(-100.0))],
        };
        assert!(sc.refutes(&lt));
        let gt = PredSummary {
            atoms: vec![PredAtom::Gt(0, Value::Real(100.0))],
        };
        assert!(sc.refutes(&gt));
    }

    #[test]
    fn text_sorts_above_numbers_blocks_gt_refutation() {
        let rows = vec![vec![Value::Integer(1)], vec![Value::text("z")]];
        let sc = sidecar_for(&rows, &[0]);
        // `col > 100` is satisfied by the text row (text > numbers).
        let gt = PredSummary {
            atoms: vec![PredAtom::Gt(0, Value::Integer(100))],
        };
        assert!(!sc.refutes(&gt));
        // `col < 0`: text never sorts below a number, ints start at 1.
        let lt = PredSummary {
            atoms: vec![PredAtom::Lt(0, Value::Integer(0))],
        };
        assert!(sc.refutes(&lt));
    }

    #[test]
    fn all_null_column_refutes_everything_comparable() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let sc = sidecar_for(&rows, &[0]);
        assert!(sc.refutes(&eq(0, Value::Integer(1))));
        assert!(sc.refutes(&eq(0, Value::text("x"))));
        let lt_text = PredSummary {
            atoms: vec![PredAtom::Lt(0, Value::text("m"))],
        };
        assert!(sc.refutes(&lt_text));
    }

    #[test]
    fn corrupted_bytes_decode_to_none() {
        let rows = vec![vec![Value::Integer(1)]];
        let (pid, page) = page_with_rows(&rows);
        let bytes = build_sidecar(pid, &page, &[0]).unwrap();
        assert!(Sidecar::decode(&bytes, pid).is_some());
        // Flip a byte anywhere: checksum must catch it.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Sidecar::decode(&bad, pid).is_none(), "byte {i} undetected");
        }
        // Truncation.
        assert!(Sidecar::decode(&bytes[..bytes.len() - 1], pid).is_none());
        // Misrouted: right bytes, wrong page.
        assert!(Sidecar::decode(&bytes, PageId(pid.0 + 1)).is_none());
    }

    #[test]
    fn builder_rejects_garbage_pages() {
        // Random-ish bytes must not panic and must not produce a sidecar
        // claiming anything.
        let mut page = Page::zeroed(4096);
        for i in 0..4096 {
            page.bytes_mut()[i] = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        assert!(build_sidecar(PageId(3), &page, &[0, 1]).is_none());
    }

    #[test]
    fn pred_summary_extraction_handles_shapes() {
        use CExpr::*;
        let conjuncts = vec![
            // col1 = 5
            Binary(
                BinOp::Eq,
                Box::new(Col(1)),
                Box::new(Const(Value::Integer(5))),
            ),
            // 10 > col2  ⇒  col2 < 10
            Binary(
                BinOp::Gt,
                Box::new(Const(Value::Integer(10))),
                Box::new(Col(2)),
            ),
            // col3 BETWEEN 1 AND 9
            Between(
                Box::new(Col(3)),
                Box::new(Const(Value::Integer(1))),
                Box::new(Const(Value::Integer(9))),
                false,
            ),
            // Unsummarizable: col1 = col2.
            Binary(BinOp::Eq, Box::new(Col(1)), Box::new(Col(2))),
            // Unsummarizable: NULL constant.
            Binary(BinOp::Lt, Box::new(Col(1)), Box::new(Const(Value::Null))),
        ];
        let summary = PredSummary::from_conjuncts(conjuncts.iter(), 1);
        assert_eq!(
            summary.atoms,
            vec![
                PredAtom::Eq(0, Value::Integer(5)),
                PredAtom::Lt(1, Value::Integer(10)),
                PredAtom::Ge(2, Value::Integer(1)),
                PredAtom::Le(2, Value::Integer(9)),
            ]
        );
    }

    #[test]
    fn next_pointer_survives_roundtrip() {
        let rows = vec![vec![Value::Integer(1)]];
        let (pid, mut page) = page_with_rows(&rows);
        let sc = {
            let bytes = build_sidecar(pid, &page, &[0]).unwrap();
            Sidecar::decode(&bytes, pid).unwrap()
        };
        assert_eq!(sc.next, None);
        page.write_u64(0, 7); // link to page 7
        let sc = {
            let bytes = build_sidecar(pid, &page, &[0]).unwrap();
            Sidecar::decode(&bytes, pid).unwrap()
        };
        assert_eq!(sc.next, Some(PageId(7)));
    }
}
