//! Amortized row-level access to one table within one transaction.
//!
//! The RQL "loop body" processes every record the per-snapshot query Qq
//! returns: `CollateData` inserts each record into the result table,
//! `AggregateDataInTable` probes the result table's index and inserts or
//! updates (paper §3). At one call per record, going through SQL text
//! would re-parse and re-resolve the catalog a million times per
//! iteration; SQLite avoids that with prepared statements. The
//! [`TableWriter`] is the equivalent: catalog resolution, index handles
//! and the free-space map are resolved once, then rows are inserted,
//! probed and updated directly, all inside a single transaction.

use rql_pagestore::WriteTxn;

use crate::btree::BTree;
use crate::catalog::{Catalog, TableInfo};
use crate::db::Database;
use crate::error::{Result, SqlError};
use crate::heap::{FreeSpaceMap, HeapFile, RecordId};
use crate::record::{encode_index_key, encode_row, Row};
use crate::value::Value;

/// Row-level writer over one table, valid for one transaction.
pub struct TableWriter<'a> {
    txn: &'a mut WriteTxn,
    info: TableInfo,
    heap: HeapFile,
    /// All indexes on the table: (tree, key column positions).
    indexes: Vec<(BTree, Vec<usize>)>,
    fsm: FreeSpaceMap,
    buf: Vec<u8>,
    inserted: u64,
    updated: u64,
}

impl<'a> TableWriter<'a> {
    pub(crate) fn new(txn: &'a mut WriteTxn, catalog: &Catalog, table: &str) -> Result<Self> {
        let info = catalog.require_table(table)?.clone();
        let mut indexes = Vec::new();
        for idx in catalog.indexes_on(&info.schema.name) {
            let cols: Vec<usize> = idx
                .schema
                .columns
                .iter()
                .map(|c| info.schema.require_column(c))
                .collect::<Result<_>>()?;
            indexes.push((BTree::new(idx.root), cols));
        }
        let heap = info.heap();
        Ok(TableWriter {
            txn,
            info,
            heap,
            indexes,
            fsm: FreeSpaceMap::new(),
            buf: Vec::new(),
            inserted: 0,
            updated: 0,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &crate::schema::TableSchema {
        &self.info.schema
    }

    /// Insert a row (column affinity applied), maintaining all indexes.
    pub fn insert(&mut self, mut row: Row) -> Result<RecordId> {
        if row.len() != self.info.schema.arity() {
            return Err(SqlError::Invalid(format!(
                "row arity {} does not match table {} ({})",
                row.len(),
                self.info.schema.name,
                self.info.schema.arity()
            )));
        }
        for (v, col) in row.iter_mut().zip(&self.info.schema.columns) {
            let coerced = col.ty.coerce(v.clone());
            *v = coerced;
        }
        self.buf.clear();
        encode_row(&row, &mut self.buf);
        let rid = self.heap.insert(self.txn, &self.buf, &mut self.fsm)?;
        for (tree, cols) in &self.indexes {
            let key_vals: Vec<Value> = cols.iter().map(|&i| row[i].clone()).collect();
            let mut key = Vec::new();
            encode_index_key(&key_vals, &mut key);
            tree.insert(self.txn, &key, rid)?;
        }
        self.inserted += 1;
        Ok(rid)
    }

    /// Probe index `index_no` (position in [`Self::index_count`] order)
    /// for rows whose key columns equal `key`. Returns `(rid, row)` pairs.
    pub fn probe(&self, index_no: usize, key: &[Value]) -> Result<Vec<(RecordId, Row)>> {
        let (tree, cols) = self
            .indexes
            .get(index_no)
            .ok_or_else(|| SqlError::Invalid(format!("no index #{index_no}")))?;
        if key.len() > cols.len() {
            return Err(SqlError::Invalid("probe key longer than index".into()));
        }
        let mut encoded = Vec::new();
        encode_index_key(key, &mut encoded);
        let mut out = Vec::new();
        for rid in tree.scan_prefix(&*self.txn, &encoded)? {
            let row = self.heap.get_row(&*self.txn, rid)?;
            // Re-verify (the numeric key space conflates 1 and 1.0 on
            // purpose; equality is re-checked on the real values).
            let matches = key.iter().zip(cols).all(|(k, &c)| {
                row[c].sql_cmp(k) == Some(std::cmp::Ordering::Equal)
                    || (row[c].is_null() && k.is_null())
            });
            if matches {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    /// Replace the row at `rid` (whose current content is `old_row`),
    /// maintaining indexes. Returns the row's new location.
    pub fn update(&mut self, rid: RecordId, old_row: &Row, mut new_row: Row) -> Result<RecordId> {
        for (v, col) in new_row.iter_mut().zip(&self.info.schema.columns) {
            let coerced = col.ty.coerce(v.clone());
            *v = coerced;
        }
        self.buf.clear();
        encode_row(&new_row, &mut self.buf);
        let new_rid = self.heap.update(self.txn, rid, &self.buf, &mut self.fsm)?;
        for (tree, cols) in &self.indexes {
            let old_key_vals: Vec<Value> = cols.iter().map(|&i| old_row[i].clone()).collect();
            let mut old_key = Vec::new();
            encode_index_key(&old_key_vals, &mut old_key);
            tree.delete(self.txn, &old_key, rid)?;
            let new_key_vals: Vec<Value> = cols.iter().map(|&i| new_row[i].clone()).collect();
            let mut new_key = Vec::new();
            encode_index_key(&new_key_vals, &mut new_key);
            tree.insert(self.txn, &new_key, new_rid)?;
        }
        self.updated += 1;
        Ok(new_rid)
    }

    /// All rows of the table, as `(rid, row)` pairs (full scan; used for
    /// tiny tables like a persisted aggregate variable).
    pub fn probe_all(&self) -> Result<Vec<(RecordId, Row)>> {
        let mut out = Vec::new();
        self.heap.scan(&*self.txn, |rid, row| {
            out.push((rid, row));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of indexes available to [`Self::probe`].
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Rows inserted through this writer.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Rows updated through this writer.
    pub fn updated(&self) -> u64 {
        self.updated
    }
}

impl Database {
    /// Run `f` with a [`TableWriter`] over `table`, inside the open
    /// transaction if one exists, else an auto-commit transaction.
    pub fn with_table_writer<T>(
        &self,
        table: &str,
        f: impl FnOnce(&mut TableWriter) -> Result<T>,
    ) -> Result<T> {
        self.with_write_txn_pub(|_, txn| {
            let catalog = Catalog::load(&*txn)?;
            let mut writer = TableWriter::new(txn, &catalog, table)?;
            f(&mut writer)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> std::sync::Arc<Database> {
        Database::default_in_memory()
    }

    #[test]
    fn insert_probe_update_roundtrip() {
        let db = db();
        db.execute("CREATE TABLE r (grp TEXT, cnt INTEGER)")
            .unwrap();
        db.execute("CREATE INDEX r_grp ON r (grp)").unwrap();
        db.with_table_writer("r", |w| {
            assert_eq!(w.index_count(), 1);
            w.insert(vec![Value::text("a"), Value::Integer(1)])?;
            w.insert(vec![Value::text("b"), Value::Integer(2)])?;
            // Probe and update "a".
            let hits = w.probe(0, &[Value::text("a")])?;
            assert_eq!(hits.len(), 1);
            let (rid, old) = hits.into_iter().next().unwrap();
            let mut new_row = old.clone();
            new_row[1] = Value::Integer(10);
            w.update(rid, &old, new_row)?;
            // Probe again through the maintained index.
            let hits = w.probe(0, &[Value::text("a")])?;
            assert_eq!(hits[0].1[1], Value::Integer(10));
            assert_eq!(w.inserted(), 2);
            assert_eq!(w.updated(), 1);
            Ok(())
        })
        .unwrap();
        // Visible through SQL afterwards.
        let r = db.query("SELECT cnt FROM r WHERE grp = 'a'").unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(10));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = db();
        db.execute("CREATE TABLE r (a INTEGER)").unwrap();
        let err = db.with_table_writer("r", |w| {
            w.insert(vec![Value::Integer(1), Value::Integer(2)])
        });
        assert!(err.is_err());
    }

    #[test]
    fn probe_without_index_rejected() {
        let db = db();
        db.execute("CREATE TABLE r (a INTEGER)").unwrap();
        let err = db.with_table_writer("r", |w| w.probe(0, &[Value::Integer(1)]));
        assert!(err.is_err());
    }

    #[test]
    fn affinity_applied_on_insert() {
        let db = db();
        db.execute("CREATE TABLE r (x REAL)").unwrap();
        db.with_table_writer("r", |w| {
            w.insert(vec![Value::Integer(3)])?;
            Ok(())
        })
        .unwrap();
        let r = db.query("SELECT x FROM r").unwrap();
        assert_eq!(r.rows[0][0], Value::Real(3.0));
    }

    #[test]
    fn error_aborts_autocommit_txn() {
        let db = db();
        db.execute("CREATE TABLE r (a INTEGER)").unwrap();
        let result: Result<()> = db.with_table_writer("r", |w| {
            w.insert(vec![Value::Integer(1)])?;
            Err(SqlError::Invalid("boom".into()))
        });
        assert!(result.is_err());
        assert_eq!(db.table_row_count("r").unwrap(), 0);
    }
}
