//! Scalar user-defined functions.
//!
//! This is the analog of SQLite's `sqlite3_create_function`: the RQL
//! mechanisms are "loop body" UDFs invoked once per row of the Qs result
//! (`SELECT rql_udf(snap_id, …) FROM SnapIds`, paper §3). UDFs may carry
//! state and perform side effects — the RQL callbacks run whole queries
//! and write result tables from inside the call.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, SqlError};
use crate::value::Value;

/// A scalar UDF: takes evaluated argument values, returns one value.
pub type UdfFn = dyn Fn(&[Value]) -> Result<Value> + Send + Sync;

/// Registry of scalar UDFs by (lower-case) name.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    funcs: HashMap<String, Arc<UdfFn>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<Arc<UdfFn>> {
        self.funcs.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Look up, as a `Result`.
    pub fn require(&self, name: &str) -> Result<Arc<UdfFn>> {
        self.get(name)
            .ok_or_else(|| SqlError::Unknown(format!("function {name}")))
    }

    /// Registered function names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.funcs.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("double", |args| {
            Ok(args[0].add(&Value::Integer(0)).add(&args[0]))
        });
        let f = reg.get("DOUBLE").unwrap();
        assert_eq!(f(&[Value::Integer(21)]).unwrap(), Value::Integer(42));
        assert!(reg.get("nope").is_none());
        assert!(reg.require("nope").is_err());
    }

    #[test]
    fn udfs_may_carry_state() {
        let mut reg = UdfRegistry::new();
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        reg.register("tick", move |_| {
            Ok(Value::Integer(c.fetch_add(1, Ordering::Relaxed) as i64))
        });
        let f = reg.get("tick").unwrap();
        assert_eq!(f(&[]).unwrap(), Value::Integer(0));
        assert_eq!(f(&[]).unwrap(), Value::Integer(1));
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn names_sorted() {
        let mut reg = UdfRegistry::new();
        reg.register("zeta", |_| Ok(Value::Null));
        reg.register("alpha", |_| Ok(Value::Null));
        assert_eq!(reg.names(), vec!["alpha", "zeta"]);
    }
}
