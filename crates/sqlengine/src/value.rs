//! SQL values with SQLite-style dynamic typing.
//!
//! Four storage classes are supported: `NULL`, 64-bit integers, 64-bit
//! floats and UTF-8 text. Comparison follows SQL three-valued logic for
//! predicates (`NULL` compares unknown) while sorting and grouping use a
//! total order (`NULL` first, then numbers, then text — SQLite's ordering
//! across storage classes).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit IEEE float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: numbers are true when non-zero; NULL is not true;
    /// text parses as a number where possible (SQLite behaviour).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Integer(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Text(t) => t.trim().parse::<f64>().is_ok_and(|v| v != 0.0),
        }
    }

    /// Numeric view (integers widen to float), `None` for NULL/non-numeric
    /// text.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view, `None` unless the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view, `None` unless the value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// SQL comparison with three-valued logic: `None` when either side is
    /// NULL, otherwise the total-order comparison.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used for ORDER BY / MIN / MAX: NULL < numbers < text;
    /// numbers compare numerically across Integer/Real.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Integer(a), Real(b)) => cmp_f64(*a as f64, *b),
            (Real(a), Integer(b)) => cmp_f64(*a, *b as f64),
            (Real(a), Real(b)) => cmp_f64(*a, *b),
            (Integer(_) | Real(_), Text(_)) => Ordering::Less,
            (Text(_), Integer(_) | Real(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }

    /// Addition with SQL NULL propagation and int/float promotion.
    pub fn add(&self, other: &Value) -> Value {
        numeric_binop(self, other, i64::checked_add, |a, b| a + b)
    }

    /// Subtraction.
    pub fn sub(&self, other: &Value) -> Value {
        numeric_binop(self, other, i64::checked_sub, |a, b| a - b)
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Value {
        numeric_binop(self, other, i64::checked_mul, |a, b| a * b)
    }

    /// Division; division by zero yields NULL (SQLite behaviour).
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(_), Some(0.0)) => Value::Null,
            _ => {
                if let (Value::Integer(a), Value::Integer(b)) = (self, other) {
                    return if *b == 0 {
                        Value::Null
                    } else {
                        Value::Integer(a.wrapping_div(*b))
                    };
                }
                numeric_binop(self, other, |_, _| None, |a, b| a / b)
            }
        }
    }

    /// Remainder; zero modulus yields NULL.
    pub fn rem(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Integer(a), Value::Integer(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a.wrapping_rem(*b))
                }
            }
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) if b != 0.0 => Value::Real(a % b),
                _ => Value::Null,
            },
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> Value {
        match self {
            Value::Integer(i) => Value::Integer(-i),
            Value::Real(r) => Value::Real(-r),
            _ => Value::Null,
        }
    }

    /// String concatenation (SQL `||`); NULL propagates.
    pub fn concat(&self, other: &Value) -> Value {
        if self.is_null() || other.is_null() {
            return Value::Null;
        }
        Value::Text(format!("{self}{other}"))
    }

    /// SQL `LIKE` with `%` and `_` wildcards (case-sensitive).
    pub fn like(&self, pattern: &Value) -> Value {
        let (Some(text), Some(pat)) = (self.as_str(), pattern.as_str()) else {
            return Value::Null;
        };
        Value::Integer(like_match(pat.as_bytes(), text.as_bytes()) as i64)
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn numeric_binop(
    lhs: &Value,
    rhs: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Value {
    match (lhs, rhs) {
        (Value::Integer(a), Value::Integer(b)) => match int_op(*a, *b) {
            Some(v) => Value::Integer(v),
            None => Value::Real(float_op(*a as f64, *b as f64)),
        },
        _ => match (lhs.as_f64(), rhs.as_f64()) {
            (Some(a), Some(b)) => Value::Real(float_op(a, b)),
            _ => Value::Null,
        },
    }
}

/// Recursive LIKE matcher.
fn like_match(pat: &[u8], text: &[u8]) -> bool {
    match pat.first() {
        None => text.is_empty(),
        Some(b'%') => {
            // Collapse consecutive %.
            let rest = &pat[1..];
            (0..=text.len()).any(|i| like_match(rest, &text[i..]))
        }
        Some(b'_') => !text.is_empty() && like_match(&pat[1..], &text[1..]),
        Some(&c) => text.first() == Some(&c) && like_match(&pat[1..], &text[1..]),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Text(t) => write!(f, "{t}"),
        }
    }
}

/// Wrapper giving [`Value`] `Eq + Hash` semantics for GROUP BY / DISTINCT
/// keys: floats hash by bits with `-0.0` normalized to `0.0`, and a float
/// equal to an integer hashes like that integer so `1` and `1.0` group
/// together (SQL equality semantics).
#[derive(Debug, Clone)]
pub struct GroupKey(pub Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.sql_eq(other)
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Null => 0u8.hash(state),
                Value::Integer(i) => {
                    1u8.hash(state);
                    i.hash(state);
                }
                Value::Real(r) => {
                    // Integral floats hash as their integer counterpart.
                    if r.fract() == 0.0 && *r >= i64::MIN as f64 && *r <= i64::MAX as f64 {
                        1u8.hash(state);
                        (*r as i64).hash(state);
                    } else {
                        2u8.hash(state);
                        let bits = if *r == 0.0 { 0u64 } else { r.to_bits() };
                        bits.hash(state);
                    }
                }
                Value::Text(t) => {
                    3u8.hash(state);
                    t.hash(state);
                }
            }
        }
    }
}

impl GroupKey {
    /// Equality matching SQL grouping: integers and integral reals match.
    pub fn sql_eq(&self, other: &GroupKey) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| group_value_eq(a, b))
    }
}

fn group_value_eq(a: &Value, b: &Value) -> bool {
    use Value::*;
    match (a, b) {
        (Null, Null) => true, // grouping treats NULLs as equal
        (Integer(x), Real(y)) | (Real(y), Integer(x)) => *x as f64 == *y,
        // Bit equality so NaN keys satisfy the Eq reflexivity HashMap needs.
        (Real(x), Real(y)) => x.to_bits() == y.to_bits() || x == y,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn three_valued_comparison() {
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::Integer(1).sql_cmp(&Value::Integer(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Integer(2).sql_cmp(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_order_across_classes() {
        let mut vals = vec![
            Value::text("abc"),
            Value::Integer(5),
            Value::Null,
            Value::Real(2.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Real(2.5),
                Value::Integer(5),
                Value::text("abc"),
            ]
        );
    }

    #[test]
    fn arithmetic_with_promotion_and_null() {
        assert_eq!(Value::Integer(2).add(&Value::Integer(3)), Value::Integer(5));
        assert_eq!(Value::Integer(2).add(&Value::Real(0.5)), Value::Real(2.5));
        assert!(Value::Integer(2).add(&Value::Null).is_null());
        assert_eq!(Value::Integer(7).div(&Value::Integer(2)), Value::Integer(3));
        assert!(Value::Integer(7).div(&Value::Integer(0)).is_null());
        assert_eq!(Value::Integer(7).rem(&Value::Integer(4)), Value::Integer(3));
        assert_eq!(Value::Integer(5).neg(), Value::Integer(-5));
    }

    #[test]
    fn integer_overflow_promotes_to_real() {
        let v = Value::Integer(i64::MAX).add(&Value::Integer(1));
        assert!(matches!(v, Value::Real(_)));
    }

    #[test]
    fn like_patterns() {
        let t = Value::text("STANDARD POLISHED TIN");
        assert_eq!(t.like(&Value::text("%POLISHED%")), Value::Integer(1));
        assert_eq!(t.like(&Value::text("STANDARD%")), Value::Integer(1));
        assert_eq!(t.like(&Value::text("%BRASS%")), Value::Integer(0));
        assert_eq!(
            Value::text("abc").like(&Value::text("a_c")),
            Value::Integer(1)
        );
        assert!(Value::Null.like(&Value::text("x")).is_null());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Integer(1).is_truthy());
        assert!(!Value::Integer(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Real(0.5).is_truthy());
        assert!(Value::text("2").is_truthy());
        assert!(!Value::text("abc").is_truthy());
    }

    #[test]
    fn group_key_unifies_int_and_real() {
        let mut m: HashMap<GroupKey, u32> = HashMap::new();
        m.insert(GroupKey(vec![Value::Integer(1)]), 1);
        assert!(m.contains_key(&GroupKey(vec![Value::Real(1.0)])));
        assert!(!m.contains_key(&GroupKey(vec![Value::Real(1.5)])));
    }

    #[test]
    fn group_key_nulls_group_together() {
        let a = GroupKey(vec![Value::Null]);
        let b = GroupKey(vec![Value::Null]);
        assert!(a.sql_eq(&b));
        let mut m: HashMap<GroupKey, u32> = HashMap::new();
        m.insert(a, 1);
        assert!(m.contains_key(&b));
    }

    #[test]
    fn display_format() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(42).to_string(), "42");
        assert_eq!(Value::Real(1.5).to_string(), "1.5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }

    #[test]
    fn concat() {
        assert_eq!(
            Value::text("a").concat(&Value::Integer(1)),
            Value::text("a1")
        );
        assert!(Value::text("a").concat(&Value::Null).is_null());
    }
}
