//! Model-based property tests: the page-backed B-tree against a
//! `BTreeMap`, the slotted-page heap against a `HashMap`, and the WAL
//! against crash points at every byte.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use proptest::prelude::*;

use rql_pagestore::{LogStorage, MemStorage, Pager, PagerConfig, Wal};
use rql_sqlengine::btree::BTree;
use rql_sqlengine::heap::{FreeSpaceMap, HeapFile, RecordId};
use rql_sqlengine::record::{encode_index_key, encode_row};
use rql_sqlengine::Value;

fn pager(page_size: usize) -> Arc<Pager> {
    Arc::new(Pager::new(PagerConfig {
        page_size,
        cache_capacity: 64,
        wal_sync_on_commit: false,
    }))
}

// ---- B-tree vs BTreeMap ----------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i16),
    Delete(i16),
    Lookup(i16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        3 => any::<i16>().prop_map(|k| TreeOp::Insert(k % 200)),
        1 => any::<i16>().prop_map(|k| TreeOp::Delete(k % 200)),
        1 => any::<i16>().prop_map(|k| TreeOp::Lookup(k % 200)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        // Model: key -> the rid we stored under it (one per key here).
        let mut model: BTreeMap<i16, RecordId> = BTreeMap::new();
        let mut next_rid = 0u64;
        for op in &ops {
            match op {
                TreeOp::Insert(k) => {
                    if model.contains_key(k) {
                        continue; // keep one entry per key for the model
                    }
                    let rid = RecordId {
                        page: rql_pagestore::PageId(next_rid),
                        slot: 0,
                    };
                    next_rid += 1;
                    let mut key = Vec::new();
                    encode_index_key(&[Value::Integer(*k as i64)], &mut key);
                    tree.insert(&mut txn, &key, rid).unwrap();
                    model.insert(*k, rid);
                }
                TreeOp::Delete(k) => {
                    let mut key = Vec::new();
                    encode_index_key(&[Value::Integer(*k as i64)], &mut key);
                    let expected = model.remove(k);
                    match expected {
                        Some(rid) => {
                            prop_assert!(tree.delete(&mut txn, &key, rid).unwrap());
                        }
                        None => {
                            // Deleting an absent (key, rid) is a no-op.
                            let rid = RecordId {
                                page: rql_pagestore::PageId(u64::MAX - 1),
                                slot: 0,
                            };
                            prop_assert!(!tree.delete(&mut txn, &key, rid).unwrap());
                        }
                    }
                }
                TreeOp::Lookup(k) => {
                    let mut key = Vec::new();
                    encode_index_key(&[Value::Integer(*k as i64)], &mut key);
                    let hits = tree.scan_prefix(&txn, &key).unwrap();
                    match model.get(k) {
                        Some(rid) => prop_assert_eq!(hits, vec![*rid]),
                        None => prop_assert!(hits.is_empty()),
                    }
                }
            }
        }
        // Final full-scan order equals the model's key order.
        let mut scanned: Vec<RecordId> = Vec::new();
        tree.scan_all(&txn, |_, rid| {
            scanned.push(rid);
            Ok(true)
        })
        .unwrap();
        let expected: Vec<RecordId> = model.values().copied().collect();
        prop_assert_eq!(scanned, expected);
    }
}

// ---- heap vs HashMap --------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(u8, String),
    Delete(u8),
    Update(u8, String),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    let text = "[a-z]{0,24}";
    prop_oneof![
        3 => (any::<u8>(), text).prop_map(|(k, t)| HeapOp::Insert(k % 40, t)),
        1 => any::<u8>().prop_map(|k| HeapOp::Delete(k % 40)),
        2 => (any::<u8>(), text).prop_map(|(k, t)| HeapOp::Update(k % 40, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn heap_matches_hashmap(ops in proptest::collection::vec(heap_op(), 1..200)) {
        let pager = pager(256);
        let mut txn = pager.begin_write().unwrap();
        let heap = HeapFile::create(&mut txn).unwrap();
        let mut fsm = FreeSpaceMap::new();
        // Model: logical key -> (rid, payload).
        let mut model: HashMap<u8, (RecordId, String)> = HashMap::new();
        let encode = |k: u8, t: &str| {
            let mut buf = Vec::new();
            encode_row(&[Value::Integer(k as i64), Value::text(t)], &mut buf);
            buf
        };
        for op in &ops {
            match op {
                HeapOp::Insert(k, t) => {
                    if model.contains_key(k) {
                        continue;
                    }
                    let rid = heap.insert(&mut txn, &encode(*k, t), &mut fsm).unwrap();
                    model.insert(*k, (rid, t.clone()));
                }
                HeapOp::Delete(k) => {
                    if let Some((rid, _)) = model.remove(k) {
                        heap.delete(&mut txn, rid, &mut fsm).unwrap();
                    }
                }
                HeapOp::Update(k, t) => {
                    if let Some((rid, _)) = model.get(k).cloned() {
                        let new_rid = heap
                            .update(&mut txn, rid, &encode(*k, t), &mut fsm)
                            .unwrap();
                        model.insert(*k, (new_rid, t.clone()));
                    }
                }
            }
        }
        // Every live record readable at its rid with the right payload.
        for (k, (rid, t)) in &model {
            let row = heap.get_row(&txn, *rid).unwrap();
            prop_assert_eq!(&row[0], &Value::Integer(*k as i64));
            prop_assert_eq!(&row[1], &Value::text(t.clone()));
        }
        // Scan sees exactly the live set.
        let mut seen: HashMap<u8, String> = HashMap::new();
        heap.scan(&txn, |_, row| {
            let k = row[0].as_i64().unwrap() as u8;
            let t = row[1].as_str().unwrap().to_owned();
            assert!(seen.insert(k, t).is_none(), "duplicate key in scan");
            Ok(true)
        })
        .unwrap();
        prop_assert_eq!(seen.len(), model.len());
        for (k, (_, t)) in &model {
            prop_assert_eq!(seen.get(k), Some(t));
        }
    }
}

// ---- WAL crash points ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wal_recovery_is_prefix_consistent(
        txn_sizes in proptest::collection::vec(1usize..4, 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        // Write a sequence of committed transactions, then truncate the
        // log at an arbitrary byte: recovery must yield exactly the
        // transactions whose commit record survived, in order.
        let storage = Arc::new(MemStorage::new());
        let wal = Wal::new(storage.clone(), false);
        let mut commit_ends: Vec<(u64, u64)> = Vec::new(); // (txn, end offset)
        let mut txn_id = 0u64;
        for (i, &size) in txn_sizes.iter().enumerate() {
            txn_id = i as u64 + 1;
            for p in 0..size {
                let mut page = rql_pagestore::Page::zeroed(64);
                page.write_u64(0, txn_id * 100 + p as u64);
                wal.log_write(txn_id, rql_pagestore::PageId(p as u64), &page).unwrap();
            }
            wal.log_commit(txn_id, None).unwrap();
            commit_ends.push((txn_id, storage.len()));
        }
        let cut = (storage.len() as f64 * cut_frac) as u64;
        storage.truncate(cut).unwrap();
        let recovered = wal.recover().unwrap();
        // Expected: the last txn whose commit end <= cut.
        let expected_last = commit_ends
            .iter()
            .take_while(|(_, end)| *end <= cut)
            .map(|(t, _)| *t)
            .last()
            .unwrap_or(0);
        prop_assert_eq!(recovered.last_txn, expected_last);
        let _ = txn_id;
    }
}
