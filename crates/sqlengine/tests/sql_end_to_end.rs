//! End-to-end SQL tests over `Database`, including the paper's worked
//! LoggedIn example (Figures 1–3) executed verbatim.

use rql_sqlengine::{Database, ExecOutcome, Value};

fn db() -> std::sync::Arc<Database> {
    Database::default_in_memory()
}

fn ints(result: &rql_sqlengine::QueryResult) -> Vec<i64> {
    result
        .rows
        .iter()
        .map(|r| r[0].as_i64().expect("integer"))
        .collect()
}

#[test]
fn create_insert_select() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
    let r = db.query("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(r.columns, vec!["a", "b"]);
    assert_eq!(ints(&r), vec![1, 2, 3]);
    assert_eq!(r.rows[1][1], Value::text("two"));
}

#[test]
fn paper_loggedin_example_figures_1_to_3() {
    let db = db();
    db.execute("CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO LoggedIn VALUES \
         ('UserA', '2008-11-09 13:23:44', 'USA'), \
         ('UserB', '2008-11-09 15:45:21', 'UK'), \
         ('UserC', '2008-11-09 15:45:21', 'USA')",
    )
    .unwrap();
    // Declare snapshot S1 (Figure 3, lines 1-2).
    let out = db.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    let ExecOutcome::SnapshotDeclared(s1) = out else {
        panic!("expected snapshot, got {out:?}")
    };
    assert_eq!(s1, 1);
    // Update and declare S2 (lines 3-5). UserC's time changes too per
    // Figure 1(b).
    db.execute(
        "BEGIN; \
         DELETE FROM LoggedIn WHERE l_userid = 'UserA'; \
         UPDATE LoggedIn SET l_time = '2008-11-09 21:33:12' WHERE l_userid = 'UserC'; \
         COMMIT WITH SNAPSHOT;",
    )
    .unwrap();
    // Update and declare S3 (lines 6-8).
    let out = db
        .execute(
            "BEGIN; \
             INSERT INTO LoggedIn (l_userid, l_time, l_country) \
             VALUES ('UserD', '2008-11-11 10:08:04', 'UK'); \
             COMMIT WITH SNAPSHOT;",
        )
        .unwrap();
    let ExecOutcome::SnapshotDeclared(s3) = out else {
        panic!()
    };
    assert_eq!(s3, 3);

    // Retrospective query (line 9): S1 has all three original users.
    let r = db
        .query("SELECT AS OF 1 l_userid FROM LoggedIn ORDER BY l_userid")
        .unwrap();
    let users: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(users, vec!["UserA", "UserB", "UserC"]);

    // Figure 1(b): S2 does NOT include UserA (snapshot reflects the
    // declaring transaction's updates).
    let r = db
        .query("SELECT AS OF 2 l_userid FROM LoggedIn ORDER BY l_userid")
        .unwrap();
    let users: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(users, vec!["UserB", "UserC"]);

    // Current state (line 10) == S3 contents.
    let r = db
        .query("SELECT l_userid FROM LoggedIn ORDER BY l_userid")
        .unwrap();
    let users: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(users, vec!["UserB", "UserC", "UserD"]);
}

#[test]
fn where_filters_and_expressions() {
    let db = db();
    db.execute("CREATE TABLE n (x INTEGER)").unwrap();
    db.execute("INSERT INTO n VALUES (1), (2), (3), (4), (5), (6)")
        .unwrap();
    assert_eq!(
        ints(
            &db.query("SELECT x FROM n WHERE x % 2 = 0 ORDER BY x")
                .unwrap()
        ),
        vec![2, 4, 6]
    );
    assert_eq!(
        ints(
            &db.query("SELECT x FROM n WHERE x BETWEEN 2 AND 4 ORDER BY x")
                .unwrap()
        ),
        vec![2, 3, 4]
    );
    assert_eq!(
        ints(
            &db.query("SELECT x FROM n WHERE x IN (1, 5, 9) ORDER BY x")
                .unwrap()
        ),
        vec![1, 5]
    );
    assert_eq!(
        ints(
            &db.query("SELECT x + 10 FROM n WHERE NOT x > 2 ORDER BY 1")
                .unwrap()
        ),
        vec![11, 12]
    );
}

#[test]
fn aggregates_and_group_by() {
    let db = db();
    db.execute("CREATE TABLE o (cust INTEGER, price REAL)")
        .unwrap();
    db.execute(
        "INSERT INTO o VALUES (1, 10.0), (1, 20.0), (2, 5.0), (2, 15.0), (2, 40.0), (3, 7.0)",
    )
    .unwrap();
    let r = db
        .query(
            "SELECT cust, COUNT(*) AS cn, AVG(price) AS av, SUM(price) AS s, \
             MIN(price), MAX(price) \
             FROM o GROUP BY cust ORDER BY cust",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][1], Value::Integer(2));
    assert_eq!(r.rows[0][2], Value::Real(15.0));
    assert_eq!(r.rows[1][3], Value::Real(60.0));
    assert_eq!(r.rows[1][4], Value::Real(5.0));
    assert_eq!(r.rows[1][5], Value::Real(40.0));
    // Global aggregate over empty set: COUNT = 0, SUM = NULL.
    let r = db
        .query("SELECT COUNT(*), SUM(price) FROM o WHERE cust = 99")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(0));
    assert!(r.rows[0][1].is_null());
    // HAVING.
    let r = db
        .query("SELECT cust FROM o GROUP BY cust HAVING COUNT(*) >= 2 ORDER BY cust")
        .unwrap();
    assert_eq!(ints(&r), vec![1, 2]);
    // COUNT(DISTINCT ...).
    db.execute("INSERT INTO o VALUES (1, 10.0)").unwrap();
    let r = db
        .query("SELECT COUNT(price), COUNT(DISTINCT price) FROM o WHERE cust = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
    assert_eq!(r.rows[0][1], Value::Integer(2));
}

#[test]
fn joins_with_and_without_native_index() {
    for with_index in [false, true] {
        let db = db();
        db.execute("CREATE TABLE part (p_partkey INTEGER, p_type TEXT)")
            .unwrap();
        db.execute("CREATE TABLE lineitem (l_partkey INTEGER, l_price REAL)")
            .unwrap();
        if with_index {
            db.execute("CREATE INDEX idx_lpart ON lineitem (l_partkey)")
                .unwrap();
        }
        db.execute("INSERT INTO part VALUES (1, 'TIN'), (2, 'BRASS'), (3, 'TIN')")
            .unwrap();
        db.execute("INSERT INTO lineitem VALUES (1, 10.0), (1, 5.0), (2, 100.0), (3, 2.5)")
            .unwrap();
        // Comma-join with WHERE equality (Table 1's Qq_cpu shape).
        let r = db
            .query(
                "SELECT SUM(l_price) AS revenue FROM lineitem, part \
                 WHERE p_partkey = l_partkey AND p_type = 'TIN'",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Real(17.5), "with_index={with_index}");
        // Index creation cost appears only without the native index.
        if with_index {
            assert_eq!(r.stats.index_creation, std::time::Duration::ZERO);
        } else {
            assert!(r.stats.index_creation > std::time::Duration::ZERO);
        }
        // Explicit JOIN ... ON syntax.
        let r = db
            .query(
                "SELECT p.p_type, COUNT(*) AS c FROM part p \
                 JOIN lineitem l ON p.p_partkey = l.l_partkey \
                 GROUP BY p.p_type ORDER BY p.p_type",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::text("BRASS"));
        assert_eq!(r.rows[0][1], Value::Integer(1));
        assert_eq!(r.rows[1][1], Value::Integer(3));
    }
}

#[test]
fn native_index_used_for_point_lookup() {
    let db = db();
    db.execute("CREATE TABLE t (k INTEGER, v TEXT)").unwrap();
    db.execute("CREATE INDEX idx_k ON t (k)").unwrap();
    for chunk in 0..10 {
        let values: Vec<String> = (0..100)
            .map(|i| format!("({}, 'v{}')", chunk * 100 + i, chunk * 100 + i))
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
            .unwrap();
    }
    let r = db.query("SELECT v FROM t WHERE k = 512").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::text("v512"));
    // Index maintained across delete/update.
    db.execute("DELETE FROM t WHERE k = 512").unwrap();
    assert!(db
        .query("SELECT v FROM t WHERE k = 512")
        .unwrap()
        .rows
        .is_empty());
    db.execute("UPDATE t SET k = 512 WHERE k = 700").unwrap();
    let r = db.query("SELECT v FROM t WHERE k = 512").unwrap();
    assert_eq!(r.rows[0][0], Value::text("v700"));
}

#[test]
fn distinct_order_limit() {
    let db = db();
    db.execute("CREATE TABLE d (x INTEGER)").unwrap();
    db.execute("INSERT INTO d VALUES (3), (1), (3), (2), (1)")
        .unwrap();
    assert_eq!(
        ints(&db.query("SELECT DISTINCT x FROM d ORDER BY x").unwrap()),
        vec![1, 2, 3]
    );
    assert_eq!(
        ints(&db.query("SELECT x FROM d ORDER BY x DESC LIMIT 2").unwrap()),
        vec![3, 3]
    );
}

#[test]
fn update_and_delete_row_counts() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)")
        .unwrap();
    let ExecOutcome::Affected(n) = db.execute("UPDATE t SET b = a * 2 WHERE a >= 2").unwrap()
    else {
        panic!()
    };
    assert_eq!(n, 2);
    let r = db.query("SELECT b FROM t ORDER BY a").unwrap();
    assert_eq!(ints(&r), vec![0, 4, 6]);
    let ExecOutcome::Affected(n) = db.execute("DELETE FROM t WHERE b = 0").unwrap() else {
        panic!()
    };
    assert_eq!(n, 1);
    assert_eq!(db.table_row_count("t").unwrap(), 2);
}

#[test]
fn create_table_as_select() {
    let db = db();
    db.execute("CREATE TABLE src (a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db.execute("CREATE TABLE dst AS SELECT a * 10 AS a10, b FROM src")
        .unwrap();
    let r = db.query("SELECT a10, b FROM dst ORDER BY a10").unwrap();
    assert_eq!(ints(&r), vec![10, 20]);
}

#[test]
fn rollback_discards_changes() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("BEGIN; INSERT INTO t VALUES (2); ROLLBACK;")
        .unwrap();
    assert_eq!(db.table_row_count("t").unwrap(), 1);
    // And the store still works for further writes.
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    assert_eq!(db.table_row_count("t").unwrap(), 2);
}

#[test]
fn txn_sees_own_writes() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("BEGIN; INSERT INTO t VALUES (7);").unwrap();
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    db.execute("COMMIT;").unwrap();
}

#[test]
fn as_of_sees_snapshot_catalog() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let sid = db.declare_snapshot().unwrap();
    db.execute("CREATE TABLE later (b INTEGER)").unwrap();
    // `later` does not exist in the snapshot.
    let err = db.query(&format!("SELECT AS OF {sid} * FROM later"));
    assert!(err.is_err());
    // But exists now.
    assert!(db.query("SELECT * FROM later").is_ok());
    // And `t` is readable as of the snapshot.
    let r = db.query(&format!("SELECT AS OF {sid} a FROM t")).unwrap();
    assert_eq!(ints(&r), vec![1]);
}

#[test]
fn udf_callable_in_select() {
    let db = db();
    db.register_udf("current_snapshot", |_| Ok(Value::Integer(42)));
    let r = db.query("SELECT current_snapshot()").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(42));
}

#[test]
fn udf_can_reenter_database() {
    // The RQL loop-body pattern: a UDF invoked per row of a query runs
    // further statements on the same database.
    let db = db();
    db.execute("CREATE TABLE snapids (snap_id INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE log (s INTEGER)").unwrap();
    db.execute("INSERT INTO snapids VALUES (1), (2), (3)")
        .unwrap();
    let db2 = db.clone();
    db.register_udf("loop_body", move |args| {
        let sid = args[0].as_i64().unwrap();
        db2.execute(&format!("INSERT INTO log VALUES ({sid})"))
            .map_err(|e| rql_sqlengine::SqlError::Udf(e.to_string()))?;
        Ok(Value::Integer(1))
    });
    db.query("SELECT loop_body(snap_id) FROM snapids").unwrap();
    let r = db.query("SELECT s FROM log ORDER BY s").unwrap();
    assert_eq!(ints(&r), vec![1, 2, 3]);
}

#[test]
fn query_with_callback_delivers_rows() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (5), (6)").unwrap();
    let mut seen = Vec::new();
    db.query_with_callback("SELECT a FROM t ORDER BY a", |cols, row| {
        assert_eq!(cols, &["a".to_string()]);
        seen.push(row[0].as_i64().unwrap());
        Ok(())
    })
    .unwrap();
    assert_eq!(seen, vec![5, 6]);
}

#[test]
fn errors_reported() {
    let db = db();
    assert!(db.query("SELECT * FROM missing").is_err());
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    assert!(db.execute("CREATE TABLE t (b INTEGER)").is_err());
    assert!(db
        .execute("CREATE TABLE IF NOT EXISTS t (b INTEGER)")
        .is_ok());
    assert!(db.query("SELECT nope FROM t").is_err());
    assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err());
    assert!(db.execute("COMMIT").is_err()); // no open txn
    assert!(db.execute("DROP TABLE missing").is_err());
    assert!(db.execute("DROP TABLE IF EXISTS missing").is_ok());
}

#[test]
fn as_of_io_stats_reflect_sources() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let values: Vec<String> = (0..2000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
        .unwrap();
    let sid = db.declare_snapshot().unwrap();
    // Overwrite everything so the snapshot is fully archived.
    db.execute("UPDATE t SET a = a + 10000").unwrap();
    db.store().cache().clear();
    db.io_stats().reset();
    let r = db
        .query(&format!("SELECT AS OF {sid} COUNT(*) FROM t"))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2000));
    assert!(
        r.stats.io.pagelog_reads > 0,
        "old snapshot scan must fetch from the pagelog: {:?}",
        r.stats.io
    );
    // Re-running hits the cache instead.
    let r2 = db
        .query(&format!("SELECT AS OF {sid} COUNT(*) FROM t"))
        .unwrap();
    assert!(r2.stats.io.cache_hits > 0);
    assert!(r2.stats.io.pagelog_reads < r.stats.io.pagelog_reads / 2);
}

#[test]
fn table_wildcard_and_aliases() {
    let db = db();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (y INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (2)").unwrap();
    let r = db
        .query("SELECT a.*, b.y FROM a, b WHERE a.x < b.y")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0], vec![Value::Integer(1), Value::Integer(2)]);
}
