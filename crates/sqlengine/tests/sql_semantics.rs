//! SQL semantics edge cases: three-valued logic in WHERE, NULL handling
//! in grouping and aggregates, ordering rules, planner access-path
//! decisions (asserted through `QueryResult::plan`), and DML corner
//! cases.

use rql_sqlengine::{Database, Value};

fn db() -> std::sync::Arc<Database> {
    Database::default_in_memory()
}

#[test]
fn where_null_rows_are_filtered_not_errors() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (NULL), (3)").unwrap();
    // NULL comparisons are unknown → row dropped.
    let r = db.query("SELECT a FROM t WHERE a > 0 ORDER BY a").unwrap();
    assert_eq!(r.rows.len(), 2);
    // IS NULL finds it.
    let r = db.query("SELECT COUNT(*) FROM t WHERE a IS NULL").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    // NOT (unknown) is still unknown.
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE NOT (a > 0)")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(0));
}

#[test]
fn null_in_list_semantics() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // 1 IN (1, NULL) is true; 2 IN (1, NULL) is unknown → filtered.
    let r = db.query("SELECT a FROM t WHERE a IN (1, NULL)").unwrap();
    assert_eq!(r.rows.len(), 1);
    // NOT IN with NULL in the list filters everything (unknown).
    let r = db
        .query("SELECT a FROM t WHERE a NOT IN (1, NULL)")
        .unwrap();
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn aggregates_skip_nulls() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (2), (NULL), (4)").unwrap();
    let r = db
        .query("SELECT COUNT(*), COUNT(a), SUM(a), AVG(a), MIN(a), MAX(a) FROM t")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
    assert_eq!(r.rows[0][1], Value::Integer(2));
    assert_eq!(r.rows[0][2], Value::Integer(6));
    assert_eq!(r.rows[0][3], Value::Real(3.0));
    assert_eq!(r.rows[0][4], Value::Integer(2));
    assert_eq!(r.rows[0][5], Value::Integer(4));
}

#[test]
fn group_by_nulls_form_one_group() {
    let db = db();
    db.execute("CREATE TABLE t (g TEXT, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 1), (NULL, 2), (NULL, 3)")
        .unwrap();
    let r = db
        .query("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // NULL sorts first under the total order.
    assert!(r.rows[0][0].is_null());
    assert_eq!(r.rows[0][1], Value::Integer(2));
}

#[test]
fn order_by_alias_position_and_expression() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 9), (2, 5), (3, 7)")
        .unwrap();
    // Alias.
    let r = db
        .query("SELECT b AS weight FROM t ORDER BY weight")
        .unwrap();
    assert_eq!(
        r.rows
            .iter()
            .map(|x| x[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![5, 7, 9]
    );
    // Position.
    let r = db.query("SELECT a, b FROM t ORDER BY 2 DESC").unwrap();
    assert_eq!(r.rows[0][1], Value::Integer(9));
    // Expression not in the projection.
    let r = db.query("SELECT a FROM t ORDER BY b * -1").unwrap();
    assert_eq!(
        r.rows
            .iter()
            .map(|x| x[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![1, 3, 2]
    );
    // ORDER BY on an aggregate query.
    let r = db
        .query("SELECT a % 2 AS p, SUM(b) AS s FROM t GROUP BY a % 2 ORDER BY s DESC")
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Integer(16)); // 9 + 7 (a=1,3)
}

#[test]
fn having_without_group_by() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let r = db
        .query("SELECT SUM(a) FROM t HAVING COUNT(*) > 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db
        .query("SELECT SUM(a) FROM t HAVING COUNT(*) > 5")
        .unwrap();
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn limit_zero_and_overshoot() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(db.query("SELECT a FROM t LIMIT 0").unwrap().rows.len(), 0);
    assert_eq!(db.query("SELECT a FROM t LIMIT 99").unwrap().rows.len(), 2);
}

#[test]
fn ambiguous_column_is_an_error() {
    let db = db();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (x INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (1)").unwrap();
    assert!(db.query("SELECT x FROM a, b").is_err());
    assert!(db.query("SELECT a.x FROM a, b").is_ok());
}

#[test]
fn planner_decisions_are_visible() {
    let db = db();
    db.execute("CREATE TABLE part (p_partkey INTEGER, p_type TEXT)")
        .unwrap();
    db.execute("CREATE TABLE lineitem (l_partkey INTEGER, l_price REAL)")
        .unwrap();
    db.execute("INSERT INTO part VALUES (1, 'TIN')").unwrap();
    db.execute("INSERT INTO lineitem VALUES (1, 5.0)").unwrap();
    // Without an index: base seq scan + ad-hoc hash join.
    let r = db
        .query("SELECT COUNT(*) FROM lineitem, part WHERE p_partkey = l_partkey")
        .unwrap();
    assert_eq!(
        r.plan,
        vec!["lineitem: seq scan", "part: hash join (ad-hoc index build)"]
    );
    // With a native index on the join column: table is reordered to the
    // inner side and probed through the index.
    db.execute("CREATE INDEX idx_lp ON lineitem (l_partkey)")
        .unwrap();
    let r = db
        .query("SELECT COUNT(*) FROM lineitem, part WHERE p_partkey = l_partkey")
        .unwrap();
    assert_eq!(
        r.plan,
        vec!["part: seq scan", "lineitem: index nested loop via idx_lp"]
    );
    // Point lookup uses the index too.
    let r = db
        .query("SELECT * FROM lineitem WHERE l_partkey = 1")
        .unwrap();
    assert_eq!(r.plan, vec!["lineitem: index scan via idx_lp"]);
    // No join condition → cross join.
    let r = db.query("SELECT COUNT(*) FROM part, part p2").unwrap();
    assert_eq!(
        r.plan,
        vec!["part: seq scan", "part: nested-loop cross join"]
    );
}

#[test]
fn cross_join_cardinality() {
    let db = db();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (y INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    db.execute("INSERT INTO b VALUES (10), (20)").unwrap();
    let r = db.query("SELECT COUNT(*) FROM a, b").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(6));
}

#[test]
fn three_way_join() {
    let db = db();
    db.execute("CREATE TABLE c (ck INTEGER, name TEXT)")
        .unwrap();
    db.execute("CREATE TABLE o (ok INTEGER, ck INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE l (ok INTEGER, qty INTEGER)")
        .unwrap();
    db.execute("INSERT INTO c VALUES (1, 'ann'), (2, 'bob')")
        .unwrap();
    db.execute("INSERT INTO o VALUES (10, 1), (11, 2), (12, 1)")
        .unwrap();
    db.execute("INSERT INTO l VALUES (10, 5), (10, 7), (11, 3), (12, 1)")
        .unwrap();
    let r = db
        .query(
            "SELECT c.name, SUM(l.qty) AS total FROM c \
             JOIN o ON c.ck = o.ck JOIN l ON o.ok = l.ok \
             GROUP BY c.name ORDER BY c.name",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::text("ann"));
    assert_eq!(r.rows[0][1], Value::Integer(13)); // 5+7+1
    assert_eq!(r.rows[1][1], Value::Integer(3));
}

#[test]
fn join_with_null_keys_produces_no_matches() {
    let db = db();
    db.execute("CREATE TABLE a (k INTEGER)").unwrap();
    db.execute("CREATE TABLE b (k INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (NULL), (1)").unwrap();
    db.execute("INSERT INTO b VALUES (NULL), (1)").unwrap();
    let r = db
        .query("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1)); // only 1 = 1; NULLs never match
}

#[test]
fn distinct_treats_integral_real_as_equal() {
    let db = db();
    db.execute("CREATE TABLE t (v REAL)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (1.5)").unwrap();
    db.execute("CREATE TABLE u (v INTEGER)").unwrap();
    db.execute("INSERT INTO u VALUES (1)").unwrap();
    let r = db.query("SELECT DISTINCT v FROM t").unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn text_dates_compare_lexicographically() {
    let db = db();
    db.execute("CREATE TABLE t (d DATE)").unwrap();
    db.execute("INSERT INTO t VALUES ('1995-03-17'), ('1992-01-01'), ('1998-08-02')")
        .unwrap();
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE d < '1996-01-01'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
    let r = db.query("SELECT d FROM t ORDER BY d LIMIT 1").unwrap();
    assert_eq!(r.rows[0][0], Value::text("1992-01-01"));
}

#[test]
fn update_with_self_referential_expression() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    // All right-hand sides read the OLD row.
    db.execute("UPDATE t SET a = b, b = a").unwrap();
    let r = db.query("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(r.rows[0], vec![Value::Integer(10), Value::Integer(1)]);
    assert_eq!(r.rows[1], vec![Value::Integer(20), Value::Integer(2)]);
}

#[test]
fn delete_during_snapshot_history_is_isolated() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.declare_snapshot().unwrap();
    db.execute("DELETE FROM t").unwrap();
    db.execute("INSERT INTO t VALUES (9)").unwrap();
    let r = db.query("SELECT AS OF 1 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn insert_select_reads_pre_statement_state() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // Self-referencing INSERT…SELECT must not loop.
    db.execute("INSERT INTO t SELECT a + 10 FROM t").unwrap();
    assert_eq!(db.table_row_count("t").unwrap(), 4);
}

#[test]
fn scalar_expressions_without_from() {
    let db = db();
    let r = db
        .query("SELECT 1 + 2 * 3, 'a' || 'b', abs(-9), NULL IS NULL")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::Integer(7),
            Value::text("ab"),
            Value::Integer(9),
            Value::Integer(1),
        ]
    );
}

#[test]
fn like_and_not_like() {
    let db = db();
    db.execute("CREATE TABLE t (s TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('STANDARD POLISHED TIN'), ('SMALL PLATED BRASS')")
        .unwrap();
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE s LIKE '%POLISHED%'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE s NOT LIKE 'SMALL%'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn count_star_vs_count_distinct_in_groups() {
    let db = db();
    db.execute("CREATE TABLE t (g TEXT, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 1), ('a', 1), ('a', 2), ('b', NULL), ('b', 3)")
        .unwrap();
    let r = db
        .query(
            "SELECT g, COUNT(*), COUNT(v), COUNT(DISTINCT v) FROM t \
             GROUP BY g ORDER BY g",
        )
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::text("a"),
            Value::Integer(3),
            Value::Integer(3),
            Value::Integer(2),
        ]
    );
    assert_eq!(
        r.rows[1],
        vec![
            Value::text("b"),
            Value::Integer(2),
            Value::Integer(1),
            Value::Integer(1),
        ]
    );
}

#[test]
fn case_expressions() {
    let db = db();
    db.execute("CREATE TABLE t (status TEXT, qty INTEGER)")
        .unwrap();
    db.execute("INSERT INTO t VALUES ('O', 10), ('F', 5), ('P', 2), (NULL, 1)")
        .unwrap();
    // Searched CASE.
    let r = db
        .query(
            "SELECT status, CASE WHEN qty >= 10 THEN 'big' WHEN qty >= 5 THEN 'mid' \
             ELSE 'small' END AS size FROM t ORDER BY qty DESC",
        )
        .unwrap();
    let sizes: Vec<&str> = r.rows.iter().map(|x| x[1].as_str().unwrap()).collect();
    assert_eq!(sizes, vec!["big", "mid", "small", "small"]);
    // Simple CASE with operand; NULL operand matches no arm.
    let r = db
        .query(
            "SELECT CASE status WHEN 'O' THEN 'open' WHEN 'F' THEN 'filled' END \
             FROM t ORDER BY qty DESC",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::text("open"));
    assert_eq!(r.rows[1][0], Value::text("filled"));
    assert!(r.rows[2][0].is_null()); // 'P': no arm, no ELSE
    assert!(r.rows[3][0].is_null()); // NULL operand
                                     // CASE inside an aggregate (pivot pattern).
    let r = db
        .query(
            "SELECT SUM(CASE WHEN status = 'O' THEN qty ELSE 0 END), \
             SUM(CASE WHEN status = 'F' THEN qty ELSE 0 END) FROM t",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(10));
    assert_eq!(r.rows[0][1], Value::Integer(5));
    // CASE in WHERE.
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE CASE WHEN qty > 4 THEN 1 ELSE 0 END = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
    // Parse error without arms.
    assert!(db.query("SELECT CASE END").is_err());
}

#[test]
fn explain_reports_access_paths() {
    let db = db();
    db.execute("CREATE TABLE t (k INTEGER)").unwrap();
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(
        db.explain("SELECT * FROM t WHERE k = 1").unwrap(),
        vec!["t: index scan via t_k"]
    );
    assert_eq!(
        db.explain("SELECT * FROM t WHERE k > 0").unwrap(),
        vec!["t: seq scan"]
    );
}

#[test]
fn interleaved_writer_and_sql_inserts_self_heal_fsm() {
    // Regression: Database caches a free-space map per table, while a
    // TableWriter builds its own. Filling pages through the writer used
    // to leave the cached map overestimating free space, making the next
    // SQL INSERT fail with "free-space map out of sync".
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, pad TEXT)").unwrap();
    // Prime the Database-cached map while the table is nearly empty.
    db.execute("INSERT INTO t VALUES (0, 'x')").unwrap();
    // Fill many pages through the writer path (cached map goes stale).
    db.with_table_writer("t", |w| {
        for i in 0..2000 {
            w.insert(vec![
                Value::Integer(i),
                Value::text("pppppppppppppppppppppppppppppppp"),
            ])?;
        }
        Ok(())
    })
    .unwrap();
    // SQL inserts must keep working and land correctly.
    for i in 0..50 {
        db.execute(&format!("INSERT INTO t VALUES ({}, 'sql')", 10_000 + i))
            .unwrap();
    }
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE pad = 'sql'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(50));
    assert_eq!(db.table_row_count("t").unwrap(), 2051);
}

#[test]
fn select_star_order_is_stable_under_join_reordering() {
    // The planner moves indexed tables to the inner join side; SELECT *
    // column order must stay the written FROM order regardless.
    let db = db();
    db.execute("CREATE TABLE a (x INTEGER, xa TEXT)").unwrap();
    db.execute("CREATE TABLE b (y INTEGER, yb TEXT)").unwrap();
    db.execute("INSERT INTO a VALUES (1, 'A')").unwrap();
    db.execute("INSERT INTO b VALUES (1, 'B')").unwrap();
    let before = db.query("SELECT * FROM a, b WHERE x = y").unwrap();
    assert_eq!(before.columns, vec!["x", "xa", "y", "yb"]);
    // Index on `a.x` makes `a` the probed (inner) side…
    db.execute("CREATE INDEX a_x ON a (x)").unwrap();
    let after = db.query("SELECT * FROM a, b WHERE x = y").unwrap();
    assert_eq!(
        after.plan,
        vec!["b: seq scan", "a: index nested loop via a_x"]
    );
    // …but the projected columns and values are identical.
    assert_eq!(after.columns, before.columns);
    assert_eq!(after.rows, before.rows);
}
