//! A Mutex + Condvar frame channel for push subscriptions.
//!
//! `std::sync::mpsc` would do the job functionally, but its crossbeam
//! lineage synchronizes with `SeqCst` fences, which ThreadSanitizer
//! does not model — every cross-thread hand-off through it reports as a
//! race, keeping the TSan CI lane permanently unclean. This queue uses
//! only lock/condvar synchronization (fully TSan-modelable), so the
//! standing-query concurrency suite runs clean and the lane can block.
//!
//! Semantics match what the engine needs from a channel: unbounded
//! (sends never block the committing thread), single producer, single
//! consumer, with disconnect detection on both ends.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::PushFrame;

struct State {
    frames: VecDeque<PushFrame>,
    sender_gone: bool,
    receiver_gone: bool,
}

struct Inner {
    state: Mutex<State>,
    ready: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Producer half; held by the engine's subscriber list. Dropping it
/// wakes a blocked receiver with "disconnected".
pub struct FrameSender(Arc<Inner>);

/// Consumer half; owned by the [`Subscription`](crate::Subscription).
pub struct FrameReceiver(Arc<Inner>);

/// Why [`FrameReceiver::try_recv`] returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No frame queued right now; the sender is still live.
    Empty,
    /// The sender is gone and the queue is drained; no frame will come.
    Disconnected,
}

/// An unbounded single-producer single-consumer frame queue.
pub fn channel() -> (FrameSender, FrameReceiver) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            frames: VecDeque::new(),
            sender_gone: false,
            receiver_gone: false,
        }),
        ready: Condvar::new(),
    });
    (FrameSender(Arc::clone(&inner)), FrameReceiver(inner))
}

impl FrameSender {
    /// Queue `frame`; never blocks. `false` when the receiver is gone
    /// (the caller prunes the subscription).
    pub fn send(&self, frame: PushFrame) -> bool {
        let mut state = self.0.lock();
        if state.receiver_gone {
            return false;
        }
        state.frames.push_back(frame);
        drop(state);
        self.0.ready.notify_one();
        true
    }
}

impl Drop for FrameSender {
    fn drop(&mut self) {
        self.0.lock().sender_gone = true;
        self.0.ready.notify_one();
    }
}

impl FrameReceiver {
    /// Block until a frame arrives; `None` once the sender is gone and
    /// every queued frame has been taken.
    pub fn recv(&self) -> Option<PushFrame> {
        let mut state = self.0.lock();
        loop {
            if let Some(frame) = state.frames.pop_front() {
                return Some(frame);
            }
            if state.sender_gone {
                return None;
            }
            state = self
                .0
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<PushFrame, TryRecvError> {
        let mut state = self.0.lock();
        match state.frames.pop_front() {
            Some(frame) => Ok(frame),
            None if state.sender_gone => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator over frames; ends when the sender disconnects.
    pub fn iter(&self) -> impl Iterator<Item = PushFrame> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

impl Drop for FrameReceiver {
    fn drop(&mut self) {
        self.0.lock().receiver_gone = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EndReason;

    #[test]
    fn frames_arrive_in_order_and_disconnect_is_reported() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert!(tx.send(PushFrame::End(EndReason::Drained)));
        match rx.try_recv().unwrap() {
            PushFrame::End(r) => assert_eq!(r, EndReason::Drained),
            other => panic!("unexpected {other:?}"),
        }
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn send_fails_once_receiver_dropped() {
        let (tx, rx) = channel();
        drop(rx);
        assert!(!tx.send(PushFrame::End(EndReason::Drained)));
    }

    #[test]
    fn blocking_recv_wakes_on_send_across_threads() {
        let (tx, rx) = channel();
        let handle = std::thread::spawn(move || rx.iter().count());
        for _ in 0..3 {
            assert!(tx.send(PushFrame::End(EndReason::Drained)));
        }
        drop(tx);
        assert_eq!(handle.join().unwrap(), 3);
    }
}
