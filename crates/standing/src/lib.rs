//! The standing-query engine: a registry of live [`Maintainer`]s wired
//! to the store's commit notifications, with push subscriptions.
//!
//! `MAINTAIN QUERY name AS <mechanism call>` registers a retrospective
//! computation whose result table outlives the batch pass. The engine
//! hosts one [`Maintainer`] per registered query; on every snapshot
//! declaration (via [`rql_retro::RetroStore::add_snapshot_hook`]) it
//! folds the new snapshot into each maintained table and pushes the
//! resulting [`ResultDelta`] to every subscriber.
//!
//! Threading model: maintenance runs *synchronously on the committing
//! thread*, one query at a time — the maintained tables are therefore
//! always consistent with the latest declared snapshot by the time the
//! committing statement returns. Pushes never block the commit: frames
//! go through unbounded [`frame_queue`] channels (Mutex + Condvar, so
//! the path is ThreadSanitizer-modelable — see that module) and a slow
//! or gone subscriber only drops its own channel (the sender notices on
//! the next push and prunes it). `rqld` gives each subscription a
//! writer thread that drains the channel onto the socket.
//!
//! Lifecycle frames: a subscriber sees zero or more
//! [`PushFrame::Delta`]s followed by at most one [`PushFrame::End`] —
//! when its query is unregistered or the server drains. After `End` the
//! channel is closed; a plain disconnect without `End` means the
//! process died, not that the query ended.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

pub mod frame_queue;

use frame_queue::{FrameReceiver, FrameSender};

use rql::maintain::{parse_maintain, MaintainStats, Maintainer, ResultDelta};
use rql::{QueryResult, Result, RqlSession, SqlError};
use rql_retro::RetroStore;
use rql_trace::LatencyHistogram;

/// One message on a subscription channel.
#[derive(Debug, Clone)]
pub enum PushFrame {
    /// A per-snapshot result-table change.
    Delta(ResultDelta),
    /// The subscription ended; no more frames follow.
    End(EndReason),
}

/// Why a subscription ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// The standing query was unregistered.
    Unregistered,
    /// The server is shutting down gracefully.
    Drained,
}

impl EndReason {
    /// Stable lower-case name (used on the wire and in logs).
    pub fn as_str(self) -> &'static str {
        match self {
            EndReason::Unregistered => "unregistered",
            EndReason::Drained => "drained",
        }
    }
}

/// A live subscription: the full result as of subscription time, then a
/// stream of per-snapshot deltas.
pub struct Subscription {
    /// Current maintained table contents at subscription time. Applying
    /// the frame stream to this reproduces the table at any later point.
    pub initial: QueryResult,
    /// Per-snapshot frames, in commit order.
    pub frames: FrameReceiver,
}

/// What registration did (surfaced to the client).
#[derive(Debug, Clone)]
pub struct RegisterOutcome {
    /// The registered query name.
    pub name: String,
    /// The maintained result table.
    pub table: String,
    /// Snapshots folded by the seeding batch pass.
    pub snapshots_seeded: u64,
}

/// Point-in-time status of one registered query (for `METRICS`).
#[derive(Debug, Clone)]
pub struct QueryStatus {
    /// Registered name.
    pub name: String,
    /// Maintained result table.
    pub table: String,
    /// Mechanism backing the query (e.g. `CollateData`).
    pub mechanism: &'static str,
    /// Live subscriber count.
    pub subscribers: u64,
    /// Maintenance counters.
    pub stats: MaintainStats,
    /// Maintenance passes that failed (the query stays registered; the
    /// snapshot is retried never — gaps surface here).
    pub maintain_errors: u64,
    /// Push-latency histogram observations (one per subscriber frame).
    pub push_count: u64,
    /// Mean push latency in microseconds.
    pub push_mean_micros: u64,
    /// p99 push latency in microseconds.
    pub push_p99_micros: u64,
}

struct Registered {
    maintainer: Mutex<Maintainer>,
    subscribers: Mutex<Vec<FrameSender>>,
    maintain_errors: AtomicU64,
    /// Hook-entry → frame-handed-to-channel latency, per subscriber push.
    push_latency: LatencyHistogram,
}

impl Registered {
    /// Push one frame to every live subscriber, pruning gone ones.
    fn push(&self, frame: &PushFrame, since: Option<Instant>) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| {
            let ok = tx.send(frame.clone());
            if ok {
                if let Some(t0) = since {
                    self.push_latency.record(t0.elapsed());
                }
                if let PushFrame::Delta(d) = frame {
                    rql_trace::instant_arg(
                        rql_trace::SpanId::StandingPush,
                        (d.added.len() + d.removed.len()) as u64,
                    );
                }
            }
            ok
        });
    }
}

/// The registry of standing queries. One per server (or embedded host);
/// wire it to a store with [`StandingEngine::attach`].
#[derive(Default)]
pub struct StandingEngine {
    queries: RwLock<BTreeMap<String, Arc<Registered>>>,
}

impl StandingEngine {
    /// Fresh empty engine.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Subscribe this engine to `store`'s snapshot declarations. The
    /// hook holds only a weak reference, so dropping the engine (and
    /// every subscription with it) does not require detaching.
    pub fn attach(self: &Arc<Self>, store: &RetroStore) {
        let weak: Weak<StandingEngine> = Arc::downgrade(self);
        store.add_snapshot_hook(Arc::new(move |sid| {
            if let Some(engine) = weak.upgrade() {
                engine.on_snapshot(sid);
            }
        }));
    }

    /// Register the standing query `text` declares (`MAINTAIN QUERY name
    /// AS …`): validate, seed the result table from the backlog, and
    /// start maintaining it on every subsequent commit.
    ///
    /// Registration holds the registry's write lock across the seeding
    /// pass, so concurrent commits observe either "not registered" or
    /// "seeded and maintained" — never a half-seeded table.
    pub fn register(&self, session: &RqlSession, text: &str) -> Result<RegisterOutcome> {
        let spec = parse_maintain(text)?.ok_or_else(|| {
            SqlError::Invalid("REGISTER expects a MAINTAIN QUERY statement".into())
        })?;
        let name = spec.name.clone();
        let mut queries = self.queries.write();
        if queries.contains_key(&name) {
            return Err(SqlError::Constraint(format!(
                "standing query {name} is already registered"
            )));
        }
        let (maintainer, report) = Maintainer::register(session, spec)?;
        let outcome = RegisterOutcome {
            name: name.clone(),
            table: maintainer.spec().table.clone(),
            snapshots_seeded: report.iterations.len() as u64,
        };
        queries.insert(
            name,
            Arc::new(Registered {
                maintainer: Mutex::new(maintainer),
                subscribers: Mutex::new(Vec::new()),
                maintain_errors: AtomicU64::new(0),
                push_latency: LatencyHistogram::default(),
            }),
        );
        Ok(outcome)
    }

    /// Unregister `name`. Subscribers get a terminal
    /// [`PushFrame::End`]`(Unregistered)`; the result table is left in
    /// the auxiliary database as-is. Returns whether the query existed.
    pub fn unregister(&self, name: &str) -> bool {
        let Some(reg) = self.queries.write().remove(name) else {
            return false;
        };
        reg.push(&PushFrame::End(EndReason::Unregistered), None);
        reg.subscribers.lock().clear();
        true
    }

    /// Subscribe to `name`: the current full result plus the frame
    /// stream. `None` when no such query is registered.
    ///
    /// The initial result and the stream position are consistent: the
    /// maintainer lock is held while the table is read and the channel
    /// installed, so every delta after `initial` arrives on the channel
    /// and none is duplicated inside `initial`.
    pub fn subscribe(&self, name: &str) -> Option<Result<Subscription>> {
        let reg = self.queries.read().get(name).cloned()?;
        let maintainer = reg.maintainer.lock();
        let initial = match maintainer.current_result() {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        let (tx, rx) = frame_queue::channel();
        reg.subscribers.lock().push(tx);
        drop(maintainer);
        Some(Ok(Subscription {
            initial,
            frames: rx,
        }))
    }

    /// The snapshot hook body: fold `sid` into every registered query's
    /// result table and push the deltas. Public so embedded hosts and
    /// tests can drive maintenance without a store hook.
    pub fn on_snapshot(&self, sid: u64) {
        let regs: Vec<Arc<Registered>> = self.queries.read().values().cloned().collect();
        for reg in regs {
            let t0 = Instant::now();
            // The maintainer lock must span advance *and* push: released
            // in between, a subscriber could read a table that already
            // contains `sid` yet still receive `sid`'s delta frame —
            // applying it twice. (Lock order maintainer → subscribers,
            // same as `subscribe`.)
            let mut maintainer = reg.maintainer.lock();
            match maintainer.advance(sid) {
                Ok(delta) => reg.push(&PushFrame::Delta(delta), Some(t0)),
                Err(_) => {
                    reg.maintain_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Graceful drain: every subscriber of every query gets a terminal
    /// [`PushFrame::End`]`(Drained)` and its channel is closed. Queries
    /// stay registered (a restarting server re-seeds from the tables).
    pub fn drain(&self) {
        for reg in self.queries.read().values() {
            reg.push(&PushFrame::End(EndReason::Drained), None);
            reg.subscribers.lock().clear();
        }
    }

    /// Status of every registered query, in name order (for `METRICS`).
    pub fn statuses(&self) -> Vec<QueryStatus> {
        self.queries
            .read()
            .iter()
            .map(|(name, reg)| {
                let maintainer = reg.maintainer.lock();
                QueryStatus {
                    name: name.clone(),
                    table: maintainer.spec().table.clone(),
                    mechanism: maintainer.spec().kind.udf_name(),
                    subscribers: reg.subscribers.lock().len() as u64,
                    stats: maintainer.stats(),
                    maintain_errors: reg.maintain_errors.load(Ordering::Relaxed),
                    push_count: reg.push_latency.count(),
                    push_mean_micros: reg.push_latency.mean_micros(),
                    push_p99_micros: reg.push_latency.quantile_micros(0.99),
                }
            })
            .collect()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.read().len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Arc<RqlSession> {
        let s = RqlSession::with_defaults().unwrap();
        s.execute("CREATE TABLE t (k INTEGER, v INTEGER)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        s.declare_snapshot(None).unwrap();
        s
    }

    const REG: &str =
        "MAINTAIN QUERY watch AS SELECT CollateData(snap_id, 'SELECT k, v FROM t', 'Watched') \
         FROM SnapIds";

    #[test]
    fn register_subscribe_push_unregister() {
        let s = session();
        let engine = StandingEngine::new();
        engine.attach(s.snap_db().store());
        let out = engine.register(&s, REG).unwrap();
        assert_eq!(out.name, "watch");
        assert_eq!(out.table, "Watched");
        assert_eq!(out.snapshots_seeded, 1);

        let sub = engine.subscribe("watch").unwrap().unwrap();
        assert_eq!(sub.initial.rows.len(), 1);

        s.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        s.declare_snapshot(None).unwrap();
        match sub.frames.try_recv().unwrap() {
            PushFrame::Delta(d) => assert_eq!(d.added.len(), 2),
            other => panic!("expected delta, got {other:?}"),
        }

        assert!(engine.unregister("watch"));
        match sub.frames.try_recv().unwrap() {
            PushFrame::End(r) => assert_eq!(r, EndReason::Unregistered),
            other => panic!("expected end, got {other:?}"),
        }
        assert!(sub.frames.try_recv().is_err(), "channel closed after End");
        assert!(!engine.unregister("watch"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let s = session();
        let engine = StandingEngine::new();
        engine.register(&s, REG).unwrap();
        let err = engine.register(&s, REG).unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
    }

    #[test]
    fn drain_sends_terminal_frame_and_keeps_query() {
        let s = session();
        let engine = StandingEngine::new();
        engine.attach(s.snap_db().store());
        engine.register(&s, REG).unwrap();
        let sub = engine.subscribe("watch").unwrap().unwrap();
        engine.drain();
        match sub.frames.try_recv().unwrap() {
            PushFrame::End(r) => assert_eq!(r, EndReason::Drained),
            other => panic!("expected end, got {other:?}"),
        }
        assert_eq!(engine.len(), 1, "drain keeps queries registered");
        // Maintenance continues for later subscribers.
        s.declare_snapshot(None).unwrap();
        let statuses = engine.statuses();
        assert_eq!(statuses[0].stats.snapshots_maintained, 1);
    }

    #[test]
    fn statuses_expose_counters() {
        let s = session();
        let engine = StandingEngine::new();
        engine.attach(s.snap_db().store());
        engine.register(&s, REG).unwrap();
        let _sub = engine.subscribe("watch").unwrap().unwrap();
        s.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        s.declare_snapshot(None).unwrap();
        let st = &engine.statuses()[0];
        assert_eq!(st.name, "watch");
        assert_eq!(st.mechanism, "collatedata");
        assert_eq!(st.subscribers, 1);
        assert_eq!(st.stats.snapshots_seeded, 1);
        assert_eq!(st.stats.snapshots_maintained, 1);
        assert_eq!(st.maintain_errors, 0);
        assert_eq!(st.push_count, 1);
    }
}
