//! Row generators for the eight TPC-H tables at a configurable scale
//! factor.
//!
//! The paper evaluates on "a TPC-H database … the initial state of the
//! database with size of 1.4 GB (the default size)" — scale factor 1.
//! This generator keeps dbgen's schema, vocabularies and cardinality
//! ratios while letting the reproduction run at laptop scale; rows are
//! derived from per-key seeded PRNGs, so the same `(sf, key)` always
//! produces the same row, including for refresh-generated orders.

use rand::Rng;

use rql_sqlengine::{Row, Value};

use crate::text;

/// Table tags for per-row rng seeding.
const TAG_PART: u64 = 1;
const TAG_SUPPLIER: u64 = 2;
const TAG_PARTSUPP: u64 = 3;
const TAG_CUSTOMER: u64 = 4;
const TAG_ORDERS: u64 = 5;
const TAG_LINEITEM: u64 = 6;

/// TPC-H generator at a given scale factor.
#[derive(Debug, Clone, Copy)]
pub struct Tpch {
    sf: f64,
}

impl Tpch {
    /// Generator at scale factor `sf` (1.0 = the paper's 1.4 GB).
    pub fn new(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        Tpch { sf }
    }

    /// The scale factor.
    pub fn sf(&self) -> f64 {
        self.sf
    }

    fn scaled(&self, base: u64) -> i64 {
        ((base as f64 * self.sf).round() as i64).max(1)
    }

    /// Number of parts.
    pub fn part_count(&self) -> i64 {
        self.scaled(200_000)
    }

    /// Number of suppliers.
    pub fn supplier_count(&self) -> i64 {
        self.scaled(10_000)
    }

    /// Number of customers.
    ///
    /// dbgen's ratio is 150K per SF, but the paper's §5.3 reports Qq_agg
    /// (GROUP BY o_custkey over 1.5M orders) returning "approximately 1M
    /// of records for every snapshot" — an effective ~1.5 orders per
    /// customer. The group-churn rate that drives Figures 11–13 and the
    /// memory experiment follows from that ratio, so the generator is
    /// calibrated to the paper's measured output size (documented in
    /// DESIGN.md).
    pub fn customer_count(&self) -> i64 {
        self.scaled(1_000_000)
    }

    /// Number of orders in the initial load.
    pub fn orders_count(&self) -> i64 {
        self.scaled(1_500_000)
    }

    /// One region row.
    pub fn region_row(&self, key: i64) -> Row {
        let mut rng = text::row_rng(7, key);
        vec![
            Value::Integer(key),
            Value::text(text::REGIONS[key as usize % 5]),
            Value::text(text::comment(&mut rng, 60)),
        ]
    }

    /// One nation row.
    pub fn nation_row(&self, key: i64) -> Row {
        let (name, region) = text::NATIONS[key as usize % 25];
        let mut rng = text::row_rng(8, key);
        vec![
            Value::Integer(key),
            Value::text(name),
            Value::Integer(region),
            Value::text(text::comment(&mut rng, 60)),
        ]
    }

    /// One part row (keys are 1-based, as in dbgen).
    pub fn part_row(&self, key: i64) -> Row {
        let mut rng = text::row_rng(TAG_PART, key);
        let name = format!(
            "{} {} {}",
            text::pick(
                &mut rng,
                &["almond", "antique", "aquamarine", "azure", "beige"]
            ),
            text::pick(&mut rng, &["lace", "linen", "metallic", "misty", "pale"]),
            text::pick(&mut rng, &["rose", "salmon", "seashell", "sienna", "sky"]),
        );
        vec![
            Value::Integer(key),
            Value::text(name),
            Value::text(format!("Manufacturer#{}", rng.random_range(1..=5))),
            Value::text(format!(
                "Brand#{}{}",
                rng.random_range(1..=5),
                rng.random_range(1..=5)
            )),
            Value::text(text::part_type(&mut rng)),
            Value::Integer(rng.random_range(1..=50)),
            Value::text(text::container(&mut rng)),
            Value::Real(900.0 + (key % 1000) as f64 / 10.0),
            Value::text(text::comment(&mut rng, 23)),
        ]
    }

    /// One supplier row.
    pub fn supplier_row(&self, key: i64) -> Row {
        let mut rng = text::row_rng(TAG_SUPPLIER, key);
        let nation = rng.random_range(0..25i64);
        vec![
            Value::Integer(key),
            Value::text(format!("Supplier#{key:09}")),
            Value::text(text::comment(&mut rng, 20)),
            Value::Integer(nation),
            Value::text(text::phone(&mut rng, nation)),
            Value::Real(rng.random_range(-999.99..9999.99)),
            Value::text(text::comment(&mut rng, 60)),
        ]
    }

    /// Partsupp rows for one part (4 suppliers per part, dbgen's ratio).
    pub fn partsupp_rows(&self, partkey: i64) -> Vec<Row> {
        let suppliers = self.supplier_count();
        (0..4)
            .map(|i| {
                let mut rng = text::row_rng(TAG_PARTSUPP, partkey * 4 + i);
                let suppkey = (partkey + i * (suppliers / 4).max(1)) % suppliers + 1;
                vec![
                    Value::Integer(partkey),
                    Value::Integer(suppkey),
                    Value::Integer(rng.random_range(1..=9999)),
                    Value::Real(rng.random_range(1.0..1000.0)),
                    Value::text(text::comment(&mut rng, 40)),
                ]
            })
            .collect()
    }

    /// One customer row.
    pub fn customer_row(&self, key: i64) -> Row {
        let mut rng = text::row_rng(TAG_CUSTOMER, key);
        let nation = rng.random_range(0..25i64);
        vec![
            Value::Integer(key),
            Value::text(format!("Customer#{key:09}")),
            Value::text(text::comment(&mut rng, 20)),
            Value::Integer(nation),
            Value::text(text::phone(&mut rng, nation)),
            Value::Real(rng.random_range(-999.99..9999.99)),
            Value::text(text::pick(&mut rng, &text::SEGMENTS)),
            Value::text(text::comment(&mut rng, 60)),
        ]
    }

    /// One order row. Later keys get later dates, so refresh-inserted
    /// orders are recent — matching the refresh functions' behaviour.
    pub fn order_row(&self, key: i64) -> Row {
        let mut rng = text::row_rng(TAG_ORDERS, key);
        let custkey = rng.random_range(1..=self.customer_count());
        // Two thirds of dbgen's date window for the initial load; refresh
        // keys keep advancing linearly past it (a live system's clock),
        // so date predicates keep discriminating over long histories.
        let day = (key as f64 / self.orders_count() as f64 * 0.66 * 2405.0) as i64;
        let status = if day as f64 > 0.55 * 2405.0 {
            "O"
        } else if rng.random_bool(0.03) {
            "P"
        } else {
            "F"
        };
        vec![
            Value::Integer(key),
            Value::Integer(custkey),
            Value::text(status),
            Value::Real(rng.random_range(850.0..500_000.0)),
            Value::text(text::date_from_day(day)),
            Value::text(text::pick(&mut rng, &text::PRIORITIES)),
            Value::text(format!("Clerk#{:09}", rng.random_range(1..=1000))),
            Value::Integer(0),
            Value::text(text::comment(&mut rng, 48)),
        ]
    }

    /// Lineitem rows for one order (1–7, as in dbgen).
    pub fn lineitem_rows(&self, orderkey: i64) -> Vec<Row> {
        let mut order_rng = text::row_rng(TAG_LINEITEM, orderkey);
        let count = order_rng.random_range(1..=7);
        (1..=count)
            .map(|line| {
                let mut rng = text::row_rng(TAG_LINEITEM, orderkey * 8 + line);
                let partkey = rng.random_range(1..=self.part_count());
                let suppkey = rng.random_range(1..=self.supplier_count());
                let quantity = rng.random_range(1..=50i64);
                let price = quantity as f64 * rng.random_range(900.0..1100.0);
                vec![
                    Value::Integer(orderkey),
                    Value::Integer(partkey),
                    Value::Integer(suppkey),
                    Value::Integer(line),
                    Value::Integer(quantity),
                    Value::Real((price * 100.0).round() / 100.0),
                    Value::Real(rng.random_range(0..=10) as f64 / 100.0),
                    Value::Real(rng.random_range(0..=8) as f64 / 100.0),
                    Value::text(text::pick(&mut rng, &["R", "A", "N"])),
                    Value::text(text::pick(&mut rng, &["O", "F"])),
                    Value::text(text::order_date(rng.random_range(0.0..1.0))),
                    Value::text(text::pick(&mut rng, &text::INSTRUCTIONS)),
                    Value::text(text::pick(&mut rng, &text::MODES)),
                    Value::text(text::comment(&mut rng, 26)),
                ]
            })
            .collect()
    }
}

/// DDL for the TPC-H schema (subset of columns where dbgen has more; the
/// experiments only touch these).
pub const SCHEMA: &[(&str, &str)] = &[
    (
        "region",
        "CREATE TABLE region (r_regionkey INTEGER, r_name TEXT, r_comment TEXT)",
    ),
    (
        "nation",
        "CREATE TABLE nation (n_nationkey INTEGER, n_name TEXT, n_regionkey INTEGER, \
         n_comment TEXT)",
    ),
    (
        "part",
        "CREATE TABLE part (p_partkey INTEGER, p_name TEXT, p_mfgr TEXT, p_brand TEXT, \
         p_type TEXT, p_size INTEGER, p_container TEXT, p_retailprice REAL, p_comment TEXT)",
    ),
    (
        "supplier",
        "CREATE TABLE supplier (s_suppkey INTEGER, s_name TEXT, s_address TEXT, \
         s_nationkey INTEGER, s_phone TEXT, s_acctbal REAL, s_comment TEXT)",
    ),
    (
        "partsupp",
        "CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, \
         ps_availqty INTEGER, ps_supplycost REAL, ps_comment TEXT)",
    ),
    (
        "customer",
        "CREATE TABLE customer (c_custkey INTEGER, c_name TEXT, c_address TEXT, \
         c_nationkey INTEGER, c_phone TEXT, c_acctbal REAL, c_mktsegment TEXT, \
         c_comment TEXT)",
    ),
    (
        "orders",
        "CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, o_orderstatus TEXT, \
         o_totalprice REAL, o_orderdate TEXT, o_orderpriority TEXT, o_clerk TEXT, \
         o_shippriority INTEGER, o_comment TEXT)",
    ),
    (
        "lineitem",
        "CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER, \
         l_linenumber INTEGER, l_quantity INTEGER, l_extendedprice REAL, l_discount REAL, \
         l_tax REAL, l_returnflag TEXT, l_linestatus TEXT, l_shipdate TEXT, \
         l_shipinstruct TEXT, l_shipmode TEXT, l_comment TEXT)",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let t = Tpch::new(0.01);
        assert_eq!(t.part_count(), 2000);
        assert_eq!(t.orders_count(), 15_000);
        assert_eq!(t.customer_count(), 10_000);
        // Minimum of one row even at tiny scale.
        assert!(Tpch::new(0.000001).supplier_count() >= 1);
    }

    #[test]
    fn rows_are_deterministic() {
        let t = Tpch::new(0.01);
        assert_eq!(t.order_row(5), t.order_row(5));
        assert_eq!(t.part_row(17), t.part_row(17));
        assert_eq!(t.lineitem_rows(9), t.lineitem_rows(9));
        assert_ne!(t.order_row(5), t.order_row(6));
    }

    #[test]
    fn order_dates_increase_with_key() {
        let t = Tpch::new(0.01);
        let early = t.order_row(1)[4].as_str().unwrap().to_owned();
        let late = t.order_row(t.orders_count())[4]
            .as_str()
            .unwrap()
            .to_owned();
        assert!(early < late);
    }

    #[test]
    fn recent_orders_are_open() {
        let t = Tpch::new(0.001);
        let n = t.orders_count();
        let status = t.order_row(n)[2].clone();
        assert_eq!(status, Value::text("O"));
    }

    #[test]
    fn lineitems_reference_valid_keys() {
        let t = Tpch::new(0.01);
        for ok in [1, 50, 999] {
            let lines = t.lineitem_rows(ok);
            assert!((1..=7).contains(&lines.len()));
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(line[0], Value::Integer(ok));
                assert_eq!(line[3], Value::Integer(i as i64 + 1));
                let pk = line[1].as_i64().unwrap();
                assert!(pk >= 1 && pk <= t.part_count());
            }
        }
    }

    #[test]
    fn partsupp_four_per_part() {
        let t = Tpch::new(0.01);
        let rows = t.partsupp_rows(3);
        assert_eq!(rows.len(), 4);
        let mut supps: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        supps.dedup();
        assert_eq!(supps.len(), 4, "distinct suppliers per part");
    }

    #[test]
    fn schema_has_all_eight_tables() {
        assert_eq!(SCHEMA.len(), 8);
        let names: Vec<&str> = SCHEMA.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"orders"));
        assert!(names.contains(&"lineitem"));
    }
}
