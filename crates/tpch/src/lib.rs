//! # rql-tpch
//!
//! Deterministic TPC-H-like workload substrate for the RQL reproduction:
//! a `dbgen`-analog generator ([`gen::Tpch`]) for all eight tables at a
//! configurable scale factor, the RF1/RF2 refresh functions
//! ([`refresh::RefreshStream`]), and the paper's update workloads
//! UW7.5/UW15/UW30/UW60 ([`workload`]) that churn a constant order
//! volume between consecutive snapshot declarations and drive the
//! snapshot histories every experiment runs on.

#![warn(missing_docs)]

pub mod gen;
pub mod load;
pub mod refresh;
pub mod text;
pub mod workload;

pub use gen::{Tpch, SCHEMA};
pub use load::{create_native_indexes, create_schema, load_initial};
pub use refresh::RefreshStream;
pub use workload::{build_history, SnapshotHistory, UpdateWorkload, UW15, UW30, UW60, UW7_5};
