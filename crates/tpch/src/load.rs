//! Bulk loading the TPC-H schema and initial state into a database.

use rql_sqlengine::{Database, Result};

use crate::gen::{Tpch, SCHEMA};

/// Create the eight TPC-H tables.
pub fn create_schema(db: &Database) -> Result<()> {
    for (_, ddl) in SCHEMA {
        db.execute(ddl)?;
    }
    Ok(())
}

/// Load the initial database state for `tpch`'s scale factor.
///
/// The paper loads "without additional indices" (§5); pass the index DDL
/// separately via [`create_native_indexes`] when an experiment wants the
/// "w/ index" configuration.
pub fn load_initial(db: &Database, tpch: &Tpch) -> Result<()> {
    create_schema(db)?;
    db.with_table_writer("region", |w| {
        for key in 0..5 {
            w.insert(tpch.region_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("nation", |w| {
        for key in 0..25 {
            w.insert(tpch.nation_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("part", |w| {
        for key in 1..=tpch.part_count() {
            w.insert(tpch.part_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("supplier", |w| {
        for key in 1..=tpch.supplier_count() {
            w.insert(tpch.supplier_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("partsupp", |w| {
        for key in 1..=tpch.part_count() {
            for row in tpch.partsupp_rows(key) {
                w.insert(row)?;
            }
        }
        Ok(())
    })?;
    db.with_table_writer("customer", |w| {
        for key in 1..=tpch.customer_count() {
            w.insert(tpch.customer_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("orders", |w| {
        for key in 1..=tpch.orders_count() {
            w.insert(tpch.order_row(key))?;
        }
        Ok(())
    })?;
    db.with_table_writer("lineitem", |w| {
        for key in 1..=tpch.orders_count() {
            for row in tpch.lineitem_rows(key) {
                w.insert(row)?;
            }
        }
        Ok(())
    })?;
    Ok(())
}

/// The native indexes used by the "w/ index" experiment configurations
/// (Figure 9) and by the refresh functions' delete path.
pub fn create_native_indexes(db: &Database) -> Result<()> {
    db.execute("CREATE INDEX idx_orders_okey ON orders (o_orderkey)")?;
    db.execute("CREATE INDEX idx_lineitem_okey ON lineitem (l_orderkey)")?;
    db.execute("CREATE INDEX idx_lineitem_pkey ON lineitem (l_partkey)")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::Value;

    #[test]
    fn tiny_load_is_consistent() {
        let db = Database::default_in_memory();
        let tpch = Tpch::new(0.0005); // 750 orders
        load_initial(&db, &tpch).unwrap();
        assert_eq!(
            db.table_row_count("orders").unwrap(),
            tpch.orders_count() as u64
        );
        assert_eq!(db.table_row_count("region").unwrap(), 5);
        assert_eq!(db.table_row_count("nation").unwrap(), 25);
        let lineitems = db.table_row_count("lineitem").unwrap();
        let orders = tpch.orders_count() as u64;
        assert!(lineitems >= orders && lineitems <= orders * 7);
        // Every lineitem joins to an order.
        let r = db
            .query(
                "SELECT COUNT(*) FROM lineitem l JOIN orders o \
                 ON l.l_orderkey = o.o_orderkey",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(lineitems as i64));
    }

    #[test]
    fn indexes_created_and_used() {
        let db = Database::default_in_memory();
        let tpch = Tpch::new(0.0005);
        load_initial(&db, &tpch).unwrap();
        create_native_indexes(&db).unwrap();
        let r = db
            .query("SELECT COUNT(*) FROM lineitem WHERE l_orderkey = 10")
            .unwrap();
        let n = r.rows[0][0].as_i64().unwrap();
        assert!((1..=7).contains(&n));
    }
}
