//! TPC-H refresh functions RF1 (new sales) and RF2 (old sales removal).
//!
//! "We utilize the TPC-H refresh functions which produce a set of order
//! identifiers for deletion and a set of order records along with
//! Lineitem records associated with the orders for insertion" (paper
//! §5). The stream is stateful: RF1 inserts orders with fresh keys past
//! the loaded range; RF2 deletes the oldest surviving keys.

use rql_sqlengine::{Database, Result, Row, SqlError};

use crate::gen::Tpch;

/// Stateful refresh stream over one database.
#[derive(Debug)]
pub struct RefreshStream {
    tpch: Tpch,
    /// Next order key RF1 will insert.
    next_insert: i64,
    /// Next (oldest surviving) order key RF2 will delete.
    next_delete: i64,
}

impl RefreshStream {
    /// Stream for a freshly loaded database.
    pub fn new(tpch: Tpch) -> Self {
        RefreshStream {
            tpch,
            next_insert: tpch.orders_count() + 1,
            next_delete: 1,
        }
    }

    /// The generator.
    pub fn tpch(&self) -> &Tpch {
        &self.tpch
    }

    /// Keys the next RF2 of size `n` would delete.
    pub fn pending_deletes(&self, n: i64) -> std::ops::Range<i64> {
        self.next_delete..(self.next_delete + n).min(self.next_insert)
    }

    /// RF1: insert `n` new orders and their lineitems. Returns the rows
    /// inserted as `(orders, lineitems)` counts.
    pub fn rf1(&mut self, db: &Database, n: i64) -> Result<(u64, u64)> {
        let start = self.next_insert;
        let end = start + n;
        let mut order_rows: Vec<Row> = Vec::with_capacity(n as usize);
        let mut line_rows: Vec<Row> = Vec::new();
        for key in start..end {
            order_rows.push(self.tpch.order_row(key));
            line_rows.extend(self.tpch.lineitem_rows(key));
        }
        let orders = order_rows.len() as u64;
        let lines = line_rows.len() as u64;
        db.with_table_writer("orders", |w| {
            for row in order_rows {
                w.insert(row)?;
            }
            Ok(())
        })?;
        db.with_table_writer("lineitem", |w| {
            for row in line_rows {
                w.insert(row)?;
            }
            Ok(())
        })?;
        self.next_insert = end;
        Ok((orders, lines))
    }

    /// RF2: delete the `n` oldest surviving orders and their lineitems.
    pub fn rf2(&mut self, db: &Database, n: i64) -> Result<(u64, u64)> {
        let range = self.pending_deletes(n);
        if range.is_empty() {
            return Err(SqlError::Invalid(
                "refresh stream exhausted: nothing left to delete".into(),
            ));
        }
        let (start, end) = (range.start, range.end);
        let orders = delete_where_key_in(db, "orders", "o_orderkey", start, end)?;
        let lines = delete_where_key_in(db, "lineitem", "l_orderkey", start, end)?;
        self.next_delete = end;
        Ok((orders, lines))
    }

    /// One refresh pair (RF2 then RF1) of `n` orders — the paper's
    /// between-snapshots update unit.
    pub fn refresh_pair(&mut self, db: &Database, n: i64) -> Result<()> {
        self.rf2(db, n)?;
        self.rf1(db, n)?;
        Ok(())
    }

    /// Orders currently alive according to the stream's bookkeeping.
    pub fn live_orders(&self) -> i64 {
        self.next_insert - self.next_delete
    }
}

fn delete_where_key_in(
    db: &Database,
    table: &str,
    key_col: &str,
    start: i64,
    end: i64,
) -> Result<u64> {
    match db.execute(&format!(
        "DELETE FROM {table} WHERE {key_col} >= {start} AND {key_col} < {end}"
    ))? {
        rql_sqlengine::ExecOutcome::Affected(n) => Ok(n),
        _ => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_initial;
    use rql_sqlengine::Value;

    #[test]
    fn refresh_keeps_database_size_stable() {
        let db = Database::default_in_memory();
        let tpch = Tpch::new(0.0003);
        load_initial(&db, &tpch).unwrap();
        let orders_before = db.table_row_count("orders").unwrap();
        let mut stream = RefreshStream::new(tpch);
        for _ in 0..3 {
            stream.refresh_pair(&db, 20).unwrap();
        }
        assert_eq!(db.table_row_count("orders").unwrap(), orders_before);
        assert_eq!(stream.live_orders(), orders_before as i64);
        // The oldest keys are gone, fresh ones exist.
        let r = db
            .query("SELECT MIN(o_orderkey), MAX(o_orderkey) FROM orders")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(61));
        assert_eq!(r.rows[0][1], Value::Integer(tpch.orders_count() + 60));
    }

    #[test]
    fn rf2_removes_matching_lineitems() {
        let db = Database::default_in_memory();
        let tpch = Tpch::new(0.0003);
        load_initial(&db, &tpch).unwrap();
        let mut stream = RefreshStream::new(tpch);
        let (orders, lines) = stream.rf2(&db, 10).unwrap();
        assert_eq!(orders, 10);
        assert!(lines >= 10);
        let r = db
            .query("SELECT COUNT(*) FROM lineitem WHERE l_orderkey <= 10")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(0));
    }

    #[test]
    fn stream_exhaustion_detected() {
        let db = Database::default_in_memory();
        let tpch = Tpch::new(0.0003);
        load_initial(&db, &tpch).unwrap();
        let mut stream = RefreshStream::new(tpch);
        // Delete everything, then one more.
        stream.rf2(&db, tpch.orders_count()).unwrap();
        assert!(stream.rf2(&db, 1).is_err());
    }
}
