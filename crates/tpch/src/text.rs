//! Deterministic TPC-H-style text fragments.
//!
//! `dbgen` builds its text columns from fixed vocabularies (type and
//! container syllables, segments, priorities) plus pseudo-random
//! sentences for comments. This module reproduces the vocabularies the
//! experiments depend on — notably the `p_type` grammar that contains
//! the paper's predicate value `'STANDARD POLISHED TIN'` — and a seeded
//! comment generator, so every run produces byte-identical data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First syllable of `p_type`.
pub const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable of `p_type`.
pub const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable of `p_type`.
pub const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// `p_container` syllables.
pub const CONTAINER_SYL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// `p_container` second syllable.
pub const CONTAINER_SYL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Customer market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship instructions.
pub const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Ship modes.
pub const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Nation names (the 25 of TPC-H).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const NOUNS: [&str; 12] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
];
const VERBS: [&str; 10] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "boost",
    "detect",
    "integrate",
    "solve",
    "wake quickly against",
];
const ADJECTIVES: [&str; 9] = [
    "furious", "sly", "careful", "blithe", "quick", "bold", "ironic", "final", "regular",
];

/// Deterministic per-row random source: seed derived from a table tag
/// and the row's key, so refresh-generated rows are stable regardless of
/// generation order.
pub fn row_rng(table_tag: u64, key: i64) -> StdRng {
    StdRng::seed_from_u64(
        0x5156_4c5f_7470_6368 ^ table_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ key as u64,
    )
}

/// Pick a deterministic element.
pub fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.random_range(0..options.len())]
}

/// A TPC-H-ish pseudo-sentence comment of at most `max_len` bytes.
pub fn comment(rng: &mut StdRng, max_len: usize) -> String {
    let mut s = String::new();
    while s.len() < max_len.saturating_sub(30) {
        let adj = pick(rng, &ADJECTIVES);
        let noun = pick(rng, &NOUNS);
        let verb = pick(rng, &VERBS);
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&format!("{adj} {noun} {verb} the {noun}."));
    }
    s.truncate(max_len);
    s
}

/// A `p_type` drawn from the three-syllable grammar.
pub fn part_type(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        pick(rng, &TYPE_SYL1),
        pick(rng, &TYPE_SYL2),
        pick(rng, &TYPE_SYL3)
    )
}

/// A `p_container`.
pub fn container(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        pick(rng, &CONTAINER_SYL1),
        pick(rng, &CONTAINER_SYL2)
    )
}

/// Phone number in TPC-H's `CC-NNN-NNN-NNNN` shape.
pub fn phone(rng: &mut StdRng, nation: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        nation + 10,
        rng.random_range(100..1000),
        rng.random_range(100..1000),
        rng.random_range(1000..10000)
    )
}

/// Date within TPC-H's order-date window, as ISO text.
///
/// `frac` in `[0, 1]` positions the date in the window (1992-01-01 …
/// 1998-08-02), so callers control the distribution.
pub fn order_date(frac: f64) -> String {
    // 2406 days in the window.
    let day = (frac.clamp(0.0, 1.0) * 2405.0) as i64;
    date_from_day(day)
}

/// Day offset from 1992-01-01 rendered as `YYYY-MM-DD`.
pub fn date_from_day(day: i64) -> String {
    // 1992-01-01 is 8035 days after the Unix epoch.
    let z = day + 8035 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a = part_type(&mut row_rng(1, 42));
        let b = part_type(&mut row_rng(1, 42));
        assert_eq!(a, b);
        let c = part_type(&mut row_rng(1, 43));
        let d = part_type(&mut row_rng(2, 42));
        // Different keys/tables give (almost surely) different draws from
        // a differently-seeded stream; at minimum the rng streams differ.
        let _ = (c, d);
    }

    #[test]
    fn paper_predicate_value_is_in_grammar() {
        assert!(TYPE_SYL1.contains(&"STANDARD"));
        assert!(TYPE_SYL2.contains(&"POLISHED"));
        assert!(TYPE_SYL3.contains(&"TIN"));
    }

    #[test]
    fn dates_render_correctly() {
        assert_eq!(date_from_day(0), "1992-01-01");
        assert_eq!(date_from_day(31), "1992-02-01");
        assert_eq!(date_from_day(2405), "1998-08-02");
        assert_eq!(order_date(0.0), "1992-01-01");
        assert_eq!(order_date(1.0), "1998-08-02");
        // ISO dates order lexicographically.
        assert!(order_date(0.1) < order_date(0.9));
    }

    #[test]
    fn comment_respects_max_len() {
        let mut rng = row_rng(9, 1);
        for len in [10, 44, 79, 120] {
            assert!(comment(&mut rng, len).len() <= len);
        }
    }

    #[test]
    fn phone_shape() {
        let p = phone(&mut row_rng(3, 7), 5);
        assert_eq!(p.split('-').count(), 4);
        assert!(p.starts_with("15-"));
    }
}
