//! Update workloads and snapshot-history construction.
//!
//! Paper §5, Table 1: "UW15 / UW30 — delete and insert 15K/30K orders
//! and their lineitem records per snapshot" against the 1.5M-order SF-1
//! database. What matters to every experiment is the *fraction* of the
//! database churned between snapshots, because it determines
//! `diff(S1,S2)` and the overwrite-cycle length ("The UW30 overwrites
//! the database every 50 snapshots while the UW15 every 100"). The
//! workloads here are therefore defined by fraction, so the scaled-down
//! reproduction keeps the paper's cycle lengths exactly.

use std::sync::Arc;

use rql::RqlSession;
use rql_retro::RetroConfig;
use rql_sqlengine::Result;

use crate::gen::Tpch;
use crate::load::{create_native_indexes, load_initial};
use crate::refresh::RefreshStream;

/// An update workload: the fraction of orders churned per snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateWorkload {
    /// Display name ("UW30").
    pub name: &'static str,
    /// Fraction of the order table deleted+inserted between snapshots.
    pub order_fraction: f64,
}

/// UW7.5: 7,500 orders per snapshot at SF 1 (0.5%).
pub const UW7_5: UpdateWorkload = UpdateWorkload {
    name: "UW7.5",
    order_fraction: 0.005,
};
/// UW15: 15,000 orders per snapshot at SF 1 (1%); overwrite cycle 100.
pub const UW15: UpdateWorkload = UpdateWorkload {
    name: "UW15",
    order_fraction: 0.01,
};
/// UW30: 30,000 orders per snapshot at SF 1 (2%); overwrite cycle 50.
pub const UW30: UpdateWorkload = UpdateWorkload {
    name: "UW30",
    order_fraction: 0.02,
};
/// UW60: 60,000 orders per snapshot at SF 1 (4%).
pub const UW60: UpdateWorkload = UpdateWorkload {
    name: "UW60",
    order_fraction: 0.04,
};

impl UpdateWorkload {
    /// Orders deleted+inserted per snapshot at this scale.
    pub fn orders_per_snapshot(&self, tpch: &Tpch) -> i64 {
        ((tpch.orders_count() as f64 * self.order_fraction).round() as i64).max(1)
    }

    /// Snapshots until the order/lineitem pages are fully overwritten
    /// (paper: 50 for UW30, 100 for UW15).
    pub fn overwrite_cycle(&self) -> u64 {
        (1.0 / self.order_fraction).round() as u64
    }
}

/// A built snapshot history: session + refresh stream + bookkeeping.
pub struct SnapshotHistory {
    /// The RQL session (snapshotable TPC-H database + SnapIds).
    pub session: Arc<RqlSession>,
    /// The refresh stream (positioned after the last declared snapshot).
    pub stream: RefreshStream,
    /// Workload used between snapshots.
    pub workload: UpdateWorkload,
    /// Ids of declared snapshots, in order.
    pub snapshots: Vec<u64>,
}

/// Build a TPC-H database with `snapshot_count` declared snapshots under
/// `workload`, optionally with native indexes.
pub fn build_history(
    config: RetroConfig,
    sf: f64,
    workload: UpdateWorkload,
    snapshot_count: u64,
    with_indexes: bool,
) -> Result<SnapshotHistory> {
    let session = RqlSession::new(config)?;
    let tpch = Tpch::new(sf);
    load_initial(session.snap_db(), &tpch)?;
    if with_indexes {
        create_native_indexes(session.snap_db())?;
    }
    let mut history = SnapshotHistory {
        session,
        stream: RefreshStream::new(tpch),
        workload,
        snapshots: Vec::new(),
    };
    history.advance(snapshot_count)?;
    Ok(history)
}

impl SnapshotHistory {
    /// Declare `n` more snapshots, churning the workload's order volume
    /// before each declaration.
    pub fn advance(&mut self, n: u64) -> Result<()> {
        let per_snapshot = self.workload.orders_per_snapshot(self.stream.tpch());
        for _ in 0..n {
            self.stream
                .refresh_pair(self.session.snap_db(), per_snapshot)?;
            let sid = self.session.declare_snapshot(None)?;
            self.snapshots.push(sid);
        }
        Ok(())
    }

    /// The most recent snapshot id (`Slast` in the paper's notation).
    pub fn last_snapshot(&self) -> u64 {
        *self.snapshots.last().expect("history has snapshots")
    }

    /// A Qs string selecting `len` snapshots starting at `start`
    /// (inclusive), taking every `skip`-th (Table 1's `Qs_N`, optionally
    /// "with step").
    pub fn qs(&self, start: u64, len: u64, skip: u64) -> String {
        assert!(skip >= 1);
        let end = start + (len - 1) * skip;
        if skip == 1 {
            format!(
                "SELECT snap_id FROM snapids WHERE snap_id >= {start} AND snap_id <= {end} \
                 ORDER BY snap_id"
            )
        } else {
            format!(
                "SELECT snap_id FROM snapids WHERE snap_id >= {start} AND snap_id <= {end} \
                 AND (snap_id - {start}) % {skip} = 0 ORDER BY snap_id"
            )
        }
    }

    /// Make every declared snapshot "old": run enough further churn that
    /// the order/lineitem pages of all existing snapshots complete their
    /// overwrite cycles, then clear the page cache. (Paper §5.1: "all
    /// iterations are cold" baseline and the old-snapshot experiments.)
    pub fn age_all_snapshots(&mut self) -> Result<()> {
        let cycle = self.workload.overwrite_cycle();
        let per_snapshot = self.workload.orders_per_snapshot(self.stream.tpch());
        // Churn one full cycle's worth of orders without declaring
        // further snapshots (declarations would extend the history).
        for _ in 0..cycle {
            self.stream
                .refresh_pair(self.session.snap_db(), per_snapshot)?;
        }
        self.session.snap_db().store().cache().clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::Value;

    fn small_config() -> RetroConfig {
        RetroConfig::new()
    }

    #[test]
    fn workload_constants_match_paper() {
        assert_eq!(UW30.overwrite_cycle(), 50);
        assert_eq!(UW15.overwrite_cycle(), 100);
        assert_eq!(UW7_5.overwrite_cycle(), 200);
        assert_eq!(UW60.overwrite_cycle(), 25);
        let t = Tpch::new(1.0);
        assert_eq!(UW30.orders_per_snapshot(&t), 30_000);
        assert_eq!(UW15.orders_per_snapshot(&t), 15_000);
    }

    #[test]
    fn history_declares_snapshots_and_snapids() {
        let mut h = build_history(small_config(), 0.0003, UW30, 4, false).unwrap();
        assert_eq!(h.snapshots, vec![1, 2, 3, 4]);
        assert_eq!(h.last_snapshot(), 4);
        let ids = rql::all_snapshots(h.session.aux_db()).unwrap();
        assert_eq!(ids.len(), 4);
        h.advance(2).unwrap();
        assert_eq!(h.last_snapshot(), 6);
    }

    #[test]
    fn snapshots_see_historical_order_counts() {
        let h = build_history(small_config(), 0.0003, UW30, 3, false).unwrap();
        let total = h.stream.tpch().orders_count();
        // Every snapshot sees the same row count (steady-state churn)…
        for sid in &h.snapshots {
            let r = h
                .session
                .query(&format!("SELECT AS OF {sid} COUNT(*) FROM orders"))
                .unwrap();
            assert_eq!(r.rows[0][0], Value::Integer(total));
        }
        // …but different minimum keys (older snapshots keep older rows).
        let min_of = |sid: u64| -> i64 {
            h.session
                .query(&format!("SELECT AS OF {sid} MIN(o_orderkey) FROM orders"))
                .unwrap()
                .rows[0][0]
                .as_i64()
                .unwrap()
        };
        assert!(min_of(1) < min_of(3));
    }

    #[test]
    fn qs_strings_select_expected_sets() {
        let h = build_history(small_config(), 0.0003, UW30, 6, false).unwrap();
        let r = h.session.query_aux(&h.qs(2, 3, 1)).unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        let r = h.session.query_aux(&h.qs(1, 3, 2)).unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn aging_completes_overwrite_cycles() {
        let mut h = build_history(small_config(), 0.0002, UW60, 2, false).unwrap();
        h.age_all_snapshots().unwrap();
        // After aging, a snapshot query on orders fetches only from the
        // pagelog (no pages shared with the current database).
        let store = h.session.snap_db().store();
        store.cache().clear();
        store.stats().reset();
        let r = h
            .session
            .query("SELECT AS OF 1 COUNT(*) FROM orders")
            .unwrap();
        assert!(r.rows[0][0].as_i64().unwrap() > 0);
        let snap = store.stats().snapshot();
        assert!(snap.pagelog_reads > 0, "expected pagelog I/O: {snap:?}");
    }
}
