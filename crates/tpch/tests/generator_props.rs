//! Property tests on the TPC-H generator: determinism, domain validity,
//! and workload bookkeeping, for arbitrary scale factors and keys.

use proptest::prelude::*;
use rql_tpch::{text, Tpch};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rows_are_deterministic_and_well_formed(
        sf in 0.0002f64..0.01,
        key in 1i64..100_000,
    ) {
        let t = Tpch::new(sf);
        let key = key % t.orders_count().max(1) + 1;
        // Determinism.
        prop_assert_eq!(t.order_row(key), t.order_row(key));
        prop_assert_eq!(t.part_row(key % t.part_count() + 1),
                        t.part_row(key % t.part_count() + 1));
        // Domain validity.
        let order = t.order_row(key);
        let custkey = order[1].as_i64().unwrap();
        prop_assert!(custkey >= 1 && custkey <= t.customer_count());
        let status = order[2].as_str().unwrap();
        prop_assert!(["O", "F", "P"].contains(&status));
        let date = order[4].as_str().unwrap();
        prop_assert_eq!(date.len(), 10);
        prop_assert!(date >= "1992-01-01");
        // Lineitems reference the order and valid parts.
        for line in t.lineitem_rows(key) {
            prop_assert_eq!(line[0].as_i64().unwrap(), key);
            let pk = line[1].as_i64().unwrap();
            prop_assert!(pk >= 1 && pk <= t.part_count());
            let qty = line[4].as_i64().unwrap();
            prop_assert!((1..=50).contains(&qty));
        }
    }

    #[test]
    fn order_dates_monotone_in_key(sf in 0.0005f64..0.005, a in 1i64..5000, b in 1i64..5000) {
        let t = Tpch::new(sf);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let da = t.order_row(lo)[4].as_str().unwrap().to_owned();
        let db = t.order_row(hi)[4].as_str().unwrap().to_owned();
        prop_assert!(da <= db, "{} > {} for keys {} <= {}", da, db, lo, hi);
    }

    #[test]
    fn part_types_stay_in_grammar(key in 1i64..10_000) {
        let t = Tpch::new(0.001);
        let ty = t.part_row(key % t.part_count() + 1)[4]
            .as_str()
            .unwrap()
            .to_owned();
        let words: Vec<&str> = ty.splitn(3, ' ').collect();
        prop_assert_eq!(words.len(), 3);
        prop_assert!(text::TYPE_SYL1.contains(&words[0]));
        prop_assert!(text::TYPE_SYL2.contains(&words[1]));
        prop_assert!(text::TYPE_SYL3.contains(&words[2]));
    }
}
