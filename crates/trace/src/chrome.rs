//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the "JSON Array Format" object — `{"traceEvents": [...]}` —
//! that `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Completed spans become `"ph":"X"` complete events
//! (timestamp + duration, microseconds); instants become `"ph":"i"`
//! thread-scoped instant events; still-open spans (enter without exit,
//! e.g. a crash mid-query) become `"ph":"B"` begin events so the viewer
//! shows them as unterminated.
//!
//! Hand-rolled serialization: the workspace builds offline, and every
//! field is a number or a known-clean static string, so no escaping
//! machinery is needed beyond [`escape`] for labels.

use std::io::{self, Write};
use std::path::Path;

use crate::event::{EventKind, TraceEvent};
use crate::ring::{global, wall_anchor_micros};

/// Escape a string for a JSON string literal (labels are static Rust
/// strings — this is belt-and-braces, not a general JSON writer).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_event(out: &mut String, e: &TraceEvent, ph: &str) {
    let ts = e.start_nanos as f64 / 1e3; // Chrome trace timestamps are µs
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},",
        escape(e.span.name()),
        escape(e.span.category()),
        ph,
        ts
    ));
    if ph == "X" {
        out.push_str(&format!("\"dur\":{:.3},", e.dur_nanos as f64 / 1e3));
    }
    if ph == "i" {
        out.push_str("\"s\":\"t\",");
    }
    out.push_str(&format!("\"pid\":1,\"tid\":{},\"args\":{{", e.tid));
    out.push_str(&format!("\"seq\":{},\"arg\":{}", e.seq, e.arg));
    if let Some(label) = e.label {
        out.push_str(&format!(",\"label\":\"{}\"", escape(label)));
    }
    out.push_str("}}");
}

/// Render `events` as a Chrome-trace JSON document. The top-level
/// `otherData.wallClockAnchorMicros` field records the wall-clock time
/// of `ts` 0, letting `stitch_trace.py` align exports from different
/// processes (and machines) on one timeline.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // An enter is "matched" when the same (tid, span, start) shows up as
    // an exit — the exit's X event covers it. Unmatched enters (spans
    // still open when the ring was read) are emitted as B events.
    let mut out = format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"wallClockAnchorMicros\":{}}},\"traceEvents\":[",
        wall_anchor_micros()
    );
    let mut first = true;
    for e in events {
        let ph = match e.kind {
            EventKind::Exit => "X",
            EventKind::Instant => "i",
            EventKind::Enter => {
                let matched = events.iter().any(|x| {
                    x.kind == EventKind::Exit
                        && x.tid == e.tid
                        && x.span == e.span
                        && x.start_nanos == e.start_nanos
                });
                if matched {
                    continue;
                }
                "B"
            }
        };
        if !first {
            out.push(',');
        }
        first = false;
        push_event(&mut out, e, ph);
    }
    out.push_str("]}");
    out
}

/// Export the global ring's current contents to `path`.
pub fn export_global(path: &Path) -> io::Result<()> {
    let json = chrome_trace_json(&global().snapshot());
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.flush()
}

/// Honour the `RQL_TRACE=out.json` environment contract: when the
/// variable names a path, export the global ring there and return the
/// path. Call at process exit (binaries) — errors are reported to the
/// caller, not swallowed.
pub fn export_from_env() -> Option<(std::path::PathBuf, io::Result<()>)> {
    let path = std::env::var_os("RQL_TRACE")?;
    if path.is_empty() {
        return None;
    }
    let path = std::path::PathBuf::from(path);
    let result = export_global(&path);
    Some((path, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;

    fn ev(seq: u64, kind: EventKind, span: SpanId, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind,
            span,
            tid: 3,
            start_nanos: start,
            dur_nanos: dur,
            arg: 11,
            label: None,
        }
    }

    #[test]
    fn exits_become_complete_events_and_matched_enters_collapse() {
        let events = vec![
            ev(0, EventKind::Enter, SpanId::Scan, 1_000, 0),
            ev(1, EventKind::Instant, SpanId::CacheHit, 1_500, 0),
            ev(2, EventKind::Exit, SpanId::Scan, 1_000, 4_000),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        // One X for the scan, one i for the cache hit, no B.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 0);
        assert!(json.contains("\"name\":\"scan\""));
        assert!(json.contains("\"cat\":\"pagestore\""));
        assert!(json.contains("\"dur\":4.000"));
    }

    #[test]
    fn unmatched_enter_becomes_begin_event() {
        let events = vec![ev(0, EventKind::Enter, SpanId::QqIteration, 10, 0)];
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
    }

    #[test]
    fn labels_are_escaped_into_args() {
        let mut e = ev(0, EventKind::Exit, SpanId::BenchPhase, 0, 5);
        e.label = Some("load \"cold\"");
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"label\":\"load \\\"cold\\\"\""));
    }

    #[test]
    fn empty_ring_is_still_valid_json() {
        let json = chrome_trace_json(&[]);
        let anchor = crate::ring::wall_anchor_micros();
        assert_eq!(
            json,
            format!(
                "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"wallClockAnchorMicros\":{anchor}}},\"traceEvents\":[]}}"
            )
        );
    }
}
