//! Aggregated counters and the latency histogram.
//!
//! These are the trace layer's *summary* side: relaxed atomics bumped
//! on the hot path and read at render time. `rqld`'s metrics registry
//! builds on these types directly, so the `METRICS` verb, the
//! per-query `PROFILE` report and the `/metrics` OpenMetrics exposition
//! draw from one accounting layer and can never disagree. (Formerly
//! `rqld::metrics::LatencyHistogram`; moved here so embedded users get
//! the same machinery without a server.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically-written relaxed counter (also usable as a gauge via
/// [`Counter::dec`], which saturates at zero).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract 1, saturating at zero (gauge semantics).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Inclusive upper bound (µs) of each histogram bucket — the single
/// source of truth shared by the `METRICS` wire verb's derived
/// percentiles and the `/metrics` OpenMetrics `le=` bucket bounds.
///
/// `record` places a sample of `m` µs in bucket `64 - m.leading_zeros()`
/// (clamped to 31), i.e. bucket `i` holds samples in `(2^(i-1), 2^i]` µs
/// with bucket 0 holding only `0`. Every sample counted in bucket `i`
/// is therefore `≤ BUCKET_BOUNDS[i] = 2^i`, which is exactly the
/// cumulative-bucket invariant Prometheus histograms require.
pub const BUCKET_BOUNDS: [u64; HISTOGRAM_BUCKETS] = {
    let mut bounds = [0u64; HISTOGRAM_BUCKETS];
    let mut i = 0;
    while i < HISTOGRAM_BUCKETS {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

/// Latency histogram over the power-of-two microsecond buckets defined
/// by [`BUCKET_BOUNDS`].
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Per-bucket sample counts, aligned with [`BUCKET_BOUNDS`]
    /// (non-cumulative; exporters accumulate for `le=` buckets).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Quantile `q` in `[0,1]` in microseconds, linearly interpolated
    /// toward the containing bucket's upper bound (the same estimator
    /// Prometheus's `histogram_quantile` applies to cumulative buckets):
    /// with `k` samples below the bucket and `n` inside it, rank `r`
    /// maps to `lower + (upper - lower) · (r - k) / n`, rounded up.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let upper = BUCKET_BOUNDS[i];
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS[i - 1] };
                let frac = (rank - seen) as f64 / n as f64;
                return (lower as f64 + (upper - lower) as f64 * frac).ceil() as u64;
            }
            seen += n;
        }
        BUCKET_BOUNDS[HISTOGRAM_BUCKETS - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_dec_saturate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        for _ in 0..10 {
            c.dec();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_bounds_are_monotonic_powers_of_two() {
        for (i, b) in BUCKET_BOUNDS.iter().enumerate() {
            assert_eq!(*b, 1u64 << i);
            if i > 0 {
                assert!(BUCKET_BOUNDS[i - 1] < *b);
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 <= 256, "p99 covers the 100µs mass, got {p99}");
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 32_768, "max sample is 50ms, got {p100}");
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn quantiles_interpolate_to_known_values() {
        // 99 samples of 100µs land in bucket 7 = (64, 128]; one 50ms
        // sample lands in bucket 16 = (32768, 65536].
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        // p50: rank 50 of 99 within (64, 128]: 64 + 64·50/99 = 96.32… → 97.
        assert_eq!(h.quantile_micros(0.50), 97);
        // p99: rank 99 of 99 within (64, 128]: exactly the upper bound.
        assert_eq!(h.quantile_micros(0.99), 128);
        // p100: rank 1 of 1 within (32768, 65536]: the upper bound.
        assert_eq!(h.quantile_micros(1.0), 65_536);
        // Bucket counts expose the raw shape for the exporter.
        let counts = h.bucket_counts();
        assert_eq!(counts[7], 99);
        assert_eq!(counts[16], 1);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(h.sum_micros(), 99 * 100 + 50_000);
    }

    #[test]
    fn interpolation_spreads_within_one_bucket() {
        // Four samples, all in bucket 10 = (512, 1024]: quantiles walk
        // up the bucket instead of snapping to one edge.
        let h = LatencyHistogram::default();
        for _ in 0..4 {
            h.record(Duration::from_micros(600));
        }
        assert_eq!(h.quantile_micros(0.25), 640); // 512 + 512·1/4
        assert_eq!(h.quantile_micros(0.50), 768); // 512 + 512·2/4
        assert_eq!(h.quantile_micros(1.0), 1024);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }
}
