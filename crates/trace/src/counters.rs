//! Aggregated counters and the latency histogram.
//!
//! These are the trace layer's *summary* side: relaxed atomics bumped
//! on the hot path and read at render time. `rqld`'s metrics registry
//! builds on these types directly, so the `METRICS` verb and the
//! per-query `PROFILE` report draw from one accounting layer and can
//! never disagree. (Formerly `rqld::metrics::LatencyHistogram`; moved
//! here so embedded users get the same machinery without a server.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically-written relaxed counter (also usable as a gauge via
/// [`Counter::dec`], which saturates at zero).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract 1, saturating at zero (gauge semantics).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Latency histogram with power-of-two microsecond buckets:
/// bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 is `<2µs`).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 32],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(31);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0,1]`.
    /// Bucketed, so the value is exact to within a factor of two.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 31
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_dec_saturate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        for _ in 0..10 {
            c.dec();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 <= 256, "p99 covers the 100µs mass, got {p99}");
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 32_768, "max sample is 50ms, got {p100}");
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }
}
