//! The event vocabulary: a closed set of span identities plus the
//! enter/exit/instant kinds they occur as.
//!
//! Everything here is plain-old-data on purpose. A [`SpanId`] is a
//! `u16`-sized enum — not an interned string — so recording an event
//! never allocates and never chases a pointer; names and categories are
//! `&'static str` tables resolved only at *decode* time (export, flight
//! dump). Free-form text enters the system exclusively through
//! [`crate::label`], a tiny registry of `&'static str` labels interned
//! once per call site.

/// How a [`SpanId`] occurs in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A scoped span opened (duration not yet known).
    Enter = 0,
    /// A scoped span closed; the event carries the full duration.
    Exit = 1,
    /// A point event with no duration.
    Instant = 2,
}

impl EventKind {
    /// Decode from the packed representation.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        match v {
            0 => Some(EventKind::Enter),
            1 => Some(EventKind::Exit),
            2 => Some(EventKind::Instant),
            _ => None,
        }
    }
}

macro_rules! span_ids {
    ($( $(#[$doc:meta])* $variant:ident = ($num:literal, $name:literal, $cat:literal), )+) => {
        /// Identity of a traced operation, one variant per instrumented
        /// site class across the stack.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        #[non_exhaustive]
        pub enum SpanId {
            $( $(#[$doc])* $variant = $num, )+
        }

        impl SpanId {
            /// Every registered span id (decode-side iteration).
            pub const ALL: &'static [SpanId] = &[ $( SpanId::$variant, )+ ];

            /// Stable lower-snake event name (Chrome-trace `name`).
            pub fn name(self) -> &'static str {
                match self { $( SpanId::$variant => $name, )+ }
            }

            /// Subsystem category (Chrome-trace `cat`).
            pub fn category(self) -> &'static str {
                match self { $( SpanId::$variant => $cat, )+ }
            }

            /// Decode from the packed representation.
            pub fn from_u16(v: u16) -> Option<SpanId> {
                match v {
                    $( $num => Some(SpanId::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

span_ids! {
    // -- pagestore -----------------------------------------------------
    /// A page fetched from the base database file.
    DbRead = (1, "db_read", "pagestore"),
    /// A page fetched from the Pagelog archive.
    PagelogRead = (2, "pagelog_read", "pagestore"),
    /// A page written back through the pager.
    PageWrite = (3, "page_write", "pagestore"),
    /// Buffer-cache hit.
    CacheHit = (4, "cache_hit", "pagestore"),
    /// Buffer-cache eviction.
    CacheEviction = (5, "cache_eviction", "pagestore"),
    /// Pre-image captured copy-on-write into the Pagelog.
    CowCapture = (6, "cow_capture", "pagestore"),
    /// Maplog entries scanned while resolving a snapshot (arg = count).
    MaplogScan = (7, "maplog_scan", "pagestore"),
    /// WAL durability sync (fsync analog).
    WalFsync = (8, "wal_fsync", "pagestore"),
    /// Heap page skipped because its sidecar refuted the predicate.
    PagePruned = (9, "page_pruned", "pagestore"),
    /// Pruning sidecar built for a staged page (arg = sidecar bytes).
    SidecarBuild = (10, "sidecar_build", "pagestore"),
    // -- retro ---------------------------------------------------------
    /// Snapshot chain opened for reading (arg = snapshot id).
    ChainOpen = (16, "chain_open", "retro"),
    /// Snapshot page table built/located (arg = snapshot id).
    SptBuild = (17, "spt_build", "retro"),
    /// One write transaction committed (arg = txn id). Declaring
    /// commits run their snapshot hooks — standing-query maintenance
    /// and push — inside this span, and replication trailers carry the
    /// same txn id, so cross-node stitching can hang follower applies
    /// off the originating commit.
    Commit = (18, "commit", "retro"),
    // -- sqlengine -----------------------------------------------------
    /// Base-table scan (arg = rows produced).
    Scan = (32, "scan", "sqlengine"),
    /// Join step against one more table (arg = rows produced).
    Join = (33, "join", "sqlengine"),
    /// Ad-hoc index build inside a query (paper §5, Figure 9).
    IndexBuild = (34, "index_build", "sqlengine"),
    // -- core (RQL mechanisms) -----------------------------------------
    /// Qs evaluated on the auxiliary database (arg = snapshots found).
    QsLoop = (48, "qs", "rql"),
    /// One Qq iteration (arg = snapshot id).
    QqIteration = (49, "qq_iteration", "rql"),
    /// Memoized Qq result served (arg = snapshot id).
    MemoHit = (50, "memo_hit", "rql"),
    /// Memo probed and missed; Qq executed live (arg = snapshot id).
    MemoMiss = (51, "memo_miss", "rql"),
    /// Rows folded into the result table (arg = row count).
    RowsFolded = (52, "rows_folded", "rql"),
    /// Iteration took the delta-driven path (arg = snapshot id).
    DeltaPath = (53, "delta_path", "rql"),
    /// Iteration took the sequential fallback path (arg = snapshot id).
    SeqPath = (54, "seq_path", "rql"),
    /// Mechanism finalization (e.g. AggVariable result materialization).
    Finalize = (55, "finalize", "rql"),
    /// Iteration skipped entirely: every changed page was refuted by its
    /// sidecar, so the prior snapshot's rows were reused (arg = snapshot id).
    SnapshotPruned = (56, "snapshot_pruned", "rql"),
    // -- memo ----------------------------------------------------------
    /// Memo store probe (lookup).
    MemoProbe = (64, "memo_probe", "memo"),
    /// Memo store insert.
    MemoInsert = (65, "memo_insert", "memo"),
    /// Spill-tier write.
    MemoSpillWrite = (66, "memo_spill_write", "memo"),
    /// Spill-tier read-back.
    MemoSpillRead = (67, "memo_spill_read", "memo"),
    // -- rqld ----------------------------------------------------------
    /// Connection accepted.
    ConnAccept = (80, "conn_accept", "rqld"),
    /// RUN job admitted to the queue (arg = job id).
    JobAdmit = (81, "job_admit", "rqld"),
    /// RUN job pulled from the queue by a worker (arg = job id).
    JobDequeue = (82, "job_dequeue", "rqld"),
    /// RUN job executing on a worker (arg = job id).
    JobRun = (83, "job_run", "rqld"),
    /// Response frame written back to the client (arg = job id).
    JobReply = (84, "job_reply", "rqld"),
    /// Client-supplied 16-byte trace id observed on a RUN/PREPARE frame
    /// (arg = the id's first 8 bytes, big-endian — enough to correlate
    /// per-node exports in `stitch_trace.py`).
    TraceCtx = (85, "trace_ctx", "rqld"),
    // -- standing (continuous RQL) --------------------------------------
    /// A standing query registered: seed batch pass over the backlog
    /// (arg = snapshots seeded).
    StandingSeed = (88, "standing_seed", "standing"),
    /// One standing query maintained through one committed snapshot
    /// (arg = snapshot id).
    StandingMaintain = (89, "standing_maintain", "standing"),
    /// A result-delta frame pushed to one subscriber (arg = rows in the
    /// frame).
    StandingPush = (90, "standing_push", "standing"),
    // -- bench ---------------------------------------------------------
    /// A named experiment phase (label = phase name).
    BenchPhase = (96, "bench_phase", "bench"),
    // -- repl ----------------------------------------------------------
    /// Leader shipped one committed WAL segment to a follower
    /// (arg = the segment's txn id, matching the leader's `commit` span).
    ReplShip = (104, "repl_ship", "repl"),
    /// Follower applied one replicated segment (arg = the originating
    /// txn id from the frame, matching the leader's `commit` span).
    ReplApply = (105, "repl_apply", "repl"),
}

/// One decoded trace event, as read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order of ring claims).
    pub seq: u64,
    /// Enter / exit / instant.
    pub kind: EventKind,
    /// What happened.
    pub span: SpanId,
    /// Recording thread (stable per-thread ordinal, not an OS tid).
    pub tid: u64,
    /// Nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds (exit events; zero otherwise).
    pub dur_nanos: u64,
    /// Free argument (snapshot id, row count, job id — see [`SpanId`]).
    pub arg: u64,
    /// Optional interned label (bench phase names).
    pub label: Option<&'static str>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &id in SpanId::ALL {
            assert_eq!(SpanId::from_u16(id as u16), Some(id));
            assert!(seen.insert(id as u16), "duplicate span number {id:?}");
            assert!(!id.name().is_empty());
            assert!(!id.category().is_empty());
        }
        assert_eq!(SpanId::from_u16(0xFFFF), None);
    }

    #[test]
    fn event_kinds_roundtrip() {
        for kind in [EventKind::Enter, EventKind::Exit, EventKind::Instant] {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(EventKind::from_u8(9), None);
    }
}
