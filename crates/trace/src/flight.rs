//! The flight recorder: render the ring's recent history for humans,
//! dump it on panic, and verify enter/exit discipline.
//!
//! The global ring is always recording (unless `RQL_TRACE_OFF`), so
//! "the flight recorder" is not a separate buffer — it is a bounded
//! view over the same ring, formatted as one event per line. `rqld`
//! dumps it on watchdog timeouts, Qq errors and `STATUS --flight`;
//! [`install_panic_hook`] wires it to panics for any binary.

use std::fmt::Write as _;
use std::sync::Once;

use crate::event::{EventKind, TraceEvent};
use crate::ring::global;

/// Most-recent events included in a flight dump.
pub const FLIGHT_DUMP_EVENTS: usize = 256;

/// Render the last [`FLIGHT_DUMP_EVENTS`] events of the global ring,
/// newest last. Always returns at least a header line, so callers can
/// embed the dump unconditionally.
pub fn flight_dump() -> String {
    let events = global().snapshot();
    let tail_start = events.len().saturating_sub(FLIGHT_DUMP_EVENTS);
    let tail = &events[tail_start..];
    let mut out = format!(
        "flight recorder: {} of {} retained events (ring capacity {}, {} recorded)\n",
        tail.len(),
        events.len(),
        global().capacity(),
        global().recorded(),
    );
    for e in tail {
        render_line(&mut out, e);
    }
    out
}

fn render_line(out: &mut String, e: &TraceEvent) {
    let kind = match e.kind {
        EventKind::Enter => ">",
        EventKind::Exit => "<",
        EventKind::Instant => "*",
    };
    let _ = write!(
        out,
        "  [{:>8}] t{:<3} {:>12.3}ms {} {}/{}",
        e.seq,
        e.tid,
        e.start_nanos as f64 / 1e6,
        kind,
        e.span.category(),
        e.span.name(),
    );
    if e.kind == EventKind::Exit {
        let _ = write!(out, " dur={:.3}ms", e.dur_nanos as f64 / 1e6);
    }
    if e.arg != 0 {
        let _ = write!(out, " arg={}", e.arg);
    }
    if let Some(label) = e.label {
        let _ = write!(out, " label={label}");
    }
    out.push('\n');
}

/// Install a panic hook that writes a flight dump to stderr (once per
/// process; chains to the previous hook). Idempotent.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            eprintln!("{}", flight_dump());
        }));
    });
}

/// Verify stack discipline over a drained event sequence: per thread, in
/// sequence order, every exit must match the innermost open enter.
///
/// The check is wrap-tolerant — an exit whose enter was overwritten by
/// ring wraparound matches nothing in the reconstructed stack and is
/// ignored; only a *crossing* (an exit closing a span that is open but
/// not innermost) is an error, because that is exactly what a leaked
/// guard on a cancel/timeout path would produce.
pub fn check_balanced(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    for e in sorted {
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            EventKind::Enter => stack.push(e),
            EventKind::Exit => {
                match stack.last() {
                    Some(top) if top.span == e.span && top.start_nanos == e.start_nanos => {
                        stack.pop();
                    }
                    _ if stack
                        .iter()
                        .any(|open| open.span == e.span && open.start_nanos == e.start_nanos) =>
                    {
                        return Err(format!(
                            "crossed spans on thread {}: exit of {:?} (seq {}) closes a \
                             non-innermost enter",
                            e.tid, e.span, e.seq
                        ));
                    }
                    // Enter lost to wraparound: nothing to match.
                    _ => {}
                }
            }
            EventKind::Instant => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::event::SpanId;

    fn ev(seq: u64, kind: EventKind, span: SpanId, tid: u64, start: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind,
            span,
            tid,
            start_nanos: start,
            dur_nanos: 0,
            arg: 0,
            label: None,
        }
    }

    #[test]
    fn balanced_sequences_pass() {
        let events = vec![
            ev(0, EventKind::Enter, SpanId::QsLoop, 1, 10),
            ev(1, EventKind::Enter, SpanId::QqIteration, 1, 20),
            ev(2, EventKind::Instant, SpanId::MemoMiss, 1, 25),
            ev(3, EventKind::Exit, SpanId::QqIteration, 1, 20),
            ev(4, EventKind::Exit, SpanId::QsLoop, 1, 10),
        ];
        assert!(check_balanced(&events).is_ok());
    }

    #[test]
    fn crossed_spans_are_detected() {
        let events = vec![
            ev(0, EventKind::Enter, SpanId::QsLoop, 1, 10),
            ev(1, EventKind::Enter, SpanId::QqIteration, 1, 20),
            ev(2, EventKind::Exit, SpanId::QsLoop, 1, 10), // closes outer first
        ];
        assert!(check_balanced(&events).is_err());
    }

    #[test]
    fn wrapped_away_enters_are_tolerated() {
        // The enter fell off the ring; only the exit survives.
        let events = vec![ev(7, EventKind::Exit, SpanId::Scan, 2, 5)];
        assert!(check_balanced(&events).is_ok());
    }

    #[test]
    fn interleaved_threads_do_not_confuse_the_checker() {
        let events = vec![
            ev(0, EventKind::Enter, SpanId::Scan, 1, 10),
            ev(1, EventKind::Enter, SpanId::Scan, 2, 11),
            ev(2, EventKind::Exit, SpanId::Scan, 2, 11),
            ev(3, EventKind::Exit, SpanId::Scan, 1, 10),
        ];
        assert!(check_balanced(&events).is_ok());
    }

    #[test]
    fn dump_always_has_a_header() {
        let dump = flight_dump();
        assert!(dump.starts_with("flight recorder:"));
    }
}
