//! Minimal embedded HTTP/1.0 listener for observability endpoints.
//!
//! Serves `GET` requests from a caller-supplied routing closure over a
//! plain [`TcpListener`] — stdlib only, one short-lived thread per
//! connection, `Connection: close` on every response. This is
//! deliberately *not* a web server: no keep-alive, no TLS, no bodies
//! read, request lines capped at 8 KiB. It exists so `rqld --metrics-listen`
//! and the bench binaries can expose `/metrics`, `/healthz` and
//! `/readyz` to a Prometheus scraper or load balancer without pulling
//! a dependency below `core`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// One HTTP response from a route handler.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// 200 with a `text/plain` body.
    pub fn ok(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// 503 with a `text/plain` body (readiness refusals).
    pub fn unavailable(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 503,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// 404.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "OK",
    }
}

/// Route handler: maps a request path (`/metrics`) to a response.
pub type Handler = dyn Fn(&str) -> HttpResponse + Send + Sync;

/// Handle to a running listener; [`HttpServer::shutdown`] (or drop)
/// stops the accept loop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. In-flight connection
    /// threads finish on their own (they hold no references past the
    /// handler call).
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the acceptor so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.len() > 8192 {
        return;
    }
    // Drain headers until the blank line so well-behaved clients don't
    // see a reset before the response.
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => break,
            Ok(_) if h == "\r\n" || h == "\n" => break,
            Ok(_) if h.len() <= 8192 => continue,
            _ => return,
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        HttpResponse {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        }
    } else {
        // Strip any query string before routing.
        handler(path.split('?').next().unwrap_or(path))
    };
    let mut out = stream;
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = out.write_all(head.as_bytes());
    let _ = out.write_all(response.body.as_bytes());
    let _ = out.flush();
}

/// Bind `addr` and serve `handler` on a background accept thread.
pub fn serve(addr: &str, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let accept_thread = thread::Builder::new()
        .name("http-observe".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                let _ = thread::Builder::new()
                    .name("http-conn".to_string())
                    .spawn(move || handle_connection(stream, &*handler));
            }
        })?;
    Ok(HttpServer {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status = buf
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_routes_and_404s_unknown_paths() {
        let mut server = serve(
            "127.0.0.1:0",
            Arc::new(|path: &str| match path {
                "/healthz" => HttpResponse::ok("ok\n"),
                "/readyz" => HttpResponse::unavailable("lagging\n"),
                _ => HttpResponse::not_found(),
            }),
        )
        .unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
        assert_eq!(get(addr, "/readyz"), (503, "lagging\n".to_string()));
        assert_eq!(get(addr, "/nope").0, 404);
        // Query strings are stripped before routing.
        assert_eq!(get(addr, "/healthz?x=1").0, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = serve("127.0.0.1:0", Arc::new(|_: &str| HttpResponse::ok("ok"))).unwrap();
        server.shutdown();
        server.shutdown();
    }
}
