//! Interning for free-form `&'static str` labels (bench phase names).
//!
//! Events store a `u32` label id so the hot path stays pointer-free and
//! allocation-free; the registry is a lock-guarded `Vec<&'static str>`
//! touched once per *distinct* label (a handful per process), never per
//! event. Id 0 is reserved for "no label".

use std::sync::Mutex;
use std::sync::OnceLock;

fn registry() -> &'static Mutex<Vec<&'static str>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern `label`, returning its non-zero id. Idempotent: the same
/// string contents always map to the same id.
pub fn intern(label: &'static str) -> u32 {
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(pos) = reg.iter().position(|&l| l == label) {
        return pos as u32 + 1;
    }
    reg.push(label);
    reg.len() as u32
}

/// Resolve an id back to its label (`None` for 0 or unknown ids).
pub fn resolve(id: u32) -> Option<&'static str> {
    if id == 0 {
        return None;
    }
    let reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.get(id as usize - 1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = intern("load");
        let b = intern("query");
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        assert_eq!(intern("load"), a);
        assert_eq!(resolve(a), Some("load"));
        assert_eq!(resolve(b), Some("query"));
        assert_eq!(resolve(0), None);
        assert_eq!(resolve(u32::MAX), None);
    }
}
