#![warn(missing_docs)]
//! # rql-trace
//!
//! The observability spine of the RQL reproduction: a low-overhead
//! structured span/event layer threaded through every crate of the
//! stack, plus the machinery built on top of it — the flight recorder,
//! the Chrome-trace/Perfetto exporter, and the counter types `rqld`'s
//! metrics registry is made of.
//!
//! Design constraints (DESIGN.md §9):
//!
//! * **No dependencies.** Everything below `core` uses this crate, so it
//!   sits at the bottom of the graph next to `pagestore` and builds from
//!   `std` alone.
//! * **Zero heap allocation on the hot path.** Events are plain-old-data
//!   (`u64` fields, enum names, interned labels); the ring is allocated
//!   once; thread-local span stacks reuse their buffers. When tracing is
//!   disabled ([`set_enabled`]`(false)` / `RQL_TRACE_OFF=1`), recording
//!   entry points return after one relaxed atomic load.
//! * **Always-on flight recorder.** The global ring retains the last N
//!   events at all times; dumps are a read, not a mode switch.
//!
//! Environment:
//!
//! * `RQL_TRACE=out.json` — export the ring as Chrome-trace JSON at
//!   process exit (binaries call [`export_from_env`]);
//! * `RQL_TRACE_RING=N` — global ring capacity in events (default 65536);
//! * `RQL_TRACE_OFF=1` — disable recording entirely.

pub mod chrome;
pub mod counters;
pub mod event;
pub mod flight;
pub mod http;
pub mod label;
pub mod openmetrics;
pub mod ring;
pub mod span;

pub use chrome::{chrome_trace_json, export_from_env, export_global};
pub use counters::{Counter, LatencyHistogram, BUCKET_BOUNDS, HISTOGRAM_BUCKETS};
pub use event::{EventKind, SpanId, TraceEvent};
pub use flight::{check_balanced, flight_dump, install_panic_hook, FLIGHT_DUMP_EVENTS};
pub use http::{HttpResponse, HttpServer};
pub use openmetrics::TextBuilder;
pub use ring::{global, now_nanos, unix_micros, wall_anchor_micros, Ring, DEFAULT_CAPACITY};
pub use span::{
    enabled, instant, instant_arg, open_span_depth, set_enabled, span, span_arg, span_labeled,
    SpanGuard,
};
