//! Prometheus/OpenMetrics text exposition.
//!
//! A small builder that renders counters, gauges and
//! [`LatencyHistogram`]s in the Prometheus text format (`# HELP` /
//! `# TYPE` metadata, cumulative `_bucket{le="…"}` series, `_sum` and
//! `_count`). It lives here — at the bottom of the crate graph — so
//! `rqld`'s `/metrics` endpoint and the bench binaries share one
//! renderer and one set of conventions:
//!
//! * every metric name carries the `rql_` namespace prefix;
//! * counters end in `_total` (the builder appends it when missing);
//! * histograms are exported in **seconds** (the Prometheus base unit),
//!   with `le=` bounds taken from [`BUCKET_BOUNDS`](crate::counters::BUCKET_BOUNDS)
//!   divided by 1e6 — the same boundaries the `METRICS` verb's derived
//!   `p50/p99` fields are computed from.

use crate::counters::{LatencyHistogram, BUCKET_BOUNDS};

/// Builder accumulating one exposition page.
#[derive(Debug, Default)]
pub struct TextBuilder {
    buf: String,
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a float the way Prometheus clients expect: decimal, no
/// exponent for the magnitudes we emit, trimmed of trailing zeros.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep one decimal so gauges parse as floats
    } else {
        let s = format!("{v:.9}");
        let trimmed = s.trim_end_matches('0');
        let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed);
        trimmed.to_string()
    }
}

impl TextBuilder {
    /// Fresh empty page.
    pub fn new() -> TextBuilder {
        TextBuilder::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push('\n');
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// A monotonic counter. `_total` is appended to the name unless it
    /// already ends with it.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let mut name = sanitize(name);
        if !name.ends_with("_total") {
            name.push_str("_total");
        }
        self.header(&name, help, "counter");
        self.buf.push_str(&name);
        self.buf.push(' ');
        self.buf.push_str(&value.to_string());
        self.buf.push('\n');
    }

    /// An integer gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        self.buf.push_str(&name);
        self.buf.push(' ');
        self.buf.push_str(&value.to_string());
        self.buf.push('\n');
    }

    /// A float gauge (uptime, lag in seconds, ratios).
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        self.buf.push_str(&name);
        self.buf.push(' ');
        self.buf.push_str(&fmt_f64(value));
        self.buf.push('\n');
    }

    /// A gauge with one fixed label set rendered verbatim, value 1 —
    /// the `rql_build_info{version="…"}` idiom.
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        self.buf.push_str(&name);
        self.buf.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&sanitize(k));
            self.buf.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => self.buf.push_str("\\\\"),
                    '"' => self.buf.push_str("\\\""),
                    '\n' => self.buf.push_str("\\n"),
                    c => self.buf.push(c),
                }
            }
            self.buf.push('"');
        }
        self.buf.push_str("} 1\n");
    }

    /// A [`LatencyHistogram`] as a cumulative-bucket Prometheus
    /// histogram in seconds. `name` should end in `_seconds`.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &LatencyHistogram) {
        let name = sanitize(name);
        self.header(&name, help, "histogram");
        let counts = hist.bucket_counts();
        let mut cumulative = 0u64;
        for (i, n) in counts.iter().enumerate() {
            cumulative += n;
            let le = BUCKET_BOUNDS[i] as f64 / 1e6;
            self.buf.push_str(&name);
            self.buf.push_str("_bucket{le=\"");
            self.buf.push_str(&fmt_f64(le));
            self.buf.push_str("\"} ");
            self.buf.push_str(&cumulative.to_string());
            self.buf.push('\n');
        }
        self.buf.push_str(&name);
        self.buf.push_str("_bucket{le=\"+Inf\"} ");
        self.buf.push_str(&hist.count().to_string());
        self.buf.push('\n');
        self.buf.push_str(&name);
        self.buf.push_str("_sum ");
        self.buf.push_str(&fmt_f64(hist.sum_micros() as f64 / 1e6));
        self.buf.push('\n');
        self.buf.push_str(&name);
        self.buf.push_str("_count ");
        self.buf.push_str(&hist.count().to_string());
        self.buf.push('\n');
    }

    /// Finish the page (Prometheus text format is newline-terminated
    /// per sample; no trailer required).
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_gets_total_suffix_once() {
        let mut b = TextBuilder::new();
        b.counter("rql_queries_ok", "ok", 3);
        b.counter("rql_queries_total", "all", 5);
        let page = b.finish();
        assert!(page.contains("# TYPE rql_queries_ok_total counter\n"));
        assert!(page.contains("rql_queries_ok_total 3\n"));
        assert!(page.contains("rql_queries_total 5\n"));
        assert!(!page.contains("total_total"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100)); // bucket 7, le=0.000128
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(50)); // bucket 16, le=0.065536
        let mut b = TextBuilder::new();
        b.histogram("rql_query_latency_seconds", "latency", &h);
        let page = b.finish();
        assert!(page.contains("# TYPE rql_query_latency_seconds histogram\n"));
        assert!(page.contains("rql_query_latency_seconds_bucket{le=\"0.000128\"} 2\n"));
        assert!(page.contains("rql_query_latency_seconds_bucket{le=\"0.065536\"} 3\n"));
        assert!(page.contains("rql_query_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(page.contains("rql_query_latency_seconds_count 3\n"));
        assert!(page.contains("rql_query_latency_seconds_sum 0.0502\n"));
    }

    #[test]
    fn info_escapes_label_values() {
        let mut b = TextBuilder::new();
        b.info("rql_build_info", "build", &[("version", "1.0\"x\"")]);
        let page = b.finish();
        assert!(page.contains("rql_build_info{version=\"1.0\\\"x\\\"\"} 1\n"));
    }

    #[test]
    fn gauge_f64_renders_decimal() {
        let mut b = TextBuilder::new();
        b.gauge_f64("rql_uptime_seconds", "uptime", 2.0);
        b.gauge_f64("rql_repl_lag_seconds", "lag", 0.25);
        let page = b.finish();
        assert!(page.contains("rql_uptime_seconds 2.0\n"));
        assert!(page.contains("rql_repl_lag_seconds 0.25\n"));
    }
}
