//! The lock-free bounded event ring.
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! publish through a per-slot version word (seqlock discipline), so
//! recording is wait-free, allocation-free, and safe from any number of
//! threads. The ring *is* the flight recorder: it always holds the last
//! `capacity` events, old entries overwritten in claim order.
//!
//! Every slot field is an `AtomicU64`, which keeps readers and writers
//! data-race-free in the language-semantics sense (ThreadSanitizer- and
//! Miri-clean) even while racing. A reader validates the version word
//! before and after copying the payload and discards the slot on any
//! mismatch; the only theoretical hazard left — a full ring lap between
//! the two version reads racing the payload copy — loses one event from
//! a diagnostic dump, never corrupts the program.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::event::{EventKind, SpanId, TraceEvent};
use crate::label;

/// Version-word sentinel: slot is mid-write.
const WRITING: u64 = u64::MAX;

/// Default global ring capacity (events); override with `RQL_TRACE_RING`.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Slot {
    /// `0` = never written, [`WRITING`] = in progress, else `claim + 1`.
    version: AtomicU64,
    /// `kind (8) | span (16) | label (32)` packed little-endian-ish.
    packed: AtomicU64,
    tid: AtomicU64,
    start_nanos: AtomicU64,
    dur_nanos: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            packed: AtomicU64::new(0),
            tid: AtomicU64::new(0),
            start_nanos: AtomicU64::new(0),
            dur_nanos: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

fn pack(kind: EventKind, span: SpanId, label_id: u32) -> u64 {
    (kind as u64) | ((span as u64) << 8) | (u64::from(label_id) << 32)
}

fn unpack(packed: u64) -> Option<(EventKind, SpanId, u32)> {
    let kind = EventKind::from_u8((packed & 0xFF) as u8)?;
    let span = SpanId::from_u16(((packed >> 8) & 0xFFFF) as u16)?;
    Some((kind, span, (packed >> 32) as u32))
}

/// A bounded multi-producer event ring. One global instance backs the
/// whole process ([`global`]); tests may build private rings.
pub struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Ring {
    /// Ring holding the last `capacity` events (minimum 8).
    pub fn with_capacity(capacity: usize) -> Ring {
        let capacity = capacity.max(8);
        Ring {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever claimed (≥ events currently retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free; no allocation.
    // Flat scalar parameters keep the hot path free of any aggregate
    // construction; a params struct here would be pure ceremony.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: EventKind,
        span: SpanId,
        tid: u64,
        start_nanos: u64,
        dur_nanos: u64,
        arg: u64,
        label_id: u32,
    ) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        slot.version.store(WRITING, Ordering::SeqCst);
        slot.packed
            .store(pack(kind, span, label_id), Ordering::Relaxed);
        slot.tid.store(tid, Ordering::Relaxed);
        slot.start_nanos.store(start_nanos, Ordering::Relaxed);
        slot.dur_nanos.store(dur_nanos, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.version.store(claim + 1, Ordering::SeqCst);
    }

    /// Copy out every currently-valid event, oldest first. Racing
    /// writers may invalidate individual slots mid-copy; those slots are
    /// skipped, never returned torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::SeqCst);
            if v1 == 0 || v1 == WRITING {
                continue;
            }
            let packed = slot.packed.load(Ordering::Relaxed);
            let tid = slot.tid.load(Ordering::Relaxed);
            let start_nanos = slot.start_nanos.load(Ordering::Relaxed);
            let dur_nanos = slot.dur_nanos.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            if slot.version.load(Ordering::SeqCst) != v1 {
                continue; // overwritten while copying
            }
            let Some((kind, span, label_id)) = unpack(packed) else {
                continue;
            };
            events.push(TraceEvent {
                seq: v1 - 1,
                kind,
                span,
                tid,
                start_nanos,
                dur_nanos,
                arg,
                label: label::resolve(label_id),
            });
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// The process-wide ring. Capacity is read from `RQL_TRACE_RING` (an
/// event count) once, at first use.
pub fn global() -> &'static Ring {
    static GLOBAL: OnceLock<Ring> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("RQL_TRACE_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        Ring::with_capacity(capacity)
    })
}

/// Nanoseconds since the process trace epoch (first call wins).
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Current wall-clock time as microseconds since the Unix epoch.
/// Replication trailers carry this so followers can compute time lag
/// and `stitch_trace.py` can align per-node timelines.
pub fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64)
}

/// Wall-clock time (microseconds since the Unix epoch) of this
/// process's trace epoch — the instant `ts` 0 in the Chrome export
/// corresponds to. Anchored once, at first call; the pairing with
/// [`now_nanos`] is only as precise as the two clock reads, which is
/// far below the cross-node skew stitching already tolerates.
pub fn wall_anchor_micros() -> u64 {
    static ANCHOR: OnceLock<u64> = OnceLock::new();
    *ANCHOR.get_or_init(|| {
        let rel_micros = now_nanos() / 1_000;
        unix_micros().saturating_sub(rel_micros)
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = Ring::with_capacity(16);
        for i in 0..5 {
            ring.record(EventKind::Instant, SpanId::CacheHit, 1, i, 0, i, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.arg, i as u64);
            assert_eq!(e.span, SpanId::CacheHit);
            assert_eq!(e.kind, EventKind::Instant);
        }
    }

    #[test]
    fn wraparound_keeps_only_the_newest() {
        let ring = Ring::with_capacity(8);
        for i in 0..20u64 {
            ring.record(EventKind::Instant, SpanId::DbRead, 7, i, 0, i, 0);
        }
        assert_eq!(ring.recorded(), 20);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().seq, 12);
        assert_eq!(events.last().unwrap().seq, 19);
        // Sequence numbers stay strictly increasing after the wrap.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn labels_survive_the_ring() {
        let ring = Ring::with_capacity(8);
        let id = crate::label::intern("phase_x");
        ring.record(EventKind::Exit, SpanId::BenchPhase, 1, 0, 42, 0, id);
        let events = ring.snapshot();
        assert_eq!(events[0].label, Some("phase_x"));
        assert_eq!(events[0].dur_nanos, 42);
    }

    #[test]
    fn tiny_capacity_is_floored() {
        let ring = Ring::with_capacity(1);
        assert!(ring.capacity() >= 8);
    }
}
