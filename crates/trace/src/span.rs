//! Scoped spans and instant events — the recording API the rest of the
//! stack calls.
//!
//! Each thread keeps a small span stack; [`span`] pushes and returns a
//! scope guard whose `Drop` pops and emits the exit event, so *every*
//! exit path — including `?` early returns and cancellation unwinding —
//! closes its spans. A `debug_assert` checks the popped frame matches
//! the guard, catching any enter/exit imbalance before it reaches the
//! ring.
//!
//! When tracing is disabled ([`set_enabled`]`(false)` or
//! `RQL_TRACE_OFF=1`), every entry point returns immediately: no ring
//! write, no clock read, no allocation.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::event::{EventKind, SpanId};
use crate::label;
use crate::ring::{global, now_nanos};

// ---- enable gate -----------------------------------------------------

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn init_enabled() -> bool {
    let off = std::env::var("RQL_TRACE_OFF").is_ok_and(|v| !v.is_empty() && v != "0");
    let on = !off;
    // Racing initializers agree (both read the same env), so a plain
    // store is fine.
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Whether tracing is recording. Defaults to on (the flight recorder is
/// always-on) unless `RQL_TRACE_OFF=1` is set at first use.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

/// Turn recording on or off process-wide (tests, overhead benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---- per-thread state ------------------------------------------------

/// Stable small per-thread ordinal, cheaper and more readable in dumps
/// than the OS thread id.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

#[derive(Clone, Copy)]
struct OpenSpan {
    id: SpanId,
    start: u64,
    arg: u64,
    label_id: u32,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

// ---- the API ---------------------------------------------------------

/// Scope guard returned by [`span`]; emits the exit event on drop.
///
/// Deliberately neither `Clone` nor `Send`: a span belongs to the stack
/// of the thread that opened it.
#[must_use = "a span closes when this guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    id: Option<SpanId>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    fn noop() -> SpanGuard {
        SpanGuard {
            id: None,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let frame = STACK.with(|s| s.borrow_mut().pop());
        let Some(frame) = frame else {
            debug_assert!(false, "span stack underflow closing {id:?}");
            return;
        };
        debug_assert_eq!(
            frame.id, id,
            "span stack unbalanced: closing {id:?} but {:?} is open",
            frame.id
        );
        let now = now_nanos();
        global().record(
            EventKind::Exit,
            frame.id,
            thread_ordinal(),
            frame.start,
            now.saturating_sub(frame.start),
            frame.arg,
            frame.label_id,
        );
    }
}

fn open(id: SpanId, arg: u64, label_id: u32) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let start = now_nanos();
    let tid = thread_ordinal();
    STACK.with(|s| {
        s.borrow_mut().push(OpenSpan {
            id,
            start,
            arg,
            label_id,
        });
    });
    global().record(EventKind::Enter, id, tid, start, 0, arg, label_id);
    SpanGuard {
        id: Some(id),
        _not_send: std::marker::PhantomData,
    }
}

/// Open a scoped span; it closes (and records its duration) when the
/// returned guard drops.
#[inline]
pub fn span(id: SpanId) -> SpanGuard {
    open(id, 0, 0)
}

/// [`span`] carrying an argument (snapshot id, job id, …).
#[inline]
pub fn span_arg(id: SpanId, arg: u64) -> SpanGuard {
    open(id, arg, 0)
}

/// [`span`] carrying an interned free-form label (bench phase names).
#[inline]
pub fn span_labeled(id: SpanId, label_text: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    open(id, 0, label::intern(label_text))
}

/// Record a point event.
#[inline]
pub fn instant(id: SpanId) {
    instant_arg(id, 0);
}

/// Record a point event with an argument.
#[inline]
pub fn instant_arg(id: SpanId, arg: u64) {
    if !enabled() {
        return;
    }
    global().record(
        EventKind::Instant,
        id,
        thread_ordinal(),
        now_nanos(),
        0,
        arg,
        0,
    );
}

/// Depth of the current thread's open-span stack (tests/assertions).
pub fn open_span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_balance_even_on_early_return() {
        set_enabled(true);
        fn inner(fail: bool) -> Result<(), ()> {
            let _g = span(SpanId::Scan);
            let _h = span_arg(SpanId::Join, 9);
            if fail {
                return Err(());
            }
            Ok(())
        }
        assert_eq!(open_span_depth(), 0);
        let _ = inner(false);
        assert_eq!(open_span_depth(), 0);
        let _ = inner(true);
        assert_eq!(open_span_depth(), 0);
    }

    #[test]
    fn disabled_records_nothing_and_keeps_stack_empty() {
        set_enabled(false);
        let before = global().recorded();
        {
            let _g = span(SpanId::QsLoop);
            instant(SpanId::CacheHit);
            assert_eq!(open_span_depth(), 0);
        }
        assert_eq!(global().recorded(), before);
        set_enabled(true);
    }
}
