//! A durable, on-disk deployment: WAL + Pagelog + Maplog as real files,
//! the adaptive (Thresher-style) archive format, crash recovery, and
//! retrospective queries across restarts.
//!
//! ```sh
//! cargo run --release --example durable_shop
//! ```
//!
//! A small shop takes a snapshot after every business day. The process
//! then "crashes" (drops everything in memory) and reopens from the
//! files; all snapshots remain queryable.

use std::path::Path;
use std::sync::Arc;

use rql_pagestore::{FileStorage, LogStorage, PagerConfig};
use rql_retro::{PagelogFormat, RetroConfig, RetroStore};
use rql_sqlengine::Database;

fn open_db(dir: &Path, fresh: bool) -> rql::Result<Arc<Database>> {
    let storage = |name: &str| -> rql::Result<Arc<dyn LogStorage>> {
        let path = dir.join(name);
        Ok(Arc::new(if fresh {
            FileStorage::create(&path)?
        } else {
            FileStorage::open(&path)?
        }))
    };
    let config = RetroConfig {
        pager: PagerConfig {
            page_size: 4096,
            cache_capacity: 1 << 12,
            wal_sync_on_commit: true, // durability at every commit
        },
        // Store pre-states as diffs when small (space for reconstruction).
        pagelog_format: PagelogFormat::Adaptive { max_chain: 4 },
        ..RetroConfig::new()
    };
    let store = RetroStore::open(
        config,
        storage("wal.log")?,
        storage("pagelog.bin")?,
        storage("maplog.bin")?,
    )?;
    Ok(Database::over_store(store))
}

fn main() -> rql::Result<()> {
    let dir = std::env::temp_dir().join(format!("rql-durable-shop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create data dir");
    println!("data directory: {}", dir.display());

    // --- day 1-3: trade, snapshot nightly, then "crash" -----------------
    {
        let db = open_db(&dir, true)?;
        db.execute("CREATE TABLE stock (sku TEXT, qty INTEGER, price REAL)")?;
        db.execute(
            "INSERT INTO stock VALUES ('apple', 100, 0.5), ('pear', 80, 0.7), \
             ('plum', 60, 0.9)",
        )?;
        db.declare_snapshot()?; // end of day 1
        db.execute("UPDATE stock SET qty = qty - 30 WHERE sku = 'apple'")?;
        db.execute("UPDATE stock SET price = 0.8 WHERE sku = 'pear'")?;
        db.declare_snapshot()?; // end of day 2
        db.execute("DELETE FROM stock WHERE sku = 'plum'")?;
        db.execute("INSERT INTO stock VALUES ('quince', 40, 1.2)")?;
        db.declare_snapshot()?; // end of day 3
        db.store().flush()?;
        println!(
            "before crash: {} snapshots, pagelog {} bytes ({} diff entries)",
            db.store().snapshot_count(),
            db.store().pagelog().size_bytes(),
            db.store().pagelog().diff_count(),
        );
        // process "crashes" here — no clean shutdown beyond flush()
    }

    // --- restart: everything is still there ------------------------------
    let db = open_db(&dir, false)?;
    println!(
        "after reopen: {} snapshots recovered",
        db.store().snapshot_count()
    );

    for day in 1..=3u64 {
        let r = db.query(&format!(
            "SELECT AS OF {day} sku, qty, price FROM stock ORDER BY sku"
        ))?;
        println!("\nend of day {day}:");
        for row in &r.rows {
            println!("  {:<7} qty {:>4} @ {}", row[0].to_string(), row[1], row[2]);
        }
    }

    // Retrospective question across the whole history: when did pears get
    // more expensive?
    let r = db.query("SELECT AS OF 1 price FROM stock WHERE sku = 'pear'")?;
    let before = r.rows[0][0].clone();
    let r = db.query("SELECT AS OF 2 price FROM stock WHERE sku = 'pear'")?;
    let after = r.rows[0][0].clone();
    println!("\npear price moved {before} → {after} between day 1 and day 2");

    // And the shop keeps trading after recovery.
    db.execute("UPDATE stock SET qty = qty + 500 WHERE sku = 'apple'")?;
    let day4 = db.declare_snapshot()?;
    println!("restock committed; day {day4} snapshot declared");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
