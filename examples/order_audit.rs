//! Order auditing over a TPC-H snapshot history — the paper's motivating
//! use case ("applications need to analyze the past state of their data
//! to provide auditing and other forms of fact checking").
//!
//! ```sh
//! cargo run --release --example order_audit
//! ```
//!
//! A small TPC-H shop runs the refresh workload, declaring a snapshot at
//! every "end of day". The auditor then asks questions spanning the
//! whole history without any schema support for time: open-order counts
//! per day, per-customer order peaks, and the revenue trend for a part
//! type.

use rql::AggOp;
use rql_retro::RetroConfig;
use rql_tpch::{build_history, UW30};

fn main() -> rql::Result<()> {
    // 1,500 orders, 12 end-of-day snapshots, 2% churn per day.
    println!("Loading TPC-H and declaring 12 daily snapshots …");
    let history = build_history(RetroConfig::new(), 0.001, UW30, 12, false)?;
    let session = &history.session;

    // Audit 1: open orders per day (AggregateDataInVariable would give
    // one number; CollateData keeps the whole daily series).
    session.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT current_snapshot() AS day, COUNT(*) AS open_orders \
         FROM orders WHERE o_orderstatus = 'O'",
        "daily_open",
    )?;
    println!("\nOpen orders per day:");
    for row in &session
        .query_aux("SELECT day, open_orders FROM daily_open ORDER BY day")?
        .rows
    {
        println!("  day {}: {} open", row[0], row[1]);
    }

    // Audit 2: for each customer, the largest number of simultaneous
    // orders they ever had (the paper's §2.3 pattern on real data).
    session.aggregate_data_in_table(
        "SELECT snap_id FROM SnapIds",
        "SELECT o_custkey, COUNT(*) AS cn FROM orders GROUP BY o_custkey",
        "peaks",
        &[("cn".into(), AggOp::Max)],
    )?;
    let top =
        session.query_aux("SELECT o_custkey, cn FROM peaks ORDER BY cn DESC, o_custkey LIMIT 5")?;
    println!("\nTop-5 customers by peak simultaneous orders:");
    for row in &top.rows {
        println!("  customer {}: peak {}", row[0], row[1]);
    }

    // Audit 3: fact-check a revenue claim — "revenue from polished-tin
    // parts never dropped below its day-1 level". Collect the daily
    // revenue series and check with plain SQL over the result table.
    session.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT current_snapshot() AS day, SUM(l_extendedprice) AS revenue \
         FROM lineitem, part \
         WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'",
        "tin_revenue",
    )?;
    let series = session.query_aux("SELECT day, revenue FROM tin_revenue ORDER BY day")?;
    println!("\nPolished-tin revenue per day:");
    for row in &series.rows {
        println!("  day {}: {}", row[0], row[1]);
    }
    let day1 = series
        .rows
        .first()
        .and_then(|r| r[1].as_f64())
        .unwrap_or(0.0);
    let claim_holds = series
        .rows
        .iter()
        .all(|r| r[1].as_f64().unwrap_or(0.0) >= day1);
    println!(
        "\nClaim \"revenue never dropped below day 1\" is {}.",
        if claim_holds { "TRUE" } else { "FALSE" }
    );

    // Audit 4: when did order #42 leave the database? (It is one of the
    // oldest orders, deleted early by the refresh churn.)
    session.aggregate_data_in_variable(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT current_snapshot() FROM orders WHERE o_orderkey = 42",
        "order42_last_seen",
        AggOp::Max,
    )?;
    let last = session.query_aux("SELECT * FROM order42_last_seen")?;
    match last.rows.first().map(|r| &r[0]) {
        Some(v) if !v.is_null() => println!("\nOrder #42 last existed in snapshot {v}."),
        _ => println!("\nOrder #42 never appeared in any snapshot."),
    }
    Ok(())
}
