//! A guided tour of the performance effects the paper's §5 studies,
//! printed live from the instrumented store: snapshot sharing (hot vs
//! cold iterations), sharing with the current state, the all-cold
//! baseline, and what a native index does to snapshot sizes.
//!
//! ```sh
//! cargo run --release --example performance_tour
//! ```

use rql::AggOp;
use rql_pagestore::IoCostModel;
use rql_retro::RetroConfig;
use rql_tpch::{build_history, UW30};

fn main() -> rql::Result<()> {
    let model = IoCostModel::default();
    println!("Building a TPC-H history: 3,000 orders, UW30 churn, 60 snapshots …");
    let mut history = build_history(RetroConfig::new(), 0.002, UW30, 60, false)?;
    let session = history.session.clone();
    let store = session.snap_db().store();

    // Measure the most recent snapshot while it is still recent (before
    // aging churns a full overwrite cycle): Figure 7's mechanism.
    store.cache().clear();
    let slast = history.last_snapshot();
    let recent = session.aggregate_data_in_variable(
        &format!("SELECT snap_id FROM snapids WHERE snap_id = {slast}"),
        "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
        "tour0",
        AggOp::Avg,
    )?;
    let cold_recent = recent.iterations[0].qq_stats.io.pagelog_reads;

    // Effect 1: hot iterations ride the cache because consecutive
    // snapshots share pre-states (Figure 6's mechanism).
    history.age_all_snapshots()?;
    store.cache().clear();
    let report = session.aggregate_data_in_variable(
        &history.qs(1, 10, 1),
        "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
        "tour1",
        AggOp::Avg,
    )?;
    println!("\n[1] Old snapshots, 10 consecutive iterations (Qq_io):");
    for it in &report.iterations {
        println!(
            "  snapshot {:>3}: {:>4} pagelog reads, {:>4} cache hits, modeled {:?}",
            it.snap_id,
            it.qq_stats.io.pagelog_reads,
            it.qq_stats.io.cache_hits,
            it.total_cost(&model)
        );
    }
    println!(
        "  → the cold first iteration pays for everything; hot iterations fetch only \
         diff(S1,S2)."
    );

    // Effect 2: skipping snapshots reduces sharing (Figure 6, step 10).
    session.drop_result_table("tour1")?;
    store.cache().clear();
    let skipped = session.aggregate_data_in_variable(
        &history.qs(1, 5, 10),
        "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
        "tour2",
        AggOp::Avg,
    )?;
    let hot_contig = report
        .hot_mean(|i| i.qq_stats.io.pagelog_reads as f64)
        .unwrap();
    let hot_skip = skipped
        .hot_mean(|i| i.qq_stats.io.pagelog_reads as f64)
        .unwrap();
    println!(
        "\n[2] Hot-iteration pagelog reads: consecutive {hot_contig:.1} vs skip-10 \
         {hot_skip:.1} — skipping {}× the snapshots costs {}× the misses.",
        10,
        (hot_skip / hot_contig.max(0.01)).round()
    );

    // Effect 3: recent snapshots share with the memory-resident database
    // (measured above, before aging).
    let cold_old = report.iterations[0].qq_stats.io.pagelog_reads;
    println!(
        "\n[3] Cold-iteration pagelog reads: old snapshot {cold_old} vs most recent \
         snapshot {cold_recent} — recent snapshots read shared pages from memory."
    );

    // Effect 4: native indexes enlarge snapshots (Figure 9's tradeoff).
    let plain_pages = store.pager().page_count();
    let indexed = build_history(RetroConfig::new(), 0.002, UW30, 10, true)?;
    let indexed_pages = indexed.session.snap_db().store().pager().page_count();
    println!(
        "\n[4] Database pages without native indexes: {plain_pages}; with indexes on \
         orders/lineitem: {indexed_pages} — every snapshot carries its indexes."
    );
    Ok(())
}
