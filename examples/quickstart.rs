//! Quickstart: the paper's running example (Figures 1–3 and every worked
//! query of §2), end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A `LoggedIn` table evolves through three snapshot declarations, then
//! all four RQL mechanisms answer the paper's questions over the
//! snapshot set.

use rql::{AggOp, RqlSession};

fn main() -> rql::Result<()> {
    let session = RqlSession::with_defaults()?;

    // Deterministic SnapIds timestamps (Figure 2).
    let stamps = [
        "2008-11-09 23:59:59",
        "2008-11-10 23:59:59",
        "2008-11-11 23:59:59",
    ];
    let counter = std::sync::atomic::AtomicUsize::new(0);
    session.set_clock(move || {
        let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        stamps[i.min(2)].to_owned()
    });

    // --- Figure 3: build the history -----------------------------------
    session.execute("CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)")?;
    session.execute(
        "INSERT INTO LoggedIn VALUES \
         ('UserA', '2008-11-09 13:23:44', 'USA'), \
         ('UserB', '2008-11-09 15:45:21', 'UK'), \
         ('UserC', '2008-11-09 15:45:21', 'USA')",
    )?;
    // Declare snapshot S1 (lines 1-2).
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;")?;
    // Update table and declare snapshot S2 (lines 3-5).
    session.execute(
        "BEGIN; \
         DELETE FROM LoggedIn WHERE l_userid = 'UserA'; \
         UPDATE LoggedIn SET l_time = '2008-11-09 21:33:12' WHERE l_userid = 'UserC'; \
         COMMIT WITH SNAPSHOT;",
    )?;
    // Update table and declare snapshot S3 (lines 6-8).
    session.execute(
        "BEGIN; \
         INSERT INTO LoggedIn (l_userid, l_time, l_country) \
         VALUES ('UserD', '2008-11-11 10:08:04', 'UK'); \
         COMMIT WITH SNAPSHOT;",
    )?;

    // Retrospective query (line 9): the state as of snapshot 1.
    println!("SELECT AS OF 1 * FROM LoggedIn:");
    print_result(&session.query("SELECT AS OF 1 * FROM LoggedIn ORDER BY l_userid")?);

    // Current state (line 10).
    println!("\nSELECT * FROM LoggedIn (current state):");
    print_result(&session.query("SELECT * FROM LoggedIn ORDER BY l_userid")?);

    // --- §2.1 CollateData ------------------------------------------------
    session.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
        "collated",
    )?;
    println!("\nCollateData — every (user, snapshot) appearance:");
    print_result(
        &session.query_aux("SELECT l_userid, current_snapshot FROM collated ORDER BY 2, 1")?,
    );

    // --- §2.2 AggregateDataInVariable -------------------------------------
    session.aggregate_data_in_variable(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
        "userb_count",
        AggOp::Sum,
    )?;
    println!("\nAggregateDataInVariable — snapshots in which UserB is logged in:");
    print_result(&session.query_aux("SELECT * FROM userb_count")?);

    session.aggregate_data_in_variable(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT current_snapshot() FROM LoggedIn WHERE l_userid = 'UserD'",
        "userd_first",
        AggOp::Min,
    )?;
    println!("\nAggregateDataInVariable — first snapshot containing UserD:");
    print_result(&session.query_aux("SELECT * FROM userd_first")?);

    // --- §2.3 AggregateDataInTable ----------------------------------------
    session.aggregate_data_in_table(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT l_userid, l_time FROM LoggedIn",
        "first_login",
        &[("l_time".into(), AggOp::Min)],
    )?;
    println!("\nAggregateDataInTable — first login time per user:");
    print_result(&session.query_aux("SELECT l_userid, l_time FROM first_login ORDER BY l_userid")?);

    session.aggregate_data_in_table(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
        "max_per_country",
        &[("c".into(), AggOp::Max)],
    )?;
    println!("\nAggregateDataInTable — max simultaneous logins per country:");
    print_result(
        &session.query_aux("SELECT l_country, c FROM max_per_country ORDER BY l_country")?,
    );

    // --- §2.4 CollateDataIntoIntervals ------------------------------------
    session.collate_data_into_intervals(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_userid FROM LoggedIn",
        "sessions",
    )?;
    println!("\nCollateDataIntoIntervals — login lifetimes:");
    print_result(&session.query_aux(
        "SELECT l_userid, start_snapshot, end_snapshot FROM sessions ORDER BY l_userid",
    )?);

    // --- §3: the SQL UDF syntax -------------------------------------------
    session.drop_result_table("collated")?;
    session.query_aux(
        "SELECT CollateData(snap_id, \
         'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn', \
         'collated') FROM SnapIds",
    )?;
    println!("\nSame CollateData, driven by the paper's SQL UDF syntax:");
    print_result(&session.query_aux("SELECT COUNT(*) FROM collated")?);
    Ok(())
}

fn print_result(result: &rql::QueryResult) {
    println!("  {}", result.columns.join(" | "));
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(std::string::ToString::to_string).collect();
        println!("  {}", cells.join(" | "));
    }
}
