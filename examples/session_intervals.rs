//! Record-lifetime analysis with `CollateDataIntoIntervals` — turning a
//! page-level snapshot history into the timestamped representation
//! temporal databases use (paper §2.4 / §6), and using it for
//! after-the-fact claim checking.
//!
//! ```sh
//! cargo run --release --example session_intervals
//! ```
//!
//! A login service snapshots its `sessions` table every hour. Later, a
//! security review needs each account's presence intervals, and must
//! check the claim: "account `mallory` was never logged in at the same
//! time as account `alice`".

use rql::RqlSession;

const USERS: [(&str, std::ops::Range<u64>); 5] = [
    // (account, logged-in during snapshot hours [start, end))
    ("alice", 1..5),
    ("bob", 2..9),
    ("carol", 1..3),
    ("mallory", 6..8),
    ("carol2", 7..9), // carol returns under a second device id
];

fn main() -> rql::Result<()> {
    let session = RqlSession::with_defaults()?;
    session.execute("CREATE TABLE sessions (account TEXT, device TEXT)")?;

    // Simulate 8 hours of logins/logouts, snapshotting each hour.
    for hour in 1..=8u64 {
        // Make the table match who is online during this hour.
        session.execute("DELETE FROM sessions")?;
        for (account, range) in USERS {
            if range.contains(&hour) {
                session.execute(&format!(
                    "INSERT INTO sessions VALUES ('{account}', 'dev-{account}')"
                ))?;
            }
        }
        let name = format!("hour-{hour}");
        session.execute_named("BEGIN; COMMIT WITH SNAPSHOT;", Some(&name))?;
    }

    // Lifetimes of every account across the whole history.
    session.collate_data_into_intervals(
        "SELECT snap_id FROM SnapIds",
        "SELECT account FROM sessions",
        "presence",
    )?;
    println!("Presence intervals (snapshot hours, inclusive):");
    let intervals = session.query_aux(
        "SELECT account, start_snapshot, end_snapshot FROM presence \
         ORDER BY account, start_snapshot",
    )?;
    for row in &intervals.rows {
        println!("  {:<8} hours {}..={}", row[0].to_string(), row[1], row[2]);
    }

    // Claim check via plain SQL over the interval table: do alice's and
    // mallory's lifetimes overlap anywhere?
    let overlap = session.query_aux(
        "SELECT COUNT(*) FROM presence a, presence b \
         WHERE a.account = 'alice' AND b.account = 'mallory' \
         AND a.start_snapshot <= b.end_snapshot \
         AND b.start_snapshot <= a.end_snapshot",
    )?;
    let overlaps = overlap.rows[0][0].as_i64().unwrap_or(0) > 0;
    println!(
        "\nClaim \"mallory was never online at the same time as alice\": {}",
        if overlaps { "REFUTED" } else { "CONFIRMED" }
    );

    // Named snapshots make ad-hoc spot checks readable.
    let hour6 = rql::snapshot_by_name(session.aux_db(), "hour-6")?.expect("snapshot exists");
    let online = session.query(&format!(
        "SELECT AS OF {hour6} account FROM sessions ORDER BY account"
    ))?;
    println!("\nOnline during hour 6:");
    for row in &online.rows {
        println!("  {}", row[0]);
    }
    Ok(())
}
