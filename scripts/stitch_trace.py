#!/usr/bin/env python3
"""Stitch per-node RQL_TRACE exports into one multi-process trace.

Usage: stitch_trace.py [--out MERGED.json] [--assert-causal] NAME=FILE...

Each NAME=FILE pair is one node's Chrome-trace export (what `rqld`
writes at drain when `RQL_TRACE=out.json` is set). The stitcher:

  - assigns each input a distinct `pid` and emits `process_name`
    metadata so Perfetto shows one named track group per node;
  - aligns timelines using each export's top-level
    `otherData.wallClockAnchorMicros` (the wall-clock time of its
    `ts` 0): every timestamp is shifted onto the earliest node's
    clock, so cross-node ordering is wall-clock ordering;
  - emits Chrome flow events (`ph:"s"` / `ph:"f"`) linking each
    leader `repl_ship` span to every follower `repl_apply` span that
    carries the same transaction id in `args.arg` — the causal edge
    of replication, drawn as an arrow in the viewer.

`--assert-causal` makes the script exit non-zero unless the merged
trace contains at least one such leader→follower edge whose follower
apply starts at-or-after the leader ship (on the aligned timeline),
with the shipping transaction's `commit` span present on the leader.
If any node recorded a `standing_push` span, it must nest inside a
`commit` span on the same node (pushes happen in the committing
thread's snapshot hooks). CI's server-smoke uses this to prove the
propagation plumbing end to end.

Stdlib-only. Exit: 0 on success, 1 on assertion failure, 2 on usage.
"""

import json
import sys


def usage():
    sys.exit("usage: stitch_trace.py [--out MERGED.json] [--assert-causal] NAME=FILE...")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        sys.exit(f"stitch_trace.py: {path}: not a Chrome trace (no traceEvents)")
    anchor = doc.get("otherData", {}).get("wallClockAnchorMicros", 0)
    return doc["traceEvents"], anchor


def spans(events, name, phases=("X", "B")):
    """All events with the given span name in the given phases."""
    return [e for e in events if e.get("name") == name and e.get("ph") in phases]


def main():
    out_path = "merged_trace.json"
    assert_causal = False
    inputs = []
    args = iter(sys.argv[1:])
    for a in args:
        if a == "--out":
            out_path = next(args, None) or usage()
        elif a == "--assert-causal":
            assert_causal = True
        elif "=" in a:
            name, _, path = a.partition("=")
            inputs.append((name, path))
        else:
            usage()
    if not inputs:
        usage()

    nodes = []  # (name, pid, shifted events)
    anchors = {}
    for i, (name, path) in enumerate(inputs):
        events, anchor = load(path)
        nodes.append((name, i + 1, events))
        anchors[name] = anchor
    base = min(anchors.values())

    merged = []
    for name, pid, events in nodes:
        shift = anchors[name] - base  # µs onto the earliest node's clock
        merged.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        for e in events:
            e = dict(e)
            e["pid"] = pid
            if "ts" in e:
                e["ts"] = e["ts"] + shift
            merged.append(e)

    # Causal edges: leader repl_ship --txn--> follower repl_apply. After
    # the per-node shift both sides are on one clock, so the flow events
    # carry the aligned timestamps directly.
    by_node = {name: [e for e in merged if e.get("pid") == pid and e.get("ph") != "M"]
               for name, pid, _ in nodes}
    edges = []
    ships = {}  # txn id -> (node, event)
    for name, pid, _ in nodes:
        for e in spans(by_node[name], "repl_ship"):
            ships.setdefault(e.get("args", {}).get("arg"), []).append((name, e))
    for name, pid, _ in nodes:
        for e in spans(by_node[name], "repl_apply"):
            txn = e.get("args", {}).get("arg")
            for ship_node, ship in ships.get(txn, []):
                if ship_node == name:
                    continue  # a node cannot replicate to itself
                edges.append((txn, ship_node, ship, name, e))

    for txn, _, ship, _, apply_ev in edges:
        flow = {"name": "repl", "cat": "repl", "id": txn, "args": {"txn": txn}}
        merged.append({**flow, "ph": "s", "pid": ship["pid"],
                       "tid": ship.get("tid", 0), "ts": ship["ts"]})
        merged.append({**flow, "ph": "f", "bp": "e", "pid": apply_ev["pid"],
                       "tid": apply_ev.get("tid", 0), "ts": apply_ev["ts"]})

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"displayTimeUnit": "ms", "traceEvents": merged}, f)
    print(
        f"stitched {len(nodes)} node(s), {len(merged)} events, "
        f"{len(edges)} replication edge(s) -> {out_path}"
    )

    if not assert_causal:
        return

    def enclosing(events, inner, name):
        """An X span named `name` on the same node/thread covering `inner`."""
        for e in spans(events, name):
            if e.get("tid") != inner.get("tid") or e.get("ph") != "X":
                continue
            start, end = e["ts"], e["ts"] + e.get("dur", 0)
            if start <= inner["ts"] and inner["ts"] <= end:
                return e
        return None

    if not edges:
        sys.exit("stitch_trace.py: no repl_ship -> repl_apply edge found")
    for txn, ship_node, ship, apply_node, apply_ev in edges:
        if apply_ev["ts"] < ship["ts"]:
            sys.exit(
                f"stitch_trace.py: txn {txn}: {apply_node} applied at {apply_ev['ts']:.0f}µs "
                f"before {ship_node} shipped at {ship['ts']:.0f}µs"
            )
        commits = [c for c in spans(by_node[ship_node], "commit")
                   if c.get("args", {}).get("arg") == txn]
        if not commits:
            sys.exit(
                f"stitch_trace.py: txn {txn}: no commit span on {ship_node} "
                f"for the shipped segment"
            )
    print(f"causal check OK: {len(edges)} edge(s) ship-before-apply with leader commit spans")

    # Pushes are instant events ("i"), recorded by the committing thread
    # while its snapshot hooks fan deltas out to subscribers.
    pushes = [(name, e) for name, pid, _ in nodes
              for e in spans(by_node[name], "standing_push", ("X", "B", "i"))]
    if pushes:
        for name, push in pushes:
            if enclosing(by_node[name], push, "commit") is None:
                sys.exit(
                    f"stitch_trace.py: standing_push on {name} at {push['ts']:.0f}µs "
                    f"is not nested in a commit span"
                )
        print(f"standing check OK: {len(pushes)} push span(s) nested in commits")


if __name__ == "__main__":
    main()
