#!/usr/bin/env python3
"""Validate BENCH_*.json bench artifacts.

Usage: validate_bench.py [FILE...]

With no arguments, validates every BENCH_*.json in the current
directory. Stdlib-only (CI runners have no jsonschema package). Checks,
for every artifact:

  - well-formed JSON object, no duplicate keys
  - schema_version present, equal to the supported version, and the
    *first* key of the object (experiment second) — artifacts are
    versioned before they are anything else, so a reader can dispatch
    on the opening bytes
  - experiment present and known
  - the experiment's required keys present with the right JSON types,
    appearing in the artifact in spec order (new keys may interleave,
    but the required ones form an in-order subsequence — dashboards
    diff these files textually)
  - identical_results is true (a bench that changed answers is a bug,
    not a regression)

Acceptance thresholds (speedup targets) are *reported*, not enforced:
they are workload- and machine-sensitive, and the markdown already
flags them OK/UNEXPECTED. Exits non-zero with a path-qualified message
on the first structural violation.
"""

import glob
import json
import sys

SUPPORTED_SCHEMA_VERSION = 1

NUM = (int, float)

# experiment -> {key: required type(s)}
REQUIRED = {
    "memo_cache": {
        "snapshots": int,
        "nomemo_qq_cost_ms": NUM,
        "cold_qq_cost_ms": NUM,
        "warm_qq_cost_ms": NUM,
        "warm_speedup_vs_nomemo": NUM,
        "warm_hit_rate": NUM,
        "identical_results": bool,
        "memo_hits": int,
        "memo_misses": int,
        "phases": dict,
    },
    "prune_scan": {
        "rows": int,
        "snapshots": int,
        "lanes": list,
        "delta_1pct": dict,
        "speedup_at_1pct": NUM,
        "identical_results": bool,
        "pass": bool,
    },
    "repl_scaleout": {
        "rows": int,
        "backlog_snapshots": int,
        "rounds_per_node": int,
        "followers": int,
        "seed_ms": NUM,
        "leader_qps": NUM,
        "follower_qps": list,
        "aggregate_qps": NUM,
        "speedup": NUM,
        "identical_results": bool,
        "pass": bool,
    },
    "standing_maintenance": {
        "rows": int,
        "backlog_snapshots": int,
        "churn_rounds": int,
        "seed_ms": NUM,
        "batch_total_ms": NUM,
        "incremental_total_ms": NUM,
        "speedup": NUM,
        "pages_scanned": int,
        "pages_skipped": int,
        "rows_pushed": int,
        "identical_results": bool,
        "pass": bool,
    },
}

PRUNE_LANE = {
    "selectivity": str,
    "threshold": int,
    "baseline_cost_ms": NUM,
    "pruned_cost_ms": NUM,
    "speedup": NUM,
    "pagelog_reads_baseline": int,
    "pagelog_reads_pruned": int,
    "pages_pruned": int,
    "identical_results": bool,
}


def fail(path, msg):
    sys.exit(f"bench artifact invalid at {path}: {msg}")


class OrderedObj(dict):
    """A dict that remembers raw key order and rejects duplicates."""

    def __init__(self, pairs):
        super().__init__(pairs)
        self.key_order = [k for k, _ in pairs]
        if len(self.key_order) != len(set(self.key_order)):
            dupes = sorted({k for k in self.key_order if self.key_order.count(k) > 1})
            raise ValueError(f"duplicate keys: {dupes}")


def check_key_order(obj, spec, path):
    """Required keys must appear in spec order (as a subsequence)."""
    order = getattr(obj, "key_order", list(obj))
    positions = {k: i for i, k in enumerate(order)}
    last = -1
    last_key = None
    for key in spec:
        at = positions.get(key)
        if at is None:
            continue  # presence is check_keys' job
        if at < last:
            fail(path, f"key {key!r} must come after {last_key!r} (spec order)")
        last, last_key = at, key


def check_keys(obj, spec, path):
    for key, typ in spec.items():
        if key not in obj:
            fail(path, f"missing key {key!r}")
        value = obj[key]
        if isinstance(value, bool) and typ is not bool:
            fail(f"{path}.{key}", f"expected {typ}, got bool")
        if not isinstance(value, typ):
            fail(f"{path}.{key}", f"expected {typ}, got {type(value).__name__}")


def validate(name):
    try:
        with open(name, encoding="utf-8") as f:
            doc = json.load(f, object_pairs_hook=OrderedObj)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        fail(name, str(e))
    if not isinstance(doc, dict):
        fail(name, "top level is not an object")
    version = doc.get("schema_version")
    if version != SUPPORTED_SCHEMA_VERSION:
        fail(f"{name}.schema_version", f"expected {SUPPORTED_SCHEMA_VERSION}, got {version!r}")
    order = doc.key_order
    if order[:2] != ["schema_version", "experiment"]:
        fail(name, f"first keys must be schema_version, experiment; got {order[:2]}")
    experiment = doc.get("experiment")
    if experiment not in REQUIRED:
        fail(f"{name}.experiment", f"unknown experiment {experiment!r}")
    check_keys(doc, REQUIRED[experiment], name)
    check_key_order(doc, REQUIRED[experiment], name)
    if not doc["identical_results"]:
        fail(f"{name}.identical_results", "lanes returned different answers")
    if experiment == "repl_scaleout":
        qps = doc["follower_qps"]
        if len(qps) != doc["followers"]:
            fail(f"{name}.follower_qps", f"expected {doc['followers']} entries, got {len(qps)}")
        for i, q in enumerate(qps):
            if isinstance(q, bool) or not isinstance(q, NUM):
                fail(f"{name}.follower_qps[{i}]", f"expected number, got {type(q).__name__}")
    if experiment == "prune_scan":
        if not doc["lanes"]:
            fail(f"{name}.lanes", "empty sweep")
        for i, lane in enumerate(doc["lanes"]):
            if not isinstance(lane, dict):
                fail(f"{name}.lanes[{i}]", "lane is not an object")
            check_keys(lane, PRUNE_LANE, f"{name}.lanes[{i}]")
            check_key_order(lane, PRUNE_LANE, f"{name}.lanes[{i}]")
            if not lane["identical_results"]:
                fail(f"{name}.lanes[{i}]", "pruned lane returned different answers")
    print(f"{name}: OK ({experiment}, schema_version {version})")


def main():
    names = sys.argv[1:] or sorted(glob.glob("BENCH_*.json"))
    if not names:
        sys.exit("validate_bench.py: no BENCH_*.json artifacts found")
    for name in names:
        validate(name)


if __name__ == "__main__":
    main()
