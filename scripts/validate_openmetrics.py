#!/usr/bin/env python3
"""Validate a Prometheus text-exposition page (rqld's /metrics).

Usage: validate_openmetrics.py [FILE]

Reads FILE (or stdin) and checks the structural invariants a scraper
relies on. Stdlib-only (CI runners have no prometheus_client):

  - every sample belongs to a metric family declared by a preceding
    `# TYPE` line, and every family carries a `# HELP` line
  - family names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*) and declared once
  - counter samples end in `_total`
  - histogram families expose `_bucket{le=...}`, `_sum` and `_count`
    series; bucket `le` bounds strictly increase, cumulative counts are
    non-decreasing, and the `+Inf` bucket equals `_count`
  - sample values parse as numbers

Also asserts the page carries the conventional `rql_build_info` and
`rql_uptime_seconds` families, so a scrape that silently lost the
registry wiring fails loudly. Exits non-zero with a line-qualified
message on the first violation.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, value — labels are never nested, so a
# non-greedy brace match is enough for exposition we generate ourselves.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*?\})?\s+(\S+)$")


def fail(lineno, msg):
    sys.exit(f"openmetrics invalid at line {lineno}: {msg}")


def parse_value(raw, lineno):
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        fail(lineno, f"unparseable sample value {raw!r}")


def family_of(sample_name, types):
    """Map a sample series name back to its declared family."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    return None


def main():
    if len(sys.argv) > 2:
        sys.exit(__doc__.strip().splitlines()[2])
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    types = {}  # family -> kind
    helps = set()
    # histogram family -> list of (le, cumulative, lineno)
    buckets = {}
    counts = {}  # histogram family -> (_count value, lineno)
    samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                fail(lineno, "HELP line without text")
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail(lineno, f"malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if not NAME_RE.match(name):
                fail(lineno, f"illegal metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                fail(lineno, f"unknown metric type {kind!r}")
            if name in types:
                fail(lineno, f"duplicate TYPE declaration for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample line: {line!r}")
        name, labels, raw = m.groups()
        value = parse_value(raw, lineno)
        samples += 1
        family = family_of(name, types)
        if family is None:
            fail(lineno, f"sample {name!r} has no preceding TYPE declaration")
        kind = types[family]
        if kind == "counter" and not name.endswith("_total"):
            fail(lineno, f"counter sample {name!r} does not end in _total")
        if kind == "counter" and value < 0:
            fail(lineno, f"negative counter {name!r} = {value}")
        if kind == "histogram":
            if name.endswith("_bucket"):
                lm = re.search(r'le="([^"]*)"', labels or "")
                if not lm:
                    fail(lineno, f"histogram bucket without le label: {line!r}")
                le = parse_value(lm.group(1), lineno)
                buckets.setdefault(family, []).append((le, value, lineno))
            elif name.endswith("_count"):
                counts[family] = (value, lineno)

    for family, series in buckets.items():
        prev_le, prev_cum = -math.inf, -1
        for le, cum, lineno in series:
            if le <= prev_le:
                fail(lineno, f"{family}: le={le} does not increase past {prev_le}")
            if cum < prev_cum:
                fail(lineno, f"{family}: cumulative count {cum} decreased from {prev_cum}")
            prev_le, prev_cum = le, cum
        if prev_le != math.inf:
            fail(series[-1][2], f"{family}: no +Inf bucket")
        if family not in counts:
            fail(series[-1][2], f"{family}: no _count series")
        count, lineno = counts[family]
        if prev_cum != count:
            fail(lineno, f"{family}: +Inf bucket {prev_cum} != _count {count}")

    missing_help = set(types) - helps
    if missing_help:
        sys.exit(f"openmetrics invalid: families without HELP: {sorted(missing_help)}")
    for required in ("rql_build_info", "rql_uptime_seconds"):
        if required not in types:
            sys.exit(f"openmetrics invalid: required family {required} missing")
    if samples == 0:
        sys.exit("openmetrics invalid: no samples")
    print(
        f"openmetrics OK: {len(types)} families, {samples} samples, "
        f"{len(buckets)} histogram(s)"
    )


if __name__ == "__main__":
    main()
