#!/usr/bin/env python3
"""Validate `rqlcheck --format sarif` output against the vendored schema.

Usage: validate_sarif.py LOG.sarif [SCHEMA.json] [--expect-fixes]

Stdlib-only (CI runners have no jsonschema package): implements the
small subset of JSON Schema the vendored schema actually uses — type,
required, enum, const, minimum, minLength, properties and items — and
then cross-checks SARIF semantics the schema cannot express:

  * version is exactly 2.1.0;
  * every result's ruleId names a rule in tool.driver.rules, and its
    ruleIndex points at that same rule;
  * every artifactLocation index points into run.artifacts, and the URI
    at that index matches;
  * with --expect-fixes, at least one result carries a fix (the CI step
    lints the bad corpus, which always produces fixable findings).

Exits non-zero with a path-qualified message on the first violation.
"""

import json
import sys


def fail(path, msg):
    sys.exit(f"sarif schema violation at {path or '$'}: {msg}")


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    sys.exit(f"schema bug: unknown type {expected!r}")


def validate(value, schema, path):
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "type" in schema and not type_ok(value, schema["type"]):
        fail(path, f"expected {schema['type']}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str):
        if len(value) < schema["minLength"]:
            fail(path, f"length {len(value)} < minLength {schema['minLength']}")
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                fail(path, f"missing required property {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                validate(value[name], sub, f"{path}.{name}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def check_semantics(log, expect_fixes):
    """SARIF cross-references the schema subset cannot express."""
    fix_count = 0
    for ri, run in enumerate(log["runs"]):
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [r["id"] for r in rules]
        artifacts = run.get("artifacts", [])
        for i, result in enumerate(run["results"]):
            where = f"$.runs[{ri}].results[{i}]"
            rule_id = result["ruleId"]
            if rule_id not in rule_ids:
                fail(where, f"ruleId {rule_id!r} not in tool.driver.rules")
            idx = result.get("ruleIndex")
            if idx is not None and (idx >= len(rules) or rules[idx]["id"] != rule_id):
                fail(where, f"ruleIndex {idx} does not point at {rule_id!r}")
            for li, loc in enumerate(result["locations"]):
                art = loc["physicalLocation"]["artifactLocation"]
                aidx = art.get("index")
                if aidx is not None:
                    if aidx >= len(artifacts):
                        fail(f"{where}.locations[{li}]", f"artifact index {aidx} out of range")
                    uri = artifacts[aidx]["location"]["uri"]
                    if uri != art["uri"]:
                        fail(
                            f"{where}.locations[{li}]",
                            f"artifact uri {art['uri']!r} != artifacts[{aidx}] {uri!r}",
                        )
            fix_count += len(result.get("fixes", []))
    if expect_fixes and fix_count == 0:
        sys.exit("sarif semantic violation: --expect-fixes given but no result carries a fix")
    return fix_count


def main():
    argv = sys.argv[1:]
    expect_fixes = "--expect-fixes" in argv
    argv = [a for a in argv if a != "--expect-fixes"]
    if len(argv) not in (1, 2):
        sys.exit(__doc__.strip())
    log_path = argv[0]
    schema_path = argv[1] if len(argv) == 2 else "tests/sarif_min.schema.json"
    with open(log_path) as f:
        log = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    validate(log, schema, "")
    fix_count = check_semantics(log, expect_fixes)
    results = sum(len(run["results"]) for run in log["runs"])
    rules = sum(len(run["tool"]["driver"]["rules"]) for run in log["runs"])
    print(f"{log_path}: OK — {results} result(s), {rules} rule(s), {fix_count} fix(es)")


if __name__ == "__main__":
    main()
