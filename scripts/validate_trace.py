#!/usr/bin/env python3
"""Validate an RQL_TRACE Chrome-trace export against the checked-in schema.

Usage: validate_trace.py TRACE.json [SCHEMA.json]

Stdlib-only (CI runners have no jsonschema package): implements the
small subset of JSON Schema the checked-in schema actually uses —
type, required, enum, const, minimum, minLength, properties, items,
allOf and if/then. Exits non-zero with a path-qualified message on the
first violation.
"""

import json
import sys


def fail(path, msg):
    sys.exit(f"trace schema violation at {path or '$'}: {msg}")


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    sys.exit(f"schema bug: unknown type {expected!r}")


def matches(value, schema):
    """Non-asserting check used by if/then."""
    try:
        validate(value, schema, "", probe=True)
        return True
    except SystemExit:
        raise
    except _Mismatch:
        return False


class _Mismatch(Exception):
    pass


def report(path, msg, probe):
    if probe:
        raise _Mismatch(msg)
    fail(path, msg)


def validate(value, schema, path, probe=False):
    if "const" in schema and value != schema["const"]:
        report(path, f"expected {schema['const']!r}, got {value!r}", probe)
    if "type" in schema and not type_ok(value, schema["type"]):
        report(path, f"expected {schema['type']}, got {type(value).__name__}", probe)
    if "enum" in schema and value not in schema["enum"]:
        report(path, f"{value!r} not in {schema['enum']}", probe)
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            report(path, f"{value} < minimum {schema['minimum']}", probe)
    if "minLength" in schema and isinstance(value, str):
        if len(value) < schema["minLength"]:
            report(path, f"length {len(value)} < minLength {schema['minLength']}", probe)
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                report(path, f"missing required property {name!r}", probe)
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                validate(value[name], sub, f"{path}.{name}", probe)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", probe)
    for branch in schema.get("allOf", []):
        if "if" in branch:
            try:
                if matches(value, branch["if"]):
                    validate(value, branch.get("then", {}), path, probe)
            except _Mismatch:
                pass
        else:
            validate(value, branch, path, probe)


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__.strip())
    trace_path = sys.argv[1]
    schema_path = sys.argv[2] if len(sys.argv) == 3 else "tests/chrome_trace.schema.json"
    with open(trace_path) as f:
        trace = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    validate(trace, schema, "")
    events = trace.get("traceEvents", [])
    if not events:
        sys.exit(f"{trace_path}: traceEvents is empty — the server recorded nothing")
    phases = {e["ph"] for e in events}
    print(
        f"{trace_path}: OK — {len(events)} events, "
        f"phases {sorted(phases)}, "
        f"{len({e['tid'] for e in events})} thread(s)"
    )


if __name__ == "__main__":
    main()
