//! `rql`: command-line client for a running `rqld` server.
//!
//! Usage:
//!
//! ```text
//! rql [--addr ADDR] [--no-memo] [--profile] run <file.rql>...   execute programs, print tables
//! rql [--addr ADDR] [--no-memo] [--profile] exec '<program>'    execute an inline program
//! rql [--addr ADDR] check [--json] <file.rql>...   analyzer pre-flight (PREPARE)
//! rql [--addr ADDR] status [--flight]     one-line server status (+flight recorder)
//! rql [--addr ADDR] metrics [--json]      metrics snapshot
//! rql [--addr ADDR] replstatus [--json]   replication role, phase and lag
//! rql [--addr ADDR] cancel <session-id>   cancel another session's query
//! rql [--addr ADDR] register '<MAINTAIN QUERY …>'   register a standing query
//! rql [--addr ADDR] unregister <name>     unregister a standing query
//! rql [--addr ADDR] watch [--frames N] <name>   subscribe and print pushed deltas
//! rql [--addr ADDR] shutdown              drain and stop the server
//! ```
//!
//! `watch` prints the full maintained table, then one line per pushed
//! delta row (`+`/`-` prefixed) until the stream ends with a terminal
//! END frame — or, with `--frames N`, exits success after N delta
//! frames (used by scripted smoke tests).
//!
//! `--profile` switches `run`/`exec` onto the `PROFILE` wire verb: the
//! server executes the program as usual and additionally returns the
//! per-snapshot cost table (pages read, pages shared-skipped, memo
//! outcome, wall/CPU time), printed after the results.
//!
//! `--trace-id HEX` (32 hex digits = 16 bytes) attaches a
//! client-generated trace id to every `run`/`exec`/`check` request on
//! this invocation. The server records it as a `trace_ctx` instant in
//! its trace ring, so `scripts/stitch_trace.py` can correlate this
//! client's requests across the per-node `RQL_TRACE` exports.
//!
//! Exit status: 0 on success, 1 when the server reports an error or
//! `check` finds error diagnostics, 2 on usage/connection problems.

use std::process::ExitCode;

use rql_repro::rqld::{Client, ClientError, SubscriptionEvent, WireResult};

const USAGE: &str = "usage: rql [--addr ADDR] [--no-memo] [--profile] [--trace-id HEX32] \
                     <run FILE...|exec PROGRAM|check [--json] FILE...|status [--flight]|metrics [--json]\
                     |replstatus [--json]|cancel ID|register STATEMENT|unregister NAME\
                     |watch [--frames N] NAME|shutdown>";

/// Parse `--trace-id`'s value: exactly 32 hex digits → 16 bytes.
fn parse_trace_id(hex: &str) -> Option<[u8; 16]> {
    let bytes = hex.as_bytes();
    if bytes.len() != 32 {
        return None;
    }
    let mut id = [0u8; 16];
    for (i, chunk) in bytes.chunks_exact(2).enumerate() {
        let s = std::str::from_utf8(chunk).ok()?;
        id[i] = u8::from_str_radix(s, 16).ok()?;
    }
    Some(id)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7464".to_owned();
    let mut no_memo = false;
    let mut profile = false;
    let mut trace_id: Option<[u8; 16]> = None;
    loop {
        if args.first().is_some_and(|a| a == "--addr") {
            if args.len() < 2 {
                eprintln!("--addr needs a value");
                return ExitCode::from(2);
            }
            addr = args[1].clone();
            args.drain(..2);
        } else if args.first().is_some_and(|a| a == "--no-memo") {
            no_memo = true;
            args.remove(0);
        } else if args.first().is_some_and(|a| a == "--profile") {
            profile = true;
            args.remove(0);
        } else if args.first().is_some_and(|a| a == "--trace-id") {
            if args.len() < 2 {
                eprintln!("--trace-id needs a value");
                return ExitCode::from(2);
            }
            let Some(id) = parse_trace_id(&args[1]) else {
                eprintln!(
                    "--trace-id: expected exactly 32 hex digits, got {:?}",
                    args[1]
                );
                return ExitCode::from(2);
            };
            trace_id = Some(id);
            args.drain(..2);
        } else {
            break;
        }
    }
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];

    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rql: connect {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    client.set_trace_id(trace_id);

    let outcome = match command.as_str() {
        "run" => cmd_run(&mut client, rest, no_memo, profile),
        "exec" => match rest {
            [program] => run_one(&mut client, program, "<inline>", no_memo, profile),
            _ => usage(),
        },
        "check" => cmd_check(&mut client, rest),
        "status" => {
            let flight = rest.iter().any(|a| a == "--flight");
            let text = if flight {
                client.status_flight()
            } else {
                client.status()
            };
            text.map(|s| println!("{s}")).map_err(fail)
        }
        "metrics" => {
            let json = rest.iter().any(|a| a == "--json");
            client
                .metrics(json)
                .map(|s| print!("{s}{}", if s.ends_with('\n') { "" } else { "\n" }))
                .map_err(fail)
        }
        "replstatus" => {
            let json = rest.iter().any(|a| a == "--json");
            client
                .replstatus(json)
                .map(|s| print!("{s}{}", if s.ends_with('\n') { "" } else { "\n" }))
                .map_err(fail)
        }
        "cancel" => match rest {
            [id] => match id.parse::<u64>() {
                Ok(id) => client
                    .cancel(id)
                    .map(|()| println!("cancelled session {id}"))
                    .map_err(fail),
                Err(_) => usage(),
            },
            _ => usage(),
        },
        "register" => match rest {
            [statement] => client
                .register(statement)
                .map(|ack| println!("{ack}"))
                .map_err(fail),
            _ => usage(),
        },
        "unregister" => match rest {
            [name] => client
                .unregister(name)
                .map(|()| println!("unregistered {name}"))
                .map_err(fail),
            _ => usage(),
        },
        "watch" => cmd_watch(&mut client, rest),
        "shutdown" => client
            .shutdown()
            .map(|()| println!("server draining"))
            .map_err(fail),
        "--help" | "-h" => usage(),
        _ => usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn usage() -> Result<(), ExitCode> {
    eprintln!("{USAGE}");
    Err(ExitCode::from(2))
}

fn fail(e: ClientError) -> ExitCode {
    eprintln!("rql: {e}");
    ExitCode::FAILURE
}

fn cmd_run(
    client: &mut Client,
    files: &[String],
    no_memo: bool,
    profile: bool,
) -> Result<(), ExitCode> {
    if files.is_empty() {
        return usage();
    }
    for file in files {
        let src = std::fs::read_to_string(file).map_err(|e| {
            eprintln!("rql: {file}: {e}");
            ExitCode::from(2)
        })?;
        run_one(client, &src, file, no_memo, profile)?;
    }
    Ok(())
}

fn run_one(
    client: &mut Client,
    program: &str,
    name: &str,
    no_memo: bool,
    profile: bool,
) -> Result<(), ExitCode> {
    if profile {
        let profiled = client.profile(program, no_memo).map_err(fail)?;
        print_result(name, &profiled.result);
        print!("{}", profiled.human);
        if !profiled.human.ends_with('\n') {
            println!();
        }
    } else {
        let result = client.run_opts(program, no_memo).map_err(fail)?;
        print_result(name, &result);
    }
    Ok(())
}

/// `watch NAME`: subscribe, print the opening table, then stream pushed
/// deltas until the terminal END frame (or after `--frames N` deltas).
fn cmd_watch(client: &mut Client, rest: &[String]) -> Result<(), ExitCode> {
    let mut frames_limit: Option<u64> = None;
    let mut name: Option<&String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--frames" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                return usage();
            };
            frames_limit = Some(n);
        } else if name.is_none() {
            name = Some(arg);
        } else {
            return usage();
        }
    }
    let Some(name) = name else {
        return usage();
    };
    let initial = client.subscribe(name).map_err(fail)?;
    print_result(&format!("watch {name}"), &initial);
    let mut seen = 0u64;
    loop {
        if frames_limit.is_some_and(|n| seen >= n) {
            println!("-- {seen} delta frame(s), detaching");
            return Ok(());
        }
        match client.next_event().map_err(fail)? {
            SubscriptionEvent::Delta(d) => {
                seen += 1;
                println!("== snapshot {}", d.snap_id);
                for row in &d.removed {
                    let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
                    println!("- {}", cells.join(" | "));
                }
                for row in &d.added {
                    let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
                    println!("+ {}", cells.join(" | "));
                }
            }
            SubscriptionEvent::End { reason, .. } => {
                println!("-- subscription ended: {reason}");
                return Ok(());
            }
        }
    }
}

fn cmd_check(client: &mut Client, files: &[String]) -> Result<(), ExitCode> {
    let json = files.iter().any(|a| a == "--json");
    let files: Vec<&String> = files.iter().filter(|a| *a != "--json").collect();
    if files.is_empty() {
        return usage();
    }
    let mut errors = 0usize;
    let mut json_items: Vec<String> = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(file).map_err(|e| {
            eprintln!("rql: {file}: {e}");
            ExitCode::from(2)
        })?;
        let diagnostics = client.prepare(&src).map_err(fail)?;
        for d in &diagnostics {
            let severity = match d.severity {
                2 => "error",
                1 => "warning",
                _ => "info",
            };
            if d.severity == 2 {
                errors += 1;
            }
            if json {
                json_items.push(diag_json(file, d, severity));
                continue;
            }
            let at = d
                .span
                .map(|(s, e)| format!(" (bytes {s}..{e})"))
                .unwrap_or_default();
            println!("{file}: {severity}[{}]: {}{at}", d.code, d.message);
            if let Some(fix) = &d.fix {
                println!(
                    "{file}:   fix ({}): replace bytes {}..{} with {:?}",
                    applicability_name(fix.applicability),
                    fix.start,
                    fix.end,
                    fix.replacement
                );
            }
        }
        if !json && diagnostics.is_empty() {
            println!("{file}: clean");
        }
    }
    if json {
        println!("[{}]", json_items.join(","));
    }
    if errors > 0 {
        Err(ExitCode::FAILURE)
    } else {
        Ok(())
    }
}

fn applicability_name(a: u8) -> &'static str {
    match a {
        0 => "machine-applicable",
        1 => "maybe-incorrect",
        _ => "has-placeholders",
    }
}

/// One diagnostic as a JSON object (used by `check --json`, which CI
/// scripts parse to assert PREPARE round-trips fixes over the wire).
fn diag_json(file: &str, d: &rql_repro::rqld::WireDiagnostic, severity: &str) -> String {
    let mut obj = format!(
        "{{\"file\":{},\"code\":{},\"severity\":{},\"message\":{}",
        json_str(file),
        json_str(&d.code),
        json_str(severity),
        json_str(&d.message),
    );
    if let Some((s, e)) = d.span {
        obj.push_str(&format!(",\"span\":[{s},{e}]"));
    }
    if let Some(fix) = &d.fix {
        obj.push_str(&format!(
            ",\"fix\":{{\"span\":[{},{}],\"replacement\":{},\"applicability\":{}}}",
            fix.start,
            fix.end,
            json_str(&fix.replacement),
            json_str(applicability_name(fix.applicability)),
        ));
    }
    obj.push('}');
    obj
}

/// JSON string literal with full escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_result(name: &str, result: &WireResult) {
    for table in &result.tables {
        println!("{}", table.columns.join(" | "));
        for row in &table.rows {
            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
            println!("{}", cells.join(" | "));
        }
        println!();
    }
    for report in &result.reports {
        println!(
            "-- {}: {} iterations, {} Qq rows, {} pages delta-skipped, {} pages pruned, \
             {} pagelog reads, {} cache hits",
            report.table,
            report.iterations,
            report.qq_rows,
            report.pages_skipped_delta,
            report.pages_pruned_filter,
            report.pagelog_reads,
            report.cache_hits
        );
    }
    if !result.snapshots.is_empty() {
        let ids: Vec<String> = result.snapshots.iter().map(ToString::to_string).collect();
        println!("-- snapshots declared: {}", ids.join(", "));
    }
    println!("-- {name}: ok in {}µs", result.elapsed_micros);
}
