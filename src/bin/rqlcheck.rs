//! `rqlcheck`: lint `.rql` programs without opening a store.
//!
//! Usage:
//!
//! ```text
//! rqlcheck [--deny-warnings] [--quiet] <file-or-dir>...
//! ```
//!
//! Directories are searched recursively for `.rql` files. Each program
//! is parsed and analyzed against an empty snapshotable catalog plus the
//! default auxiliary catalog (`SnapIds` and the mechanism UDFs) — the
//! program's own DDL builds up the rest, exactly as the runtime would.
//!
//! Exit status: 0 when clean, 1 when any error diagnostic was produced
//! (or any warning, under `--deny-warnings`), 2 on usage/IO problems.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rql_repro::rql::analyze::{analyze_program, parse_program, SchemaEnv, Severity};

struct Options {
    deny_warnings: bool,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        quiet: false,
        paths: Vec::new(),
    };
    for a in args {
        match a.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: rqlcheck [--deny-warnings] [--quiet] <file-or-dir>...".into())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err("usage: rqlcheck [--deny-warnings] [--quiet] <file-or-dir>...".into());
    }
    Ok(opts)
}

/// Collect `.rql` files from a path (recursing into directories), in
/// sorted order for deterministic output.
fn collect(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rql") {
        out.push(path.to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for path in &opts.paths {
        if path.is_file() {
            // Explicitly named files are checked regardless of extension.
            files.push(path.clone());
            continue;
        }
        if let Err(e) = collect(path, &mut files) {
            eprintln!("rqlcheck: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("rqlcheck: no .rql files found");
        return ExitCode::from(2);
    }

    let (mut errors, mut warnings) = (0usize, 0usize);
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rqlcheck: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let name = file.display().to_string();
        let diagnostics = match parse_program(&src) {
            Err(diag) => vec![*diag],
            Ok(program) => {
                analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default()).diagnostics
            }
        };
        for d in &diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
            if !opts.quiet || d.severity != Severity::Info {
                println!("{}\n", d.render(&name, &src));
            }
        }
    }

    if !opts.quiet {
        println!(
            "rqlcheck: {} file{} checked, {errors} error{}, {warnings} warning{}",
            files.len(),
            if files.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
