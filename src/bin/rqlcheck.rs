//! `rqlcheck`: lint `.rql` programs without opening a store.
//!
//! Usage:
//!
//! ```text
//! rqlcheck [--deny-warnings] [--quiet] [--fix] [--format text|sarif] <file-or-dir>...
//! ```
//!
//! Directories are searched recursively for `.rql` files. Each program
//! is parsed and analyzed against an empty snapshotable catalog plus the
//! default auxiliary catalog (`SnapIds` and the mechanism UDFs) — the
//! program's own DDL builds up the rest, exactly as the runtime would.
//!
//! `--fix` applies every machine-applicable fix and re-analyzes to a
//! fixpoint, rewriting the file in place; remaining diagnostics are then
//! reported against the fixed text. `--format sarif` emits a single
//! SARIF 2.1.0 log (all files, one run) on stdout instead of the human
//! rendering.
//!
//! Exit status: 0 when clean, 1 when any error diagnostic was produced
//! (or any warning, under `--deny-warnings`), 2 on usage/IO problems.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rql_repro::rql::analyze::{
    analyze_program, fix_program, parse_program, render_sarif, SarifFile, SchemaEnv, Severity,
};

const USAGE: &str =
    "usage: rqlcheck [--deny-warnings] [--quiet] [--fix] [--format text|sarif] <file-or-dir>...";

#[derive(PartialEq)]
enum Format {
    Text,
    Sarif,
}

struct Options {
    deny_warnings: bool,
    quiet: bool,
    fix: bool,
    format: Format,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        quiet: false,
        fix: false,
        format: Format::Text,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--fix" => opts.fix = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("sarif") => opts.format = Format::Sarif,
                Some(other) => return Err(format!("unknown format {other} (text|sarif)")),
                None => return Err("--format requires an argument (text|sarif)".into()),
            },
            "--help" | "-h" => return Err(USAGE.into()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err(USAGE.into());
    }
    Ok(opts)
}

/// Collect `.rql` files from a path (recursing into directories), in
/// sorted order for deterministic output.
fn collect(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rql") {
        out.push(path.to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for path in &opts.paths {
        if path.is_file() {
            // Explicitly named files are checked regardless of extension.
            files.push(path.clone());
            continue;
        }
        if let Err(e) = collect(path, &mut files) {
            eprintln!("rqlcheck: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("rqlcheck: no .rql files found");
        return ExitCode::from(2);
    }

    let (mut errors, mut warnings, mut fixed) = (0usize, 0usize, 0usize);
    // (path, final source, diagnostics) per file, for SARIF rendering.
    let mut checked: Vec<(String, String, Vec<_>)> = Vec::new();
    for file in &files {
        let mut src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rqlcheck: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let name = file.display().to_string();
        if opts.fix {
            let outcome = fix_program(&src, &SchemaEnv::new(), &SchemaEnv::aux_default());
            if outcome.applied > 0 {
                if let Err(e) = std::fs::write(file, &outcome.src) {
                    eprintln!("rqlcheck: {}: {e}", file.display());
                    return ExitCode::from(2);
                }
                if !opts.quiet && opts.format == Format::Text {
                    println!(
                        "rqlcheck: fixed {} issue{} in {} ({} round{})",
                        outcome.applied,
                        if outcome.applied == 1 { "" } else { "s" },
                        name,
                        outcome.iterations,
                        if outcome.iterations == 1 { "" } else { "s" },
                    );
                }
                fixed += outcome.applied;
                src = outcome.src;
            }
            if !outcome.converged {
                eprintln!("rqlcheck: {name}: fixes did not converge; leaving remaining issues");
            }
        }
        let diagnostics = match parse_program(&src) {
            Err(diag) => vec![*diag],
            Ok(program) => {
                analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default()).diagnostics
            }
        };
        for d in &diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
            if opts.format == Format::Text && (!opts.quiet || d.severity != Severity::Info) {
                println!("{}\n", d.render(&name, &src));
            }
        }
        checked.push((name, src, diagnostics));
    }

    if opts.format == Format::Sarif {
        let sarif_files: Vec<SarifFile<'_>> = checked
            .iter()
            .map(|(name, src, diagnostics)| SarifFile {
                path: name,
                src,
                diagnostics,
            })
            .collect();
        println!("{}", render_sarif(&sarif_files));
    } else if !opts.quiet {
        let fixed_note = if fixed > 0 {
            format!(", {fixed} fixed")
        } else {
            String::new()
        };
        println!(
            "rqlcheck: {} file{} checked, {errors} error{}, {warnings} warning{}{fixed_note}",
            files.len(),
            if files.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
