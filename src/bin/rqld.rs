//! `rqld`: the concurrent RQL server.
//!
//! Usage:
//!
//! ```text
//! rqld [--listen ADDR] [--workers N] [--queue N] [--max-sessions N]
//!      [--timeout-ms N] [--no-memo] [--slow-ms N] [--data-dir DIR]
//!      [--repl-listen ADDR] [--follow ADDR]
//!      [--metrics-listen ADDR] [--ready-lag SECS]
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:7464`), bootstraps one
//! shared snapshot store, and serves the RQL wire protocol until a
//! client sends `SHUTDOWN` — then drains queued queries and exits. Talk
//! to it with the `rql` client binary.
//!
//! Replication: `--data-dir DIR` puts the store's logs on disk.
//! `--repl-listen ADDR` makes this server a leader: followers connect
//! there, get seeded, and receive every committed segment. `--follow
//! ADDR` makes it a follower: it bootstraps from the leader into
//! `--data-dir` and serves read-only queries over the replica (writes
//! are rejected with `RQL505`). Check either side with
//! `rql replstatus`.
//!
//! Observability: `--metrics-listen ADDR` serves `GET /metrics`
//! (Prometheus text exposition of every server registry), `/healthz`
//! (liveness) and `/readyz` (readiness; on a follower, 503 until it is
//! streaming with replication lag under `--ready-lag SECS`, default 5).
//! `--slow-ms N` logs any query slower than `N` ms to stderr;
//! `RQL_TRACE=out.json` writes a Chrome-trace/Perfetto JSON of the
//! trace ring at drain; a panic dumps the flight recorder (the last
//! ring events) before unwinding.

use std::process::ExitCode;
use std::time::Duration;

use rql_repro::rqld::{serve, ServerConfig};

struct Options {
    listen: String,
    config: ServerConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    const USAGE: &str = "usage: rqld [--listen ADDR] [--workers N] [--queue N] \
                         [--max-sessions N] [--timeout-ms N] [--no-memo] [--slow-ms N] \
                         [--data-dir DIR] [--repl-listen ADDR] [--follow ADDR] \
                         [--metrics-listen ADDR] [--ready-lag SECS]";
    let mut opts = Options {
        listen: "127.0.0.1:7464".into(),
        config: ServerConfig::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => {
                opts.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                opts.config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--max-sessions" => {
                opts.config.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                opts.config.query_timeout = Some(Duration::from_millis(ms));
            }
            "--no-memo" => opts.config.memo = false,
            "--data-dir" => {
                opts.config.data_dir = Some(value("--data-dir")?.into());
            }
            "--repl-listen" => {
                opts.config.repl_listen = Some(value("--repl-listen")?);
            }
            "--follow" => {
                opts.config.follow = Some(value("--follow")?);
            }
            "--metrics-listen" => {
                opts.config.metrics_listen = Some(value("--metrics-listen")?);
            }
            "--ready-lag" => {
                let secs: f64 = value("--ready-lag")?
                    .parse()
                    .map_err(|e| format!("--ready-lag: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--ready-lag: must be a non-negative number".into());
                }
                opts.config.ready_lag = Duration::from_secs_f64(secs);
            }
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?;
                opts.config.slow_query = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(USAGE.into()),
            flag => return Err(format!("unknown flag {flag}\n{USAGE}")),
        }
    }
    if opts.config.follow.is_some() && opts.config.data_dir.is_none() {
        return Err(format!("--follow requires --data-dir\n{USAGE}"));
    }
    if opts.config.repl_listen.is_some() && opts.config.data_dir.is_none() {
        return Err(format!("--repl-listen requires --data-dir\n{USAGE}"));
    }
    if opts.config.repl_listen.is_some() && opts.config.follow.is_some() {
        return Err(format!(
            "--repl-listen and --follow are mutually exclusive\n{USAGE}"
        ));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // Flight recorder on panic: dump the last ring events to stderr
    // before the default hook unwinds.
    rql_repro::trace::install_panic_hook();
    let handle = match serve(opts.listen.as_str(), opts.config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rqld: bind {}: {e}", opts.listen);
            return ExitCode::from(2);
        }
    };
    println!("rqld listening on {}", handle.local_addr());
    if let Some(addr) = handle.observe_addr() {
        println!("rqld metrics on http://{addr}/metrics");
    }
    handle.wait();
    // RQL_TRACE=out.json: export everything the ring retained as
    // Chrome-trace JSON (loadable in Perfetto / chrome://tracing).
    match rql_repro::trace::export_from_env() {
        Some((path, Ok(()))) => println!("rqld: trace written to {}", path.display()),
        Some((path, Err(e))) => {
            eprintln!("rqld: RQL_TRACE export to {} failed: {e}", path.display());
        }
        None => {}
    }
    println!("rqld: drained, bye");
    ExitCode::SUCCESS
}
