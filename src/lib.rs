//! # rql-repro
//!
//! Umbrella crate for the reproduction of *"RQL: Retrospective
//! Computations over Snapshot Sets"* (EDBT 2018). It re-exports the
//! whole stack and hosts the runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`).
//!
//! Layer map (bottom up):
//!
//! * [`trace`] — structured span/event tracing: thread-local span
//!   stacks over a lock-free ring buffer, Chrome-trace export, flight
//!   recorder (the observability spine every layer reports into);
//! * [`pagestore`] — page-based transactional storage (Berkeley DB
//!   analog): pager, buffer cache, WAL, MVCC read views;
//! * [`retro`] — the Retro page-level copy-on-write snapshot system:
//!   Pagelog, Maplog with Skippy skip levels, snapshot page tables;
//! * [`sqlengine`] — SQLite-like SQL engine with `AS OF` queries,
//!   B-tree indexes, and the UDF framework;
//! * [`rql`] — the paper's contribution: the four RQL mechanisms over
//!   snapshot sets;
//! * [`tpch`] — deterministic TPC-H workload generator, refresh
//!   functions and update workloads driving the experiments;
//! * [`rqld`] — the concurrent RQL server (wire protocol, session
//!   pool, admission control, metrics) and its blocking client.

pub use rql;
pub use rql_pagestore as pagestore;
pub use rql_retro as retro;
pub use rql_sqlengine as sqlengine;
pub use rql_tpch as tpch;
pub use rql_trace as trace;
pub use rqld;
