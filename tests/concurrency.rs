//! Concurrency stress tests: the MVCC promise under real thread
//! interleavings — snapshot queries "do not block each other" with
//! updates (paper §3/§4), the single-writer rule, and the shared buffer
//! cache under contention.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rql::RqlSession;
use rql_sqlengine::{Database, Value};

#[test]
fn readers_never_block_and_never_see_torn_states() {
    // One writer moves a fixed "balance" between two rows inside single
    // statements; readers (current-state and snapshot) must always see
    // the invariant sum.
    let db = Database::default_in_memory();
    db.execute("CREATE TABLE acct (id INTEGER, bal INTEGER)")
        .unwrap();
    db.execute("INSERT INTO acct VALUES (1, 500), (2, 500)")
        .unwrap();
    let sid = db.declare_snapshot().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let db = db.clone();
        let stop = stop.clone();
        let reads = reads.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let r = db.query("SELECT SUM(bal) FROM acct").unwrap();
                assert_eq!(r.rows[0][0], Value::Integer(1000), "torn current read");
                let r = db
                    .query(&format!("SELECT AS OF {sid} SUM(bal) FROM acct"))
                    .unwrap();
                assert_eq!(r.rows[0][0], Value::Integer(1000), "torn snapshot read");
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // Writer: swing money back and forth, declaring snapshots sometimes.
    for i in 0..120i64 {
        let delta = if i % 2 == 0 { 100 } else { -100 };
        db.execute(&format!(
            "UPDATE acct SET bal = bal + (CASE WHEN id = 1 THEN {delta} ELSE {} END)",
            -delta
        ))
        .unwrap();
        if i % 10 == 0 {
            db.declare_snapshot().unwrap();
        }
    }
    // On an oversubscribed machine the writer can finish all 120 updates
    // before any reader completes an iteration — hold the stop signal
    // until at least one reader has made progress.
    while reads.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");
}

#[test]
fn single_writer_contention_is_an_error_not_a_deadlock() {
    let db = Database::default_in_memory();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("BEGIN").unwrap();
    // A second explicit transaction on the same session is rejected.
    assert!(db.execute("BEGIN").is_err());
    // A statement from another thread *joins* the session's open
    // transaction (a Database is one connection, like a SQLite handle) —
    // it must neither hang nor bypass the transaction.
    let db2 = db.clone();
    let handle = std::thread::spawn(move || db2.execute("INSERT INTO t VALUES (1)"));
    handle.join().unwrap().unwrap();
    // The row is not yet committed at the store level: a raw writer at
    // the store level is refused while the session txn is open.
    assert!(
        db.store().begin().map(|_| ()).is_err(),
        "store must enforce single-writer"
    );
    db.execute("COMMIT").unwrap();
    // After commit the store-level writer works again and the joined
    // thread's row is visible.
    let txn = db.store().begin().unwrap();
    db.store().abort(txn);
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn parallel_rql_queries_share_one_cache_coherently() {
    // Several threads run the same RQL aggregation concurrently over the
    // same snapshots; all must agree, and the shared cache must not
    // corrupt pages under concurrent insert/evict.
    let session = RqlSession::with_defaults().unwrap();
    session.execute("CREATE TABLE t (v INTEGER)").unwrap();
    for round in 0..6i64 {
        session
            .execute(&format!("INSERT INTO t VALUES ({round})"))
            .unwrap();
        session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    }
    // Small cache forces eviction churn.
    session.snap_db().store().cache().set_capacity(4);
    let expected: i64 = {
        let r = session.query("SELECT AS OF 6 SUM(v) FROM t").unwrap();
        r.rows[0][0].as_i64().unwrap()
    };
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let session = session.clone();
            std::thread::spawn(move || {
                for sid in 1..=6u64 {
                    let r = session
                        .query(&format!("SELECT AS OF {sid} SUM(v), COUNT(*) FROM t"))
                        .unwrap();
                    let count = r.rows[0][1].as_i64().unwrap();
                    assert_eq!(count, sid as i64, "snapshot {sid} row count");
                }
                let r = session.query("SELECT AS OF 6 SUM(v) FROM t").unwrap();
                r.rows[0][0].as_i64().unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }
}

#[test]
fn snapshot_declared_mid_flight_is_immediately_queryable_everywhere() {
    let db = Database::default_in_memory();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let db2 = db.clone();
    let b2 = barrier.clone();
    let writer = std::thread::spawn(move || {
        for i in 0..30i64 {
            db2.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            let sid = db2.declare_snapshot().unwrap();
            if sid == 1 {
                b2.wait();
            }
        }
    });
    barrier.wait();
    // From this thread, every declared snapshot id must be readable the
    // moment we learn about it.
    for _ in 0..100 {
        let latest = db.store().snapshot_count();
        for sid in 1..=latest {
            let r = db
                .query(&format!("SELECT AS OF {sid} COUNT(*) FROM t"))
                .unwrap();
            assert_eq!(r.rows[0][0], Value::Integer(sid as i64));
        }
    }
    writer.join().unwrap();
}
