//! Fault-injection tests: storage failures in the WAL, Pagelog or Maplog
//! must surface as errors — never as silent corruption, panics, or a
//! wedged store.

use std::sync::Arc;

use rql_pagestore::{FailingStorage, MemStorage, PagerConfig};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{Database, Value};

fn config() -> RetroConfig {
    RetroConfig {
        pager: PagerConfig {
            page_size: 1024,
            cache_capacity: 64,
            wal_sync_on_commit: false,
        },
        ..RetroConfig::new()
    }
}

fn store_with(wal_ok: u64, pagelog_ok: u64, fail_reads: bool) -> (Arc<Database>, Arc<MemStorage>) {
    let wal_inner = Arc::new(MemStorage::new());
    let wal = Arc::new(FailingStorage::new(wal_inner.clone(), wal_ok, true, false));
    let pagelog = Arc::new(FailingStorage::new(
        Arc::new(MemStorage::new()),
        pagelog_ok,
        true,
        fail_reads,
    ));
    let maplog = Arc::new(MemStorage::new());
    let store = RetroStore::open(config(), wal, pagelog, maplog).unwrap();
    (Database::over_store(store), wal_inner)
}

#[test]
fn wal_append_failure_fails_the_commit() {
    let (db, _) = store_with(12, u64::MAX, false);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    // Keep inserting until the injected WAL failure hits; the statement
    // must report the error rather than succeed silently.
    let mut failed = false;
    for i in 0..200 {
        match db.execute(&format!("INSERT INTO t VALUES ({i})")) {
            Ok(_) => {}
            Err(e) => {
                assert!(e.to_string().contains("injected"), "{e}");
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "the injected WAL fault never surfaced");
}

#[test]
fn pagelog_append_failure_fails_cow_commit() {
    // COW capture appends to the Pagelog at commit; a failing archive
    // must fail the writing statement.
    let (db, _) = store_with(u64::MAX, 2, false);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let mut failed = false;
    // Re-declare before each write so every commit performs a fresh COW
    // capture (only the first post-declaration modification archives).
    for i in 0..200 {
        let step = db
            .declare_snapshot()
            .map_err(|e| e.to_string())
            .and_then(|_| {
                db.execute(&format!("INSERT INTO t VALUES ({i})"))
                    .map_err(|e| e.to_string())
            });
        if let Err(e) = step {
            assert!(e.contains("injected"), "{e}");
            failed = true;
            break;
        }
    }
    assert!(failed, "the injected Pagelog fault never surfaced");
}

#[test]
fn pagelog_read_failure_fails_snapshot_query_not_current() {
    let (db, _) = store_with(u64::MAX, 6, true);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.declare_snapshot().unwrap();
    db.execute("UPDATE t SET a = 2").unwrap(); // archives pre-states
    db.store().cache().clear();
    // Burn the remaining budget with snapshot reads until reads fail.
    let mut failed = false;
    for _ in 0..50 {
        db.store().cache().clear();
        match db.query("SELECT AS OF 1 a FROM t") {
            Ok(r) => assert_eq!(r.rows[0][0], Value::Integer(1)),
            Err(e) => {
                assert!(e.to_string().contains("injected"), "{e}");
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "the injected read fault never surfaced");
    // Current-state queries never touch the Pagelog: still fine.
    let r = db.query("SELECT a FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
}

#[test]
fn store_remains_usable_after_failed_statement() {
    let (db, _) = store_with(14, u64::MAX, false);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let mut saw_error = false;
    let mut committed = 0u64;
    for i in 0..200 {
        match db.execute(&format!("INSERT INTO t VALUES ({i})")) {
            Ok(_) => {
                if !saw_error {
                    committed += 1;
                }
            }
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error);
    // The single-writer token must have been released by the failed
    // transaction: counting still works and sees only committed rows.
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(committed as i64));
}
