//! Flight-recorder concurrency tests (TSan lane): panicking threads
//! dumping the ring race readers snapshotting it, and `STATUS --flight`
//! clients race jobs that freeze the last-failure dump server-side.
//!
//! The flight recorder's contract is that it is safe to call from
//! *anywhere* — a panic hook mid-unwind, a server connection thread, a
//! test assertion — while every other thread keeps writing trace
//! events. These tests drive exactly that overlap; TSan vets the
//! ring-buffer snapshot against the concurrent writers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rql_repro::rqld::{serve, Client, ServerConfig};
use rql_repro::trace;

#[test]
fn concurrent_panics_and_flight_dumps_do_not_race() {
    // The hook itself renders a dump on every panic below, so the
    // panic path exercises flight_dump concurrently with the readers.
    trace::install_panic_hook();
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        // Writers: flood the ring with spans and instants, panicking
        // (caught) partway through each burst so unwinding runs with
        // half-open span guards on the thread-local stack.
        for w in 0..4u64 {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let _outer = trace::span_arg(trace::SpanId::JobRun, w);
                        for i in 0..64 {
                            trace::instant_arg(trace::SpanId::JobAdmit, round * 64 + i);
                        }
                        if round.is_multiple_of(3) {
                            panic!("deliberate test panic (writer {w})");
                        }
                    }));
                }
            });
        }
        // Readers: snapshot the ring as fast as the writers mutate it.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut dumps = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let dump = trace::flight_dump();
                        assert!(dump.starts_with("flight recorder:"), "bad dump: {dump}");
                        dumps += 1;
                    }
                    dumps
                })
            })
            .collect();

        thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader") > 0, "reader never dumped");
        }
    });
}

#[test]
fn status_flight_readers_race_failing_jobs() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.local_addr();

    // Seed a table so the failing statement parses and admits, then
    // dies in execution — the path that freezes `last_flight`.
    let mut writer = Client::connect(addr).expect("connect");
    writer
        .run(
            "CREATE TABLE t (x INTEGER);\n\
             BEGIN;\nINSERT INTO t VALUES (1);\nCOMMIT WITH SNAPSHOT;",
        )
        .expect("setup");

    thread::scope(|scope| {
        // Failing jobs: each run references a missing table, fails in
        // the worker, and overwrites the frozen dump.
        for _ in 0..3 {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..20 {
                    let r = c.run("SELECT * FROM does_not_exist;");
                    assert!(r.is_err(), "query against a missing table succeeded");
                }
            });
        }
        // STATUS --flight readers: every reply must carry a live ring
        // dump, whatever the failure threads are doing to the frozen one.
        for _ in 0..3 {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..20 {
                    let text = c.status_flight().expect("status --flight");
                    assert!(text.contains("flight recorder:"), "no dump in: {text}");
                }
            });
        }
    });

    // With the races drained, at least one failure froze its dump.
    let text = writer.status_flight().expect("status --flight");
    assert!(
        text.contains("--- last failure ---"),
        "no frozen failure dump in: {text}"
    );

    handle.shutdown();
    handle.wait();
}

#[test]
fn observe_endpoints_serve_metrics_health_and_readiness() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            metrics_listen: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();
    let observe = handle.observe_addr().expect("observability listener");

    let mut client = Client::connect(addr).expect("connect");
    client
        .run(
            "CREATE TABLE t (x INTEGER);\n\
             BEGIN;\nINSERT INTO t VALUES (1);\nCOMMIT WITH SNAPSHOT;\n\
             SELECT CollateData(snap_id, 'SELECT x FROM t', 'C') FROM SnapIds;",
        )
        .expect("run");

    let get = |path: &str| -> (u16, String) {
        let mut s = TcpStream::connect(observe).expect("connect observe");
        write!(s, "GET {path} HTTP/1.0\r\nHost: t\r\n\r\n").expect("request");
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("response");
        let status = buf
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, body) = get("/metrics");
    assert_eq!(status, 200, "metrics: {body}");
    assert!(body.contains("rql_build_info{version=\""), "{body}");
    assert!(body.contains("# TYPE rql_queries_total counter"), "{body}");
    assert!(
        body.contains("rql_query_latency_seconds_bucket{le=\"+Inf\"}"),
        "{body}"
    );
    assert!(body.contains("rql_uptime_seconds"), "{body}");

    assert_eq!(get("/healthz").0, 200);
    // Standalone server: ready as long as it is not draining.
    assert_eq!(get("/readyz").0, 200);
    assert_eq!(get("/nope").0, 404);

    handle.shutdown();
    handle.wait();
}
