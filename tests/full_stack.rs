//! Cross-crate integration tests: TPC-H histories driven through the
//! whole stack, with RQL mechanism outputs cross-validated against
//! ground truth recomputed from `AS OF` queries.

use rql::{AggOp, Value};
use rql_retro::RetroConfig;
use rql_tpch::{build_history, UW30};

#[test]
fn collate_data_equals_union_of_as_of_queries() {
    let h = build_history(RetroConfig::new(), 0.0005, UW30, 6, false).unwrap();
    let qq = "SELECT o_orderkey FROM orders WHERE o_orderstatus = 'O'";
    h.session
        .collate_data("SELECT snap_id FROM SnapIds", qq, "collated")
        .unwrap();
    // Ground truth: run the same query AS OF each snapshot directly.
    let mut expected = 0usize;
    for sid in &h.snapshots {
        let r = h
            .session
            .query(&format!(
                "SELECT AS OF {sid} o_orderkey FROM orders WHERE o_orderstatus = 'O'"
            ))
            .unwrap();
        expected += r.rows.len();
    }
    assert_eq!(
        h.session.aux_db().table_row_count("collated").unwrap(),
        expected as u64
    );
}

#[test]
fn aggregate_in_table_equals_sql_over_collate() {
    // The paper's equivalence (§5.3): AggregateDataInTable(Qq, (cn,MAX))
    // produces the same result as CollateData + a final SQL aggregation.
    let h = build_history(RetroConfig::new(), 0.0005, UW30, 5, false).unwrap();
    let qq = "SELECT o_custkey, COUNT(*) AS cn FROM orders GROUP BY o_custkey";
    h.session
        .collate_data("SELECT snap_id FROM SnapIds", qq, "c")
        .unwrap();
    h.session
        .aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            qq,
            "a",
            &[("cn".into(), AggOp::Max)],
        )
        .unwrap();
    let via_collate = h
        .session
        .query_aux("SELECT o_custkey, MAX(cn) FROM c GROUP BY o_custkey ORDER BY o_custkey")
        .unwrap();
    let via_aggtable = h
        .session
        .query_aux("SELECT o_custkey, MAX(cn) FROM a GROUP BY o_custkey ORDER BY o_custkey")
        .unwrap();
    assert_eq!(via_collate.rows.len(), via_aggtable.rows.len());
    assert_eq!(via_collate.rows, via_aggtable.rows);
}

#[test]
fn intervals_reconstruct_per_snapshot_membership() {
    let h = build_history(RetroConfig::new(), 0.0004, UW30, 5, false).unwrap();
    let qq = "SELECT o_orderkey FROM orders WHERE o_orderkey % 7 = 0";
    h.session
        .collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT o_orderkey, current_snapshot() AS sid FROM orders WHERE o_orderkey % 7 = 0",
            "membership",
        )
        .unwrap();
    h.session
        .collate_data_into_intervals("SELECT snap_id FROM SnapIds", qq, "lifetimes")
        .unwrap();
    // For every snapshot: the set of keys whose lifetime covers it must
    // equal the keys collated for it.
    for sid in &h.snapshots {
        let from_intervals = h
            .session
            .query_aux(&format!(
                "SELECT o_orderkey FROM lifetimes \
                 WHERE start_snapshot <= {sid} AND end_snapshot >= {sid} \
                 ORDER BY o_orderkey"
            ))
            .unwrap();
        let from_collate = h
            .session
            .query_aux(&format!(
                "SELECT o_orderkey FROM membership WHERE sid = {sid} ORDER BY o_orderkey"
            ))
            .unwrap();
        assert_eq!(
            from_intervals.rows, from_collate.rows,
            "membership mismatch at snapshot {sid}"
        );
    }
}

#[test]
fn agg_var_equals_fold_over_as_of_values() {
    let h = build_history(RetroConfig::new(), 0.0004, UW30, 6, false).unwrap();
    let qq = "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'";
    type Fold = fn(Vec<i64>) -> i64;
    let cases: [(AggOp, Fold); 3] = [
        (AggOp::Min, |v| v.into_iter().min().unwrap()),
        (AggOp::Max, |v| v.into_iter().max().unwrap()),
        (AggOp::Sum, |v| v.into_iter().sum()),
    ];
    for (op, fold) in cases {
        let table = format!("agg_{op}");
        h.session
            .aggregate_data_in_variable("SELECT snap_id FROM SnapIds", qq, &table, op)
            .unwrap();
        let got = h
            .session
            .query_aux(&format!("SELECT * FROM {table}"))
            .unwrap()
            .rows[0][0]
            .clone();
        let values: Vec<i64> = h
            .snapshots
            .iter()
            .map(|sid| {
                h.session
                    .query(&format!(
                        "SELECT AS OF {sid} COUNT(*) FROM orders WHERE o_orderstatus = 'O'"
                    ))
                    .unwrap()
                    .rows[0][0]
                    .as_i64()
                    .unwrap()
            })
            .collect();
        assert_eq!(got, Value::Integer(fold(values)), "{op}");
    }
}

#[test]
fn snapshot_isolation_under_concurrent_readers() {
    // Snapshot readers in other threads see stable data while the writer
    // churns (the MVCC promise of paper §4).
    let h = build_history(RetroConfig::new(), 0.0004, UW30, 3, false).unwrap();
    let session = h.session.clone();
    let expected: Vec<i64> = h
        .snapshots
        .iter()
        .map(|sid| {
            session
                .query(&format!("SELECT AS OF {sid} MIN(o_orderkey) FROM orders"))
                .unwrap()
                .rows[0][0]
                .as_i64()
                .unwrap()
        })
        .collect();
    let snapshots = h.snapshots.clone();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let session = session.clone();
            let snapshots = snapshots.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    for (sid, want) in snapshots.iter().zip(&expected) {
                        let got = session
                            .query(&format!("SELECT AS OF {sid} MIN(o_orderkey) FROM orders"))
                            .unwrap()
                            .rows[0][0]
                            .as_i64()
                            .unwrap();
                        assert_eq!(got, *want, "snapshot {sid} changed under reader");
                    }
                }
            })
        })
        .collect();
    // Writer churns concurrently.
    let mut h = h;
    h.advance(5).unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn udf_form_matches_api_form() {
    let h = build_history(RetroConfig::new(), 0.0004, UW30, 4, false).unwrap();
    let qq = "SELECT o_custkey, COUNT(*) AS cn FROM orders GROUP BY o_custkey";
    h.session
        .aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            qq,
            "api_result",
            &[("cn".into(), AggOp::Max)],
        )
        .unwrap();
    h.session
        .query_aux(&format!(
            "SELECT AggregateDataInTable(snap_id, '{}', 'udf_result', '(cn,max)') \
             FROM SnapIds",
            qq.replace('\'', "''")
        ))
        .unwrap();
    let api = h
        .session
        .query_aux("SELECT o_custkey, cn FROM api_result ORDER BY o_custkey, cn")
        .unwrap();
    let udf = h
        .session
        .query_aux("SELECT o_custkey, cn FROM udf_result ORDER BY o_custkey, cn")
        .unwrap();
    assert_eq!(api.rows, udf.rows);
}
