//! Differential tests for the Qq memoization store.
//!
//! * **Memoized = recomputed** — over arbitrary snapshot histories, a
//!   session with a memo attached must produce byte-identical result
//!   tables to a memo-free session running the same program, across all
//!   four mechanisms and every `DeltaPolicy`, both cold (populating the
//!   cache) and warm (serving from it).
//! * **Spill faults degrade to recompute** — corrupting or outright
//!   breaking the disk-spill tier must never fail a query: lookups
//!   degrade to misses (counted in `spill_errors`) and the results stay
//!   identical to a memo-free run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use rql::{AggOp, DeltaPolicy, RqlSession};
use rql_memo::{MemoConfig, MemoStore};
use rql_sqlengine::Row;

// ---- fixtures -------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, i64),
    Delete(u8),
    Update(u8, i64),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -1000i64..1000).prop_map(|(k, v)| Op::Insert(k % 12, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 12)),
        (any::<u8>(), -1000i64..1000).prop_map(|(k, v)| Op::Update(k % 12, v)),
        Just(Op::Snapshot),
    ]
}

/// Replay one op sequence into a fresh session, ending with at least one
/// declared snapshot so every mechanism loop has an iteration.
fn build_session(ops: &[Op]) -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().expect("session");
    session
        .execute("CREATE TABLE kv (k INTEGER, v INTEGER)")
        .expect("create");
    let mut declared = 0usize;
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                session
                    .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                    .expect("dedup");
                session
                    .execute(&format!("INSERT INTO kv VALUES ({k}, {v})"))
                    .expect("insert");
            }
            Op::Delete(k) => {
                session
                    .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                    .expect("delete");
            }
            Op::Update(k, v) => {
                session
                    .execute(&format!("UPDATE kv SET v = {v} WHERE k = {k}"))
                    .expect("update");
            }
            Op::Snapshot => {
                session.declare_snapshot(None).expect("snapshot");
                declared += 1;
            }
        }
    }
    if declared == 0 {
        session.declare_snapshot(None).expect("snapshot");
    }
    session
}

const QS: &str = "SELECT snap_id FROM SnapIds";

/// Run every mechanism applicable under `policy` into uniquely named
/// result tables, returning each table's rows in a canonical order.
fn run_mechanisms(session: &Arc<RqlSession>, policy: DeltaPolicy, tag: &str) -> Vec<Vec<Row>> {
    let mut out = Vec::new();
    let read = |table: &str, order: &str| -> Vec<Row> {
        session
            .query_aux(&format!("SELECT * FROM {table} ORDER BY {order}"))
            .expect("read back")
            .rows
    };

    session
        .collate_data_with_policy(QS, "SELECT k, v FROM kv", &format!("c{tag}"), policy)
        .expect("collate");
    out.push(read(&format!("c{tag}"), "k, v"));

    session
        .aggregate_data_in_variable_with_policy(
            QS,
            "SELECT SUM(v) FROM kv",
            &format!("a{tag}"),
            AggOp::Max,
            policy,
        )
        .expect("aggvar");
    out.push(read(&format!("a{tag}"), "1"));

    // AggregateDataInTable and CollateDataIntoIntervals have no delta
    // driver yet: under Forced the pre-flight (correctly) rejects them,
    // so the Forced lane exercises the two delta-capable mechanisms.
    if policy != DeltaPolicy::Forced {
        session
            .aggregate_data_in_table_with_policy(
                QS,
                "SELECT k, v FROM kv",
                &format!("t{tag}"),
                &[("v".to_owned(), AggOp::Min)],
                policy,
            )
            .expect("aggtable");
        out.push(read(&format!("t{tag}"), "k"));

        session
            .collate_data_into_intervals_with_policy(
                QS,
                "SELECT k FROM kv",
                &format!("i{tag}"),
                policy,
            )
            .expect("intervals");
        out.push(read(&format!("i{tag}"), "k, start_snapshot, end_snapshot"));
    }
    out
}

// ---- memoized = recomputed ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn memoized_matches_recomputed_for_all_policies(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        for (pi, policy) in [DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced]
            .into_iter()
            .enumerate()
        {
            let plain = build_session(&ops);
            let memoized = build_session(&ops);
            let memo = Arc::new(MemoStore::new(MemoConfig::default()));
            memoized.set_memo(Some(Arc::clone(&memo)));

            let want = run_mechanisms(&plain, policy, &format!("_{pi}_0"));
            // Cold: the memo populates while producing live results.
            let cold = run_mechanisms(&memoized, policy, &format!("_{pi}_0"));
            prop_assert_eq!(&cold, &want, "cold run diverged under {:?}", policy);
            prop_assert!(memo.stats().inserts > 0, "cold run must populate the memo");

            // Warm: the same Qq set replays out of the cache.
            let warm = run_mechanisms(&memoized, policy, &format!("_{pi}_1"));
            let want_again = run_mechanisms(&plain, policy, &format!("_{pi}_1"));
            prop_assert_eq!(&warm, &want_again, "warm run diverged under {:?}", policy);
            prop_assert!(
                memo.stats().hits > 0,
                "warm run must hit the memo under {:?}: {:?}",
                policy,
                memo.stats()
            );
        }
    }
}

// ---- spill-tier fault injection -------------------------------------------

static TEMP_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rql-memo-{tag}-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const HISTORY: &str = "\
    CREATE TABLE kv (k INTEGER, v INTEGER);\n\
    INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30);\n\
    BEGIN; COMMIT WITH SNAPSHOT;\n\
    UPDATE kv SET v = 21 WHERE k = 2;\n\
    BEGIN; COMMIT WITH SNAPSHOT;\n\
    DELETE FROM kv WHERE k = 3;\n\
    INSERT INTO kv VALUES (4, 40);\n\
    BEGIN; COMMIT WITH SNAPSHOT;";

#[test]
fn corrupted_spill_tier_degrades_to_recompute() {
    let spill = scratch_dir("corrupt");
    let plain = RqlSession::with_defaults().expect("session");
    plain.execute(HISTORY).expect("history");
    let memoized = RqlSession::with_defaults().expect("session");
    memoized.execute(HISTORY).expect("history");

    // A one-byte budget evicts every entry immediately, so warm lookups
    // can only be served by the spill tier.
    let memo = Arc::new(MemoStore::new(MemoConfig {
        byte_budget: 1,
        spill_dir: Some(spill.clone()),
        ..MemoConfig::default()
    }));
    memoized.set_memo(Some(Arc::clone(&memo)));

    let want = run_mechanisms(&plain, DeltaPolicy::Auto, "_s0");
    let cold = run_mechanisms(&memoized, DeltaPolicy::Auto, "_s0");
    assert_eq!(cold, want, "cold run with spill diverged");
    let stats = memo.stats();
    assert!(stats.spill_writes > 0, "spill tier unused: {stats:?}");

    // Sanity: an intact spill tier actually serves the warm run.
    let warm = run_mechanisms(&memoized, DeltaPolicy::Auto, "_s1");
    let want_again = run_mechanisms(&plain, DeltaPolicy::Auto, "_s1");
    assert_eq!(warm, want_again, "warm spill run diverged");
    assert!(
        memo.stats().spill_reads > 0,
        "warm lookups should read the spill tier: {:?}",
        memo.stats()
    );

    // Corrupt every spill file in place, then replay: results must stay
    // identical, with the faults absorbed as counted recomputes.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&spill).expect("read spill dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "memo") {
            std::fs::write(&path, b"garbage, not a memo entry").expect("corrupt");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "no spill files found in {spill:?}");

    let before = memo.stats().spill_errors;
    let after_corruption = run_mechanisms(&memoized, DeltaPolicy::Auto, "_s2");
    let want_final = run_mechanisms(&plain, DeltaPolicy::Auto, "_s2");
    assert_eq!(
        after_corruption, want_final,
        "corrupted spill tier changed results"
    );
    assert!(
        memo.stats().spill_errors > before,
        "corruption must be detected and counted: {:?}",
        memo.stats()
    );

    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn unwritable_spill_tier_never_fails_a_query() {
    // Point the spill tier at a *file*, so every directory create and
    // entry write fails at the filesystem level.
    let bogus = scratch_dir("unwritable").join("not-a-dir");
    std::fs::write(&bogus, b"occupied").expect("placeholder file");

    let plain = RqlSession::with_defaults().expect("session");
    plain.execute(HISTORY).expect("history");
    let memoized = RqlSession::with_defaults().expect("session");
    memoized.execute(HISTORY).expect("history");
    let memo = Arc::new(MemoStore::new(MemoConfig {
        spill_dir: Some(bogus.clone()),
        ..MemoConfig::default()
    }));
    memoized.set_memo(Some(Arc::clone(&memo)));

    let want = run_mechanisms(&plain, DeltaPolicy::Auto, "_u0");
    let got = run_mechanisms(&memoized, DeltaPolicy::Auto, "_u0");
    assert_eq!(got, want, "broken spill tier changed results");
    let stats = memo.stats();
    assert!(
        stats.spill_errors > 0,
        "write failures must be counted, not raised: {stats:?}"
    );

    // Warm runs still work off the in-memory tier.
    let warm = run_mechanisms(&memoized, DeltaPolicy::Auto, "_u1");
    let want_again = run_mechanisms(&plain, DeltaPolicy::Auto, "_u1");
    assert_eq!(warm, want_again);
    assert!(memo.stats().hits > 0);

    let _ = std::fs::remove_dir_all(bogus.parent().expect("parent"));
}
