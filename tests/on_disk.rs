//! End-to-end test over real files: WAL, Pagelog and Maplog on disk
//! (`FileStorage`), full TPC-H mini-load, snapshots, RQL, crash, reopen.

use std::path::PathBuf;
use std::sync::Arc;

use rql_pagestore::{FileStorage, LogStorage, PagerConfig};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{Database, Value};

struct DiskDirs {
    dir: PathBuf,
}

impl DiskDirs {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rql-ondisk-{}-{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        DiskDirs { dir }
    }

    fn open(&self, fresh: bool) -> Arc<Database> {
        let storage = |name: &str| -> Arc<dyn LogStorage> {
            let path = self.dir.join(name);
            Arc::new(if fresh {
                FileStorage::create(&path).unwrap()
            } else {
                FileStorage::open(&path).unwrap()
            })
        };
        let config = RetroConfig {
            pager: PagerConfig {
                page_size: 4096,
                cache_capacity: 128,
                wal_sync_on_commit: false,
            },
            ..RetroConfig::new()
        };
        let store = RetroStore::open(
            config,
            storage("wal.log"),
            storage("pagelog.bin"),
            storage("maplog.bin"),
        )
        .unwrap();
        Database::over_store(store)
    }
}

impl Drop for DiskDirs {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn full_lifecycle_on_real_files() {
    let dirs = DiskDirs::new("lifecycle");
    let (s1, s2);
    {
        let db = dirs.open(true);
        db.execute(
            "CREATE TABLE orders (o_orderkey INTEGER, o_orderstatus TEXT, \
             o_totalprice REAL)",
        )
        .unwrap();
        db.execute("CREATE INDEX idx_ok ON orders (o_orderkey)")
            .unwrap();
        db.with_table_writer("orders", |w| {
            for i in 0..500i64 {
                w.insert(vec![
                    Value::Integer(i),
                    Value::text(if i % 3 == 0 { "O" } else { "F" }),
                    Value::Real(i as f64 * 10.0),
                ])?;
            }
            Ok(())
        })
        .unwrap();
        s1 = db.declare_snapshot().unwrap();
        db.execute("DELETE FROM orders WHERE o_orderkey < 100")
            .unwrap();
        db.execute("UPDATE orders SET o_orderstatus = 'P' WHERE o_orderkey % 50 = 0")
            .unwrap();
        s2 = db.declare_snapshot().unwrap();
        db.execute("DELETE FROM orders WHERE o_orderkey < 200")
            .unwrap();
        db.store().flush().unwrap();
        // Drop without any clean shutdown: recovery does the rest.
    }
    let db = dirs.open(false);
    // Current state.
    let r = db.query("SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(300));
    // Snapshots across the reopen.
    let r = db
        .query(&format!("SELECT AS OF {s1} COUNT(*) FROM orders"))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(500));
    let r = db
        .query(&format!(
            "SELECT AS OF {s2} COUNT(*) FROM orders WHERE o_orderstatus = 'P'"
        ))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(8)); // keys 100..500 step 50
                                                 // Index probes after recovery, both current and retrospective.
    let r = db
        .query("SELECT o_totalprice FROM orders WHERE o_orderkey = 250")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Real(2500.0));
    let r = db
        .query(&format!(
            "SELECT AS OF {s1} o_totalprice FROM orders WHERE o_orderkey = 50"
        ))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Real(500.0));
    // And the store keeps working.
    db.execute("INSERT INTO orders VALUES (9999, 'O', 1.0)")
        .unwrap();
    let s3 = db.declare_snapshot().unwrap();
    let r = db
        .query(&format!("SELECT AS OF {s3} COUNT(*) FROM orders"))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(301));
}

#[test]
fn reopen_twice_preserves_everything() {
    let dirs = DiskDirs::new("twice");
    {
        let db = dirs.open(true);
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.declare_snapshot().unwrap();
        db.store().flush().unwrap();
    }
    {
        let db = dirs.open(false);
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.declare_snapshot().unwrap();
        db.store().flush().unwrap();
    }
    let db = dirs.open(false);
    assert_eq!(db.store().snapshot_count(), 2);
    let r = db.query("SELECT AS OF 1 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    let r = db.query("SELECT AS OF 2 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
}
