//! Golden test for the `--profile` report: a Table-1 query
//! (`AggregateDataInTable`, examples/rql/first_login.rql) run on an
//! embedded session must render exactly the checked-in per-snapshot
//! cost table. Times are redacted (`-`), so the golden pins the
//! counter columns — pages read, pagelog reads, pages skipped, memo
//! outcome, scan path, row counts — which are fully deterministic.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test profile_golden`.

use rql::{parse_program, run_program_with_reports, QueryProfile, RqlSession};

const GOLDEN_PATH: &str = "tests/golden/profile_table1.txt";

#[test]
fn table1_profile_matches_golden() {
    let source = std::fs::read_to_string("examples/rql/first_login.rql").expect("example source");
    let session = RqlSession::with_defaults().expect("session");
    let program = parse_program(&source).expect("parse");
    let run = run_program_with_reports(&session, &program).expect("run");

    let profile = QueryProfile::from_run(&run);
    let got = profile.render_human(true);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file");
    assert_eq!(
        got, want,
        "profile drifted from {GOLDEN_PATH}; run with UPDATE_GOLDEN=1 if intentional"
    );

    // The same run's JSON rendering carries the same counters.
    let json = profile.render_json(true);
    assert!(json.contains("\"table\":\"FirstLogin\""), "{json}");
    assert_eq!(json.matches("\"snap_id\"").count(), 2, "{json}");
}
