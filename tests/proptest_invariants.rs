//! Property-based tests on the system's core invariants.
//!
//! * **Snapshot fidelity** — after an arbitrary sequence of inserts,
//!   deletes, updates and snapshot declarations, `SELECT AS OF s` returns
//!   exactly the model state at `s`'s declaration.
//! * **Monoid laws** — `AggOp::combine` is associative and commutative
//!   with NULL as identity-ish absorber, and folding with
//!   `AggregateDataInVariable` semantics equals a direct fold.
//! * **Interval round-trip** — reconstructing per-snapshot membership
//!   from `CollateDataIntoIntervals` output equals the original
//!   membership, for arbitrary membership timelines.
//! * **Record codec** — encode/decode round-trips arbitrary rows; index
//!   keys order like values.
//! * **Tracing neutrality** — running the same workload with the trace
//!   layer recording vs disabled produces byte-identical results
//!   (observability must never perturb execution).

use std::collections::BTreeMap;

use proptest::prelude::*;

use rql::{AggOp, RqlSession};
use rql_sqlengine::record::{decode_row, encode_index_key, encode_row};
use rql_sqlengine::Value;

// ---- snapshot fidelity ----------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, i64),
    Delete(u8),
    Update(u8, i64),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Insert(k % 16, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 16)),
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Update(k % 16, v)),
        Just(Op::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn as_of_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let session = RqlSession::with_defaults().unwrap();
        session.execute("CREATE TABLE kv (k INTEGER, v INTEGER)").unwrap();
        let mut model: BTreeMap<u8, i64> = BTreeMap::new();
        let mut snapshots: Vec<(u64, BTreeMap<u8, i64>)> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    // Keep keys unique (delete first), like a keyed store.
                    session
                        .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                        .unwrap();
                    session
                        .execute(&format!("INSERT INTO kv VALUES ({k}, {v})"))
                        .unwrap();
                    model.insert(*k, *v);
                }
                Op::Delete(k) => {
                    session
                        .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                        .unwrap();
                    model.remove(k);
                }
                Op::Update(k, v) => {
                    session
                        .execute(&format!("UPDATE kv SET v = {v} WHERE k = {k}"))
                        .unwrap();
                    if model.contains_key(k) {
                        model.insert(*k, *v);
                    }
                }
                Op::Snapshot => {
                    let sid = session.declare_snapshot(None).unwrap();
                    snapshots.push((sid, model.clone()));
                }
            }
        }
        // Every declared snapshot must replay its model state exactly.
        for (sid, state) in &snapshots {
            let r = session
                .query(&format!("SELECT AS OF {sid} k, v FROM kv ORDER BY k"))
                .unwrap();
            let got: BTreeMap<u8, i64> = r
                .rows
                .iter()
                .map(|row| (row[0].as_i64().unwrap() as u8, row[1].as_i64().unwrap()))
                .collect();
            prop_assert_eq!(&got, state, "snapshot {} diverged", sid);
        }
        // And the current state matches the final model.
        let r = session.query("SELECT k, v FROM kv ORDER BY k").unwrap();
        let got: BTreeMap<u8, i64> = r
            .rows
            .iter()
            .map(|row| (row[0].as_i64().unwrap() as u8, row[1].as_i64().unwrap()))
            .collect();
        prop_assert_eq!(&got, &model);
    }
}

// ---- tracing neutrality -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tracing_never_changes_results(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        // One full workload: arbitrary mutations + snapshots, then a
        // mechanism over the whole history and an ordered read-back.
        let run = |ops: &[Op]| -> Vec<Vec<Value>> {
            let session = RqlSession::with_defaults().unwrap();
            session.execute("CREATE TABLE kv (k INTEGER, v INTEGER)").unwrap();
            let mut declared = false;
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        session.execute(&format!("DELETE FROM kv WHERE k = {k}")).unwrap();
                        session.execute(&format!("INSERT INTO kv VALUES ({k}, {v})")).unwrap();
                    }
                    Op::Delete(k) => {
                        session.execute(&format!("DELETE FROM kv WHERE k = {k}")).unwrap();
                    }
                    Op::Update(k, v) => {
                        session.execute(&format!("UPDATE kv SET v = {v} WHERE k = {k}")).unwrap();
                    }
                    Op::Snapshot => {
                        session.declare_snapshot(None).unwrap();
                        declared = true;
                    }
                }
            }
            if !declared {
                session.declare_snapshot(None).unwrap();
            }
            session
                .collate_data("SELECT snap_id FROM SnapIds", "SELECT k, v FROM kv", "t")
                .unwrap();
            session.query_aux("SELECT k, v FROM t ORDER BY k, v").unwrap().rows
        };

        rql_trace::set_enabled(true);
        let traced = run(&ops);
        rql_trace::set_enabled(false);
        let untraced = run(&ops);
        rql_trace::set_enabled(true);
        prop_assert_eq!(traced, untraced, "tracing perturbed results");
    }
}

// ---- monoid laws ------------------------------------------------------------

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1000i64..1000).prop_map(Value::Integer),
        (-100.0f64..100.0).prop_map(Value::Real),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn combine_is_associative_and_commutative(
        a in small_value(),
        b in small_value(),
        c in small_value(),
    ) {
        for op in [AggOp::Min, AggOp::Max] {
            let ab_c = op.combine(&op.combine(&a, &b), &c);
            let a_bc = op.combine(&a, &op.combine(&b, &c));
            prop_assert_eq!(&ab_c, &a_bc, "{} associativity", op);
            let ab = op.combine(&a, &b);
            let ba = op.combine(&b, &a);
            prop_assert_eq!(&ab, &ba, "{} commutativity", op);
        }
        // SUM over integers (floats would need epsilon comparison).
        if let (Some(x), Some(y), Some(z)) = (a.as_i64(), b.as_i64(), c.as_i64()) {
            let op = AggOp::Sum;
            let lhs = op.combine(&op.combine(&Value::Integer(x), &Value::Integer(y)), &Value::Integer(z));
            let rhs = op.combine(&Value::Integer(x), &op.combine(&Value::Integer(y), &Value::Integer(z)));
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn agg_state_fold_matches_direct_fold(values in proptest::collection::vec(-1000i64..1000, 0..30)) {
        // MIN/MAX/SUM/COUNT folded through AggState equal direct folds.
        let fold = |op: AggOp| {
            let mut st = op.init();
            for v in &values {
                op.absorb(&mut st, &Value::Integer(*v));
            }
            op.finish(&st)
        };
        if values.is_empty() {
            prop_assert!(fold(AggOp::Min).is_null());
            prop_assert!(fold(AggOp::Sum).is_null());
            prop_assert_eq!(fold(AggOp::Count), Value::Integer(0));
        } else {
            prop_assert_eq!(fold(AggOp::Min), Value::Integer(*values.iter().min().unwrap()));
            prop_assert_eq!(fold(AggOp::Max), Value::Integer(*values.iter().max().unwrap()));
            prop_assert_eq!(fold(AggOp::Sum), Value::Integer(values.iter().sum()));
            prop_assert_eq!(fold(AggOp::Count), Value::Integer(values.len() as i64));
            let avg = values.iter().sum::<i64>() as f64 / values.len() as f64;
            prop_assert_eq!(fold(AggOp::Avg), Value::Real(avg));
        }
    }
}

// ---- interval round-trip ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intervals_reconstruct_membership(
        // timeline[s][k]: is key k present in snapshot s?
        timeline in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 6),
            1..8,
        ),
    ) {
        let session = RqlSession::with_defaults().unwrap();
        session.execute("CREATE TABLE m (k INTEGER)").unwrap();
        for present in &timeline {
            session.execute("DELETE FROM m").unwrap();
            for (k, p) in present.iter().enumerate() {
                if *p {
                    session.execute(&format!("INSERT INTO m VALUES ({k})")).unwrap();
                }
            }
            session.declare_snapshot(None).unwrap();
        }
        session
            .collate_data_into_intervals(
                "SELECT snap_id FROM SnapIds",
                "SELECT k FROM m",
                "iv",
            )
            .unwrap();
        let rows = session
            .query_aux("SELECT k, start_snapshot, end_snapshot FROM iv")
            .unwrap()
            .rows;
        // Intervals per key must not overlap and must reconstruct the
        // timeline exactly.
        for (s, present) in timeline.iter().enumerate() {
            let sid = s as i64 + 1;
            for (k, p) in present.iter().enumerate() {
                let covered = rows
                    .iter()
                    .filter(|r| r[0].as_i64() == Some(k as i64))
                    .filter(|r| {
                        r[1].as_i64().unwrap() <= sid && sid <= r[2].as_i64().unwrap()
                    })
                    .count();
                prop_assert_eq!(
                    covered,
                    usize::from(*p),
                    "key {} snapshot {}: expected {} covering interval(s)",
                    k,
                    sid,
                    u32::from(*p)
                );
            }
        }
    }
}

// ---- record codec --------------------------------------------------------------

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        any::<f64>()
            .prop_filter("no NaN", |f| !f.is_nan())
            .prop_map(Value::Real),
        "[a-zA-Z0-9 '\\u{e9}\\u{4e16}]{0,40}".prop_map(Value::Text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn record_roundtrip(row in proptest::collection::vec(any_value(), 0..12)) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let back = decode_row(&buf).unwrap();
        prop_assert_eq!(row, back);
    }

    #[test]
    fn index_key_order_matches_total_cmp(a in any_value(), b in any_value()) {
        // Skip the documented big-integer key-space conflation.
        let big = |v: &Value| matches!(v, Value::Integer(i) if i.abs() > (1 << 52));
        prop_assume!(!big(&a) && !big(&b));
        let (mut ka, mut kb) = (Vec::new(), Vec::new());
        encode_index_key(std::slice::from_ref(&a), &mut ka);
        encode_index_key(std::slice::from_ref(&b), &mut kb);
        let cmp = a.total_cmp(&b);
        if cmp != std::cmp::Ordering::Equal {
            prop_assert_eq!(ka.cmp(&kb), cmp, "{:?} vs {:?}", a, b);
        }
    }
}
