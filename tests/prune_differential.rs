//! Differential tests for zone-map/bloom sidecar pruning.
//!
//! * **Pruned = unpruned** — over arbitrary snapshot histories, a
//!   session with filter columns declared (sidecars built, backfilled,
//!   and consulted on every Qq scan) must produce byte-identical result
//!   tables to an oracle session running semantically identical Qq whose
//!   WHERE is opaque to pruning (the filter column wrapped in
//!   arithmetic/concat, so no predicate atom is ever extracted). Runs
//!   across all four mechanisms, every `DeltaPolicy`, and memo on/off.
//! * **Adversarial sidecars** — a sidecar builder that emits garbage
//!   bytes must never change a result: decode fails, the page degrades
//!   to an ordinary counted read. Stale backfill installs (epoch moved)
//!   must be refused.
//! * **Positive control** — a selective predicate over a declared
//!   filter column actually prunes pages, and a snapshot whose changed
//!   pages are all refuted is counted as a pruned snapshot.

use std::sync::Arc;

use proptest::prelude::*;

use rql::{AggOp, DeltaPolicy, RqlSession};
use rql_memo::{MemoConfig, MemoStore};
use rql_sqlengine::Row;

// ---- fixtures -------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, i64),
    Delete(u8),
    Update(u8, i64),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -1000i64..1000).prop_map(|(k, v)| Op::Insert(k % 12, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 12)),
        (any::<u8>(), -1000i64..1000).prop_map(|(k, v)| Op::Update(k % 12, v)),
        Just(Op::Snapshot),
    ]
}

/// Replay one op sequence into a fresh session. `declare` turns sidecar
/// pruning on up front (the DDL-hint path), so every commit in the
/// history carries sidecars and current pages are backfilled.
fn build_session(ops: &[Op], declare: bool) -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().expect("session");
    session
        .execute("CREATE TABLE kv (k INTEGER, v INTEGER, t TEXT)")
        .expect("create");
    if declare {
        session
            .snap_db()
            .declare_filter_columns("kv", &["k", "v", "t"])
            .expect("declare filter columns");
    }
    let mut declared = 0usize;
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                session
                    .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                    .expect("dedup");
                session
                    .execute(&format!("INSERT INTO kv VALUES ({k}, {v}, 'x{k}')"))
                    .expect("insert");
            }
            Op::Delete(k) => {
                session
                    .execute(&format!("DELETE FROM kv WHERE k = {k}"))
                    .expect("delete");
            }
            Op::Update(k, v) => {
                session
                    .execute(&format!("UPDATE kv SET v = {v} WHERE k = {k}"))
                    .expect("update");
            }
            Op::Snapshot => {
                session.declare_snapshot(None).expect("snapshot");
                declared += 1;
            }
        }
    }
    if declared == 0 {
        session.declare_snapshot(None).expect("snapshot");
    }
    session
}

const QS: &str = "SELECT snap_id FROM SnapIds";

/// Qq pairs: `.0` is prunable (bare column vs constant, so the sidecars
/// can refute pages), `.1` is the semantically identical opaque form
/// (`+ 0` / `|| ''` defeats atom extraction without changing a single
/// row: integer arithmetic is exact here and NULLs filter identically).
const QQ_COLLATE: (&str, &str) = (
    "SELECT k, v FROM kv WHERE v >= 0",
    "SELECT k, v FROM kv WHERE v + 0 >= 0",
);
const QQ_BLOOM: (&str, &str) = (
    "SELECT k FROM kv WHERE t = 'x3'",
    "SELECT k FROM kv WHERE t || '' = 'x3'",
);
const QQ_AGGVAR: (&str, &str) = (
    "SELECT SUM(v) FROM kv WHERE v < 0",
    "SELECT SUM(v) FROM kv WHERE v - 0 < 0",
);
const QQ_AGGTABLE: (&str, &str) = (
    "SELECT k, v FROM kv WHERE k <= 6",
    "SELECT k, v FROM kv WHERE k + 0 <= 6",
);
const QQ_INTERVALS: (&str, &str) = (
    "SELECT k FROM kv WHERE v BETWEEN -500 AND 500",
    "SELECT k FROM kv WHERE v + 0 BETWEEN -500 AND 500",
);

/// Run every mechanism applicable under `policy`, with `pick` choosing
/// the prunable or the opaque Qq variant, returning each result table's
/// rows in a canonical order.
fn run_mechanisms(
    session: &Arc<RqlSession>,
    policy: DeltaPolicy,
    tag: &str,
    pick: impl Fn((&'static str, &'static str)) -> &'static str,
) -> Vec<Vec<Row>> {
    let mut out = Vec::new();
    let read = |table: &str, order: &str| -> Vec<Row> {
        session
            .query_aux(&format!("SELECT * FROM {table} ORDER BY {order}"))
            .expect("read back")
            .rows
    };

    session
        .collate_data_with_policy(QS, pick(QQ_COLLATE), &format!("c{tag}"), policy)
        .expect("collate");
    out.push(read(&format!("c{tag}"), "k, v"));

    session
        .collate_data_with_policy(QS, pick(QQ_BLOOM), &format!("b{tag}"), policy)
        .expect("collate bloom");
    out.push(read(&format!("b{tag}"), "k"));

    session
        .aggregate_data_in_variable_with_policy(
            QS,
            pick(QQ_AGGVAR),
            &format!("a{tag}"),
            AggOp::Max,
            policy,
        )
        .expect("aggvar");
    out.push(read(&format!("a{tag}"), "1"));

    // AggregateDataInTable and CollateDataIntoIntervals have no delta
    // driver; under Forced the pre-flight rejects them.
    if policy != DeltaPolicy::Forced {
        session
            .aggregate_data_in_table_with_policy(
                QS,
                pick(QQ_AGGTABLE),
                &format!("t{tag}"),
                &[("v".to_owned(), AggOp::Min)],
                policy,
            )
            .expect("aggtable");
        out.push(read(&format!("t{tag}"), "k"));

        session
            .collate_data_into_intervals_with_policy(
                QS,
                pick(QQ_INTERVALS),
                &format!("i{tag}"),
                policy,
            )
            .expect("intervals");
        out.push(read(&format!("i{tag}"), "k, start_snapshot, end_snapshot"));
    }
    out
}

// ---- pruned = unpruned ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pruned_matches_unpruned_for_all_policies(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        for (pi, policy) in [DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced]
            .into_iter()
            .enumerate()
        {
            // Oracle: no declared filter columns *and* opaque predicates,
            // so neither DDL-hint nor auto-inferred sidecars can ever
            // refute a page for it.
            let oracle = build_session(&ops, false);
            let pruned = build_session(&ops, true);

            let want = run_mechanisms(&oracle, policy, &format!("_{pi}_0"), |q| q.1);
            let got = run_mechanisms(&pruned, policy, &format!("_{pi}_0"), |q| q.0);
            prop_assert_eq!(&got, &want, "pruned run diverged under {:?}", policy);

            // Memo on: cold populates, warm replays — still identical.
            let memo = Arc::new(MemoStore::new(MemoConfig::default()));
            pruned.set_memo(Some(Arc::clone(&memo)));
            let cold = run_mechanisms(&pruned, policy, &format!("_{pi}_1"), |q| q.0);
            let want_again = run_mechanisms(&oracle, policy, &format!("_{pi}_1"), |q| q.1);
            prop_assert_eq!(&cold, &want_again, "memo-cold pruned run diverged under {:?}", policy);
            let warm = run_mechanisms(&pruned, policy, &format!("_{pi}_2"), |q| q.0);
            let want_warm = run_mechanisms(&oracle, policy, &format!("_{pi}_2"), |q| q.1);
            prop_assert_eq!(&warm, &want_warm, "memo-warm pruned run diverged under {:?}", policy);
            pruned.set_memo(None);
        }
    }
}

// ---- adversarial sidecars -------------------------------------------------

const HISTORY_HEAD: &str = "\
    INSERT INTO kv VALUES (1, 10, 'x1'), (2, 20, 'x2'), (3, -30, 'x3');\n\
    BEGIN; COMMIT WITH SNAPSHOT;\n\
    UPDATE kv SET v = 21 WHERE k = 2;\n\
    BEGIN; COMMIT WITH SNAPSHOT;";

const HISTORY_TAIL: &str = "\
    DELETE FROM kv WHERE k = 3;\n\
    INSERT INTO kv VALUES (4, -40, 'x4'), (5, 50, 'x5');\n\
    BEGIN; COMMIT WITH SNAPSHOT;\n\
    UPDATE kv SET v = 51 WHERE k = 5;\n\
    BEGIN; COMMIT WITH SNAPSHOT;";

fn adversarial_pair() -> (Arc<RqlSession>, Arc<RqlSession>) {
    let mk = || {
        let s = RqlSession::with_defaults().expect("session");
        s.execute("CREATE TABLE kv (k INTEGER, v INTEGER, t TEXT)")
            .expect("create");
        s.execute(HISTORY_HEAD).expect("history head");
        s
    };
    (mk(), mk())
}

#[test]
fn garbage_sidecar_builder_degrades_to_full_reads() {
    let (oracle, evil) = adversarial_pair();
    evil.snap_db()
        .declare_filter_columns("kv", &["k", "v", "t"])
        .expect("declare");
    // From here on every committed page gets a sidecar that cannot
    // decode (wrong magic, wrong length, no checksum). Declared tables
    // are frozen, so auto-inference never replaces this builder.
    evil.snap_db()
        .store()
        .set_sidecar_builder(Arc::new(|_, _| Some(vec![0xAB; 17])));
    oracle.execute(HISTORY_TAIL).expect("tail");
    evil.execute(HISTORY_TAIL).expect("tail");

    for policy in [DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced] {
        let tag = format!("_g{policy:?}");
        let want = run_mechanisms(&oracle, policy, &tag, |q| q.1);
        let got = run_mechanisms(&evil, policy, &tag, |q| q.0);
        assert_eq!(
            got, want,
            "garbage sidecars changed results under {policy:?}"
        );
    }
}

#[test]
fn stale_backfill_install_is_refused() {
    let (_, session) = adversarial_pair();
    let store = session.snap_db().store();
    let stale_epoch = store.sidecar_epoch();
    // A commit moves the epoch; sidecars built against the old pinned
    // view must not land.
    session
        .execute("INSERT INTO kv VALUES (9, 90, 'x9'); BEGIN; COMMIT WITH SNAPSHOT;")
        .expect("commit");
    let pids: Vec<u64> = store.current_sidecars().keys().copied().collect();
    let entries: Vec<(rql_pagestore::PageId, Vec<u8>)> = pids
        .iter()
        .chain(std::iter::once(&u64::MAX))
        .map(|&p| (rql_pagestore::PageId(p), vec![0xCD; 9]))
        .collect();
    assert_eq!(
        store.install_current_sidecars(stale_epoch, entries),
        0,
        "stale-epoch backfill must install nothing"
    );
}

// ---- positive control -----------------------------------------------------

#[test]
fn selective_predicate_prunes_pages_and_snapshots() {
    let session = RqlSession::with_defaults().expect("session");
    session
        .execute("CREATE TABLE wide (a INTEGER, b INTEGER)")
        .expect("create");
    session
        .snap_db()
        .declare_filter_columns("wide", &["a"])
        .expect("declare");
    // Enough rows that the a < 10 band and the a >= 1500 band live on
    // disjoint heap pages.
    for chunk in 0..20 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let a = chunk * 100 + i;
                format!("({a}, {})", a * 7)
            })
            .collect();
        session
            .execute(&format!("INSERT INTO wide VALUES {}", rows.join(", ")))
            .expect("insert");
    }
    session.declare_snapshot(None).expect("snapshot");
    // Two more snapshots whose changed pages only hold a >= 1500 — fully
    // refutable for the a < 10 scan below.
    for round in 0..2 {
        session
            .execute(&format!(
                "UPDATE wide SET b = b + {} WHERE a >= 1500",
                round + 1
            ))
            .expect("update");
        session.declare_snapshot(None).expect("snapshot");
    }

    let io = session.snap_db().io_stats();
    let before = io.snapshot();
    session
        .collate_data_with_policy(
            QS,
            "SELECT a, b FROM wide WHERE a < 10",
            "ctrl",
            DeltaPolicy::Forced,
        )
        .expect("collate");
    let after = io.snapshot();
    assert!(
        after.pages_pruned > before.pages_pruned,
        "selective scan should prune pages: {after:?}"
    );
    assert!(
        after.snapshots_pruned > before.snapshots_pruned,
        "fully-refuted changed sets should be counted as pruned snapshots: {after:?}"
    );
    let rows = session
        .query_aux("SELECT COUNT(*) FROM ctrl")
        .expect("count")
        .rows;
    // 10 matching rows per snapshot × 3 snapshots.
    assert_eq!(rows[0][0].as_i64(), Some(30));
}
