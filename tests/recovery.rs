//! Crash-recovery integration tests: the WAL restores the current state
//! and the snapshot sequence, the persisted Maplog + Pagelog restore the
//! archive, and previously declared snapshots remain queryable through
//! SQL after a "crash" (dropping every in-memory structure and reopening
//! from the logs).

use std::sync::Arc;

use rql_pagestore::{LogStorage, MemStorage, PagerConfig};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{Database, Value};

struct Storages {
    wal: Arc<MemStorage>,
    pagelog: Arc<MemStorage>,
    maplog: Arc<MemStorage>,
}

impl Storages {
    fn new() -> Self {
        Storages {
            wal: Arc::new(MemStorage::new()),
            pagelog: Arc::new(MemStorage::new()),
            maplog: Arc::new(MemStorage::new()),
        }
    }

    fn open(&self) -> Arc<Database> {
        let config = RetroConfig {
            pager: PagerConfig {
                page_size: 1024,
                cache_capacity: 256,
                wal_sync_on_commit: false,
            },
            ..RetroConfig::new()
        };
        let store = RetroStore::open(
            config,
            self.wal.clone(),
            self.pagelog.clone(),
            self.maplog.clone(),
        )
        .unwrap();
        Database::over_store(store)
    }
}

#[test]
fn snapshots_survive_crash_and_reopen() {
    let storages = Storages::new();
    {
        let db = storages.open();
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
            .unwrap();
        db.declare_snapshot().unwrap(); // S1
        db.execute("DELETE FROM t WHERE k = 1").unwrap();
        db.execute("INSERT INTO t VALUES (3, 'three')").unwrap();
        db.declare_snapshot().unwrap(); // S2
        db.execute("UPDATE t SET v = 'TWO' WHERE k = 2").unwrap();
        db.store().flush().unwrap();
        // drop = crash (MemStorage contents persist like files would)
    }
    let db = storages.open();
    assert_eq!(db.store().snapshot_count(), 2);
    // Current state.
    let r = db.query("SELECT k, v FROM t ORDER BY k").unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::Integer(2), Value::text("TWO")]);
    // S1: all three original facts.
    let r = db.query("SELECT AS OF 1 k FROM t ORDER BY k").unwrap();
    let keys: Vec<i64> = r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
    assert_eq!(keys, vec![1, 2]);
    // S2.
    let r = db.query("SELECT AS OF 2 k, v FROM t ORDER BY k").unwrap();
    assert_eq!(r.rows[0], vec![Value::Integer(2), Value::text("two")]);
    assert_eq!(r.rows[1], vec![Value::Integer(3), Value::text("three")]);
}

#[test]
fn recovered_store_keeps_accepting_snapshots() {
    let storages = Storages::new();
    {
        let db = storages.open();
        db.execute("CREATE TABLE t (k INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.declare_snapshot().unwrap();
        db.store().flush().unwrap();
    }
    let db = storages.open();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let sid = db.declare_snapshot().unwrap();
    assert_eq!(sid, 2);
    db.execute("DELETE FROM t").unwrap();
    // Both generations of snapshots remain correct.
    let r = db.query("SELECT AS OF 1 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    let r = db.query("SELECT AS OF 2 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(0));
}

#[test]
fn torn_wal_tail_discards_uncommitted_work_only() {
    let storages = Storages::new();
    let committed_len;
    {
        let db = storages.open();
        db.execute("CREATE TABLE t (k INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.declare_snapshot().unwrap();
        committed_len = storages.wal.len();
        // More work that will be torn mid-record.
        db.execute("INSERT INTO t VALUES (2)").unwrap();
    }
    let torn = committed_len + (storages.wal.len() - committed_len) / 2;
    storages.wal.truncate(torn).unwrap();
    let db = storages.open();
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
    assert_eq!(db.store().snapshot_count(), 1);
    let r = db.query("SELECT AS OF 1 COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn indexes_survive_recovery() {
    let storages = Storages::new();
    {
        let db = storages.open();
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)").unwrap();
        db.execute("CREATE INDEX t_k ON t (k)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        db.declare_snapshot().unwrap();
        db.execute("DELETE FROM t WHERE k < 25").unwrap();
        db.store().flush().unwrap();
    }
    let db = storages.open();
    // Point lookups through the recovered index, current and AS OF.
    let r = db.query("SELECT v FROM t WHERE k = 30").unwrap();
    assert_eq!(r.rows[0][0], Value::text("v30"));
    assert!(db
        .query("SELECT v FROM t WHERE k = 10")
        .unwrap()
        .rows
        .is_empty());
    let r = db.query("SELECT AS OF 1 v FROM t WHERE k = 10").unwrap();
    assert_eq!(r.rows[0][0], Value::text("v10"));
}
