//! Leader/follower replication through two full `rqld` servers: a
//! leader over a durable store ships every committed segment to a
//! follower serving read-only queries. Covers the differential contract
//! (8 concurrent follower clients must see byte-identical results to
//! the leader for every shipped snapshot), the `RQL505` read-only
//! surface, `REPLSTATUS` wire stability, kill-mid-seed recovery
//! (partial files, no marker → wipe and reseed) and kill-mid-stream
//! recovery (torn WAL tail on restart → truncate, resume from the
//! durable offset, converge).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use rql_repro::rqld::{serve, Client, ClientError, ServerConfig, ServerHandle};
use rql_sqlengine::Value;

/// Same fixture as `rqld_concurrent`: users logging in and out across
/// four declared snapshots.
const SETUP: &str = "\
CREATE TABLE events (e_user TEXT, e_kind TEXT, e_val INTEGER);
BEGIN;
INSERT INTO events VALUES ('ann', 'login', 1), ('bob', 'login', 2);
COMMIT WITH SNAPSHOT;
BEGIN;
INSERT INTO events VALUES ('cat', 'login', 3), ('ann', 'click', 4);
COMMIT WITH SNAPSHOT;
BEGIN;
DELETE FROM events WHERE e_user = 'bob';
INSERT INTO events VALUES ('dan', 'login', 5);
COMMIT WITH SNAPSHOT;
BEGIN;
INSERT INTO events VALUES ('bob', 'login', 6), ('eve', 'click', 7);
COMMIT WITH SNAPSHOT;
";

/// One retrospective query per Table-1 mechanism; each folds *every*
/// declared snapshot, so leader/follower equality here is equality for
/// every shipped snapshot.
const QUERIES: &[&str] = &[
    "SELECT CollateData(snap_id, 'SELECT DISTINCT e_user FROM events', 'CollUsers') \
     FROM SnapIds;\n\
     --@aux\n\
     SELECT DISTINCT e_user FROM CollUsers ORDER BY e_user;",
    "SELECT AggregateDataInVariable(snap_id, 'SELECT COUNT(e_val) FROM events', \
     'MaxRows', 'max') FROM SnapIds;\n\
     --@aux\n\
     SELECT * FROM MaxRows;",
    "SELECT AggregateDataInTable(snap_id, 'SELECT e_user, e_val FROM events', \
     'MinVal', '(e_val,min)') FROM SnapIds;\n\
     --@aux\n\
     SELECT e_user, e_val FROM MinVal ORDER BY e_user;",
    "SELECT CollateDataIntoIntervals(snap_id, 'SELECT e_user FROM events', 'Pres') \
     FROM SnapIds;\n\
     --@aux\n\
     SELECT e_user, start_snapshot, end_snapshot FROM Pres \
     ORDER BY e_user, start_snapshot, end_snapshot;",
];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("rql-replsrv-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_leader(dir: &TempDir) -> (ServerHandle, SocketAddr, SocketAddr) {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(dir.0.clone()),
            repl_listen: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("leader serve");
    let addr = handle.local_addr();
    let repl = handle.repl_addr().expect("leader repl addr");
    (handle, addr, repl)
}

fn start_follower(dir: &TempDir, leader_repl: SocketAddr) -> (ServerHandle, SocketAddr) {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(dir.0.clone()),
            follow: Some(leader_repl.to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("follower serve");
    let addr = handle.local_addr();
    (handle, addr)
}

/// Poll the follower's `STATUS` line until it has seen `want` snapshots.
fn wait_for_snapshots(addr: SocketAddr, want: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let needle = format!("snapshots={want}");
    loop {
        let mut c = Client::connect(addr).expect("connect for status");
        let status = c.status().expect("status");
        if status.contains(&needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never reached {needle}: {status}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

fn run_rows(client: &mut Client, program: &str) -> Vec<Vec<Vec<Value>>> {
    let result = client.run(program).expect("run");
    result.tables.iter().map(|t| t.rows.clone()).collect()
}

#[test]
fn eight_followers_match_leader_for_every_snapshot() {
    let leader_dir = TempDir::new("difflead");
    let follower_dir = TempDir::new("difffoll");
    let (leader, leader_addr, leader_repl) = start_leader(&leader_dir);

    let mut writer = Client::connect(leader_addr).expect("connect leader");
    writer.run(SETUP).expect("setup");

    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 4, Duration::from_secs(30));

    // The ground truth: the leader's own answers.
    let expected: Vec<Vec<Vec<Vec<Value>>>> =
        QUERIES.iter().map(|q| run_rows(&mut writer, q)).collect();

    // 8 concurrent clients on the follower, staggered across the
    // mechanism mix; every answer must equal the leader's byte-for-byte.
    const CLIENTS: usize = 8;
    let results: Vec<Vec<Vec<Vec<Vec<Value>>>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(follower_addr).expect("connect follower");
                    (0..QUERIES.len())
                        .map(|j| run_rows(&mut client, QUERIES[(i + j) % QUERIES.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (i, per_client) in results.iter().enumerate() {
        for (j, got) in per_client.iter().enumerate() {
            let want = &expected[(i + j) % QUERIES.len()];
            assert_eq!(
                got, want,
                "follower client {i}, query {j} diverged from leader"
            );
        }
    }

    // Live streaming: a fifth snapshot committed now reaches follower
    // queries without any reconnect.
    writer
        .run(
            "BEGIN;\n\
             INSERT INTO events VALUES ('fay', 'login', 8);\n\
             COMMIT WITH SNAPSHOT;",
        )
        .expect("live commit");
    wait_for_snapshots(follower_addr, 5, Duration::from_secs(30));
    let mut lc = Client::connect(leader_addr).expect("connect leader");
    let mut fc = Client::connect(follower_addr).expect("connect follower");
    assert_eq!(run_rows(&mut lc, QUERIES[0]), run_rows(&mut fc, QUERIES[0]));

    follower.shutdown();
    follower.wait();
    leader.shutdown();
    leader.wait();
}

#[test]
fn follower_rejects_writes_and_registration_with_rql505() {
    let leader_dir = TempDir::new("rolead");
    let follower_dir = TempDir::new("rofoll");
    let (leader, leader_addr, leader_repl) = start_leader(&leader_dir);
    let mut writer = Client::connect(leader_addr).expect("connect leader");
    writer.run(SETUP).expect("setup");

    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 4, Duration::from_secs(30));
    let mut fc = Client::connect(follower_addr).expect("connect follower");

    // Snap-store writes bounce with the replica code.
    let err = fc
        .run("INSERT INTO events VALUES ('eve', 'login', 9);")
        .expect_err("write on replica");
    match &err {
        ClientError::Server { code, .. } => assert_eq!(code, "RQL505", "{err}"),
        other => panic!("expected server error, got {other}"),
    }

    // Standing-query registration bounces the same way.
    let err = fc
        .register("MAINTAIN QUERY w AS SELECT DISTINCT e_user FROM events;")
        .expect_err("register on replica");
    match &err {
        ClientError::Server { code, .. } => assert_eq!(code, "RQL505", "{err}"),
        other => panic!("expected server error, got {other}"),
    }

    // Reads and aux scratch space still work.
    let rows = run_rows(&mut fc, QUERIES[0]);
    assert!(!rows.is_empty());

    follower.shutdown();
    follower.wait();
    leader.shutdown();
    leader.wait();
}

#[test]
fn replstatus_fields_are_wire_stable_on_both_ends() {
    const FIELDS: [&str; 14] = [
        "role",
        "phase",
        "followers",
        "seeds_served",
        "segments_shipped",
        "bytes_shipped",
        "sheds",
        "segments_applied",
        "bytes_applied",
        "seed_bytes",
        "reconnects",
        "lag_bytes",
        "lag_snapshots",
        "lag_micros",
    ];
    let assert_order = |json: &str| {
        let mut pos = 0usize;
        for name in FIELDS {
            let key = format!("\"{name}\":");
            let at = json
                .find(&key)
                .unwrap_or_else(|| panic!("missing {key} in {json}"));
            assert!(at >= pos, "{name} out of order in {json}");
            pos = at;
        }
        // Derived float, appended after the wire-stable integer list so
        // `jq .lag_seconds` works without unit conversion.
        assert!(
            json.contains("\"lag_seconds\":"),
            "missing lag_seconds: {json}"
        );
    };

    let leader_dir = TempDir::new("rslead");
    let follower_dir = TempDir::new("rsfoll");
    let (leader, leader_addr, leader_repl) = start_leader(&leader_dir);
    let mut writer = Client::connect(leader_addr).expect("connect leader");
    writer.run(SETUP).expect("setup");
    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 4, Duration::from_secs(30));

    // Leader side: JSON field order locked, human form names the role.
    let json = writer.replstatus(true).expect("leader replstatus json");
    assert_order(&json);
    assert!(json.starts_with("{\"role\":1"), "leader role: {json}");
    let human = writer.replstatus(false).expect("leader replstatus");
    assert!(human.starts_with("role leader\n"), "leader human: {human}");
    let first_fields: Vec<&str> = human.lines().filter_map(|l| l.split(' ').next()).collect();
    let mut expected: Vec<&str> = FIELDS.to_vec();
    expected.push("lag_seconds");
    assert_eq!(first_fields, expected, "human line order: {human}");

    // Follower side: same shape, follower role, non-zero apply counters.
    let mut fc = Client::connect(follower_addr).expect("connect follower");
    let fjson = fc.replstatus(true).expect("follower replstatus json");
    assert_order(&fjson);
    assert!(fjson.starts_with("{\"role\":2"), "follower role: {fjson}");
    assert!(
        fjson.contains("\"seed_bytes\":") && !fjson.contains("\"seed_bytes\":0,"),
        "follower seeded: {fjson}"
    );
    let fhuman = fc.replstatus(false).expect("follower replstatus");
    assert!(fhuman.starts_with("role follower\n"), "{fhuman}");

    // The METRICS surface carries the same counters under `repl_`.
    let metrics = writer.metrics(true).expect("metrics json");
    assert!(metrics.contains("\"repl_role\":1"), "{metrics}");
    assert!(metrics.contains("\"repl_seeds_served\":1"), "{metrics}");

    follower.shutdown();
    follower.wait();
    leader.shutdown();
    leader.wait();
}

#[test]
fn kill_mid_seed_leaves_partial_files_and_reseeds() {
    let leader_dir = TempDir::new("seedlead");
    let follower_dir = TempDir::new("seedfoll");
    let (leader, leader_addr, leader_repl) = start_leader(&leader_dir);
    let mut writer = Client::connect(leader_addr).expect("connect leader");
    writer.run(SETUP).expect("setup");

    // A crash mid-seed leaves partial log files and no `repl.seeded`
    // marker: the restarted follower must wipe them and reseed.
    std::fs::write(follower_dir.0.join("wal.log"), b"partial seed garbage").unwrap();
    std::fs::write(follower_dir.0.join("pagelog.log"), b"more garbage").unwrap();

    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 4, Duration::from_secs(30));
    let mut fc = Client::connect(follower_addr).expect("connect follower");
    assert_eq!(
        run_rows(&mut writer, QUERIES[0]),
        run_rows(&mut fc, QUERIES[0])
    );

    follower.shutdown();
    follower.wait();
    leader.shutdown();
    leader.wait();
}

#[test]
fn kill_mid_stream_truncated_wal_resumes_from_durable_offset() {
    let leader_dir = TempDir::new("streamlead");
    let follower_dir = TempDir::new("streamfoll");
    let (leader, leader_addr, leader_repl) = start_leader(&leader_dir);
    let mut writer = Client::connect(leader_addr).expect("connect leader");
    writer.run(SETUP).expect("setup");

    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 4, Duration::from_secs(30));
    follower.shutdown();
    follower.wait();

    // Simulate a crash that tore the follower's WAL tail mid-record:
    // recovery must truncate to the last committed segment and resume
    // from that durable offset — no reseed.
    let wal = follower_dir.0.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 8).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // More leader commits while the follower is down.
    writer
        .run(
            "BEGIN;\n\
             INSERT INTO events VALUES ('gus', 'login', 9);\n\
             COMMIT WITH SNAPSHOT;",
        )
        .expect("commit while follower down");

    let (follower, follower_addr) = start_follower(&follower_dir, leader_repl);
    wait_for_snapshots(follower_addr, 5, Duration::from_secs(30));
    let mut fc = Client::connect(follower_addr).expect("connect follower");
    assert_eq!(
        run_rows(&mut writer, QUERIES[0]),
        run_rows(&mut fc, QUERIES[0])
    );
    assert_eq!(
        run_rows(&mut writer, QUERIES[3]),
        run_rows(&mut fc, QUERIES[3])
    );

    // One seed total: the restart resumed, it did not re-bootstrap.
    let json = writer.replstatus(true).expect("replstatus");
    assert!(
        json.contains("\"seeds_served\":1"),
        "resume reseeded: {json}"
    );

    follower.shutdown();
    follower.wait();
    leader.shutdown();
    leader.wait();
}
