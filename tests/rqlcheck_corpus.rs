//! Golden-diagnostic corpus for `rqlcheck`.
//!
//! Every program under `tests/rqlcheck_corpus/bad/` declares the
//! diagnostics it must produce with `-- expect: RQLxxx[, RQLxxx...]`
//! comment lines; the harness checks each expected code is reported
//! with a source span, that no *unexpected errors* appear (warnings and
//! advisories may ride along only when expected), and that the corpus
//! as a whole exercises a healthy slice of the code registry.
//!
//! Programs under `good/` (and the runnable examples in `examples/rql/`)
//! must analyze clean — and, differentially, must execute on a live
//! session without a semantic error: whatever `rqlcheck` accepts, the
//! runtime accepts too.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rql_repro::rql::analyze::{
    analyze_program, fix_program, parse_program, run_program, run_program_with_reports,
    Applicability, Code, Diagnostic, SchemaEnv, Severity, SourceKind,
};
use rql_repro::rql::RqlSession;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn rql_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rql"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .rql files under {}", dir.display());
    files
}

/// `-- expect:` annotations, in file order.
fn expected_codes(src: &str) -> Vec<String> {
    src.lines()
        .filter_map(|l| l.trim().strip_prefix("-- expect:"))
        .flat_map(|rest| rest.split(','))
        .map(|c| c.trim().to_owned())
        .filter(|c| !c.is_empty())
        .collect()
}

fn diagnostics_for(src: &str) -> Vec<Diagnostic> {
    match parse_program(src) {
        Err(d) => vec![*d],
        Ok(program) => {
            analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default()).diagnostics
        }
    }
}

#[test]
fn bad_corpus_reports_expected_codes_with_spans() {
    let mut exercised: BTreeSet<&'static str> = BTreeSet::new();
    for file in rql_files(&repo_path("tests/rqlcheck_corpus/bad")) {
        let src = std::fs::read_to_string(&file).unwrap();
        let expected = expected_codes(&src);
        assert!(
            !expected.is_empty(),
            "{}: bad-corpus file lacks -- expect: annotations",
            file.display()
        );
        let diags = diagnostics_for(&src);
        for code in &expected {
            // The annotation must name a registered stable code.
            let registered = Code::ALL
                .iter()
                .find(|c| c.as_str() == code)
                .unwrap_or_else(|| panic!("{}: {code} is not a registered code", file.display()));
            let matching: Vec<&Diagnostic> =
                diags.iter().filter(|d| d.code.as_str() == *code).collect();
            assert!(
                !matching.is_empty(),
                "{}: expected {code}, got {:?}",
                file.display(),
                diags
            );
            assert!(
                matching.iter().any(|d| d.span.is_some()),
                "{}: {code} reported without a source span",
                file.display()
            );
            exercised.insert(registered.as_str());
        }
        // The expectations are complete for errors: anything
        // error-severity beyond them is an analyzer regression.
        for d in &diags {
            if d.severity == Severity::Error {
                assert!(
                    expected.iter().any(|c| c == d.code.as_str()),
                    "{}: unexpected error {d:?}",
                    file.display()
                );
            }
        }
    }
    assert!(
        exercised.len() >= 20,
        "corpus exercises only {} distinct codes: {exercised:?}",
        exercised.len()
    );
}

#[test]
fn good_corpus_analyzes_clean_and_executes() {
    let mut dirs = vec![repo_path("tests/rqlcheck_corpus/good")];
    dirs.push(repo_path("examples/rql"));
    for dir in dirs {
        for file in rql_files(&dir) {
            let src = std::fs::read_to_string(&file).unwrap();
            let program =
                parse_program(&src).unwrap_or_else(|d| panic!("{}: {d:?}", file.display()));
            let analysis = analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default());
            let errors: Vec<&Diagnostic> = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", file.display());
            // Differential check: accepted programs run without error.
            let session = RqlSession::with_defaults().unwrap();
            run_program(&session, &program)
                .unwrap_or_else(|e| panic!("{}: runtime rejected: {e:?}", file.display()));
        }
    }
}

/// `--fix` on the bad corpus must converge: the fixpoint loop is bounded
/// and every file settles rather than oscillating.
#[test]
fn bad_corpus_fixes_converge() {
    for file in rql_files(&repo_path("tests/rqlcheck_corpus/bad")) {
        let src = std::fs::read_to_string(&file).unwrap();
        let outcome = fix_program(&src, &SchemaEnv::new(), &SchemaEnv::aux_default());
        assert!(
            outcome.converged,
            "{}: fixes did not converge after {} rounds",
            file.display(),
            outcome.iterations
        );
        // Whatever was machine-applicably fixed stays fixed: the final
        // text carries no further machine-applicable fixes.
        let diags = diagnostics_for(&outcome.src);
        let leftover: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| {
                d.source == SourceKind::Program
                    && d.fix
                        .as_ref()
                        .is_some_and(|f| f.applicability == Applicability::MachineApplicable)
            })
            .collect();
        assert!(leftover.is_empty(), "{}: {leftover:?}", file.display());
    }
}

/// The `fix/` fixture pair: fixing `before.rql` must reproduce
/// `after.rql` byte for byte, the fixed program must analyze clean of
/// every machine-applicably fixed code, and both programs must produce
/// identical SELECT output when executed on fresh sessions.
#[test]
fn fix_fixture_matches_golden_and_executes_identically() {
    let before =
        std::fs::read_to_string(repo_path("tests/rqlcheck_corpus/fix/before.rql")).unwrap();
    let after = std::fs::read_to_string(repo_path("tests/rqlcheck_corpus/fix/after.rql")).unwrap();

    let outcome = fix_program(&before, &SchemaEnv::new(), &SchemaEnv::aux_default());
    assert!(outcome.converged, "fix loop did not converge");
    assert!(
        outcome.applied >= 3,
        "expected >= 3 fixes, got {}",
        outcome.applied
    );
    assert_eq!(
        outcome.src, after,
        "fixed before.rql diverges from golden after.rql"
    );

    // The fixed program is warning-free for the fixed codes.
    let diags = diagnostics_for(&after);
    for d in &diags {
        assert!(
            !matches!(
                d.code,
                Code::DeadResultTable | Code::RedundantRecompute | Code::PruneIneligibleWhere
            ),
            "after.rql still reports {d:?}"
        );
    }

    // Differential execution: the fix must not change observable output.
    let run = |src: &str| {
        let program = parse_program(src).unwrap_or_else(|d| panic!("{d:?}"));
        let session = RqlSession::with_defaults().unwrap();
        run_program_with_reports(&session, &program)
            .unwrap_or_else(|e| panic!("runtime rejected: {e:?}"))
    };
    let before_run = run(&before);
    let after_run = run(&outcome.src);
    assert_eq!(
        before_run.tables.len(),
        after_run.tables.len(),
        "fix changed the number of SELECT results"
    );
    for (b, a) in before_run.tables.iter().zip(&after_run.tables) {
        assert_eq!(b.columns, a.columns, "fix changed SELECT columns");
        assert_eq!(b.rows, a.rows, "fix changed SELECT rows");
    }
}
