//! `rqld` end-to-end concurrency tests: N client threads against one
//! in-process server — differential-equal results vs embedded
//! execution, mid-flight cancellation (`RQL300`) and deadline timeout
//! (`RQL301`), graceful-shutdown drain with no lost or duplicated
//! responses, and non-zero delta/latency metrics over `METRICS`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rql::{parse_program, run_program_with_reports, RqlSession};
use rql_repro::rqld::{serve, Client, ClientError, ServerConfig, ServerHandle, SubscriptionEvent};
use rql_repro::trace;
use rql_sqlengine::Value;

/// Shared fixture: a few users logging in and out across snapshots.
const SETUP: &str = "\
CREATE TABLE events (e_user TEXT, e_kind TEXT, e_val INTEGER);
BEGIN;
INSERT INTO events VALUES ('ann', 'login', 1), ('bob', 'login', 2);
COMMIT WITH SNAPSHOT;
BEGIN;
INSERT INTO events VALUES ('cat', 'login', 3), ('ann', 'click', 4);
COMMIT WITH SNAPSHOT;
BEGIN;
DELETE FROM events WHERE e_user = 'bob';
INSERT INTO events VALUES ('dan', 'login', 5);
COMMIT WITH SNAPSHOT;
BEGIN;
INSERT INTO events VALUES ('bob', 'login', 6), ('eve', 'click', 7);
COMMIT WITH SNAPSHOT;
";

/// One query per Table-1 mechanism, each ending in a deterministic
/// `--@aux` read-back of its result table.
const QUERIES: &[&str] = &[
    "SELECT CollateData(snap_id, 'SELECT DISTINCT e_user FROM events', 'CollUsers') \
     FROM SnapIds;\n\
     --@aux\n\
     SELECT DISTINCT e_user FROM CollUsers ORDER BY e_user;",
    "SELECT AggregateDataInVariable(snap_id, 'SELECT COUNT(e_val) FROM events', \
     'MaxRows', 'max') FROM SnapIds;\n\
     --@aux\n\
     SELECT * FROM MaxRows;",
    "SELECT AggregateDataInTable(snap_id, 'SELECT e_user, e_val FROM events', \
     'MinVal', '(e_val,min)') FROM SnapIds;\n\
     --@aux\n\
     SELECT e_user, e_val FROM MinVal ORDER BY e_user;",
    "SELECT CollateDataIntoIntervals(snap_id, 'SELECT e_user FROM events', 'Pres') \
     FROM SnapIds;\n\
     --@aux\n\
     SELECT e_user, start_snapshot, end_snapshot FROM Pres \
     ORDER BY e_user, start_snapshot, end_snapshot;",
];

fn start_server(config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let handle = serve("127.0.0.1:0", config).expect("bind");
    let addr = handle.local_addr();
    (handle, addr)
}

/// Run `program` on a fresh embedded session that replayed `setup`,
/// returning the final table of each statement as plain row vectors.
fn embedded_rows(session: &Arc<RqlSession>, program: &str) -> Vec<Vec<Vec<Value>>> {
    let program = parse_program(program).expect("parse");
    let run = run_program_with_reports(session, &program).expect("embedded run");
    run.tables
        .iter()
        .map(|t| t.rows.iter().map(|r| r.to_vec()).collect())
        .collect()
}

#[test]
fn concurrent_clients_match_embedded_execution() {
    let (handle, addr) = start_server(ServerConfig::default());

    // Seed the shared store over the wire.
    let mut writer = Client::connect(addr).expect("connect writer");
    writer.run(SETUP).expect("setup");

    // The oracle: one embedded session replaying the same history.
    let oracle = RqlSession::with_defaults().expect("embedded session");
    let _ = embedded_rows(&oracle, SETUP);
    let expected: Vec<Vec<Vec<Vec<Value>>>> =
        QUERIES.iter().map(|q| embedded_rows(&oracle, q)).collect();

    const CLIENTS: usize = 8;
    let results: Vec<Vec<Vec<Vec<Vec<Value>>>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Stagger the mix so threads hit different mechanisms
                    // simultaneously.
                    (0..QUERIES.len())
                        .map(|j| {
                            let q = QUERIES[(i + j) % QUERIES.len()];
                            let result = client.run(q).expect("run");
                            result
                                .tables
                                .iter()
                                .map(|t| t.rows.clone())
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Exactly one response per issued query (no lost or duplicated
    // responses), and each matches the embedded oracle.
    assert_eq!(results.len(), CLIENTS);
    for (i, per_client) in results.iter().enumerate() {
        assert_eq!(per_client.len(), QUERIES.len());
        for (j, got) in per_client.iter().enumerate() {
            let want = &expected[(i + j) % QUERIES.len()];
            assert_eq!(got, want, "client {i}, query {j} diverged from embedded");
        }
    }

    // The server counted every query (setup + 8 clients × 4 queries).
    let metrics = writer.metrics(false).expect("metrics");
    let get = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
    };
    assert_eq!(get("queries_total"), 1 + (CLIENTS * QUERIES.len()) as u64);
    assert_eq!(get("queries_ok"), get("queries_total"));
    assert_eq!(get("queries_failed"), 0);
    assert!(get("latency_count") > 0);
    assert!(get("latency_p99_micros") > 0);
    assert!(get("qq_iterations") > 0);
    assert!(get("qq_rows") > 0);

    handle.shutdown();
    handle.wait();
}

/// Shared-memo differential: many clients race the same Qq set cold on
/// one server (every lookup/insert interleaving lands on the shared
/// [`MemoStore`]), and a memo-disabled server replays the identical
/// workload — both must agree with the embedded oracle byte-for-byte,
/// and only the memo-enabled server may show memo traffic.
#[test]
fn shared_memo_concurrent_clients_match_memo_off_server() {
    let (memo_handle, memo_addr) = start_server(ServerConfig::default());
    let (plain_handle, plain_addr) = start_server(ServerConfig {
        memo: false,
        ..ServerConfig::default()
    });

    let mut memo_admin = Client::connect(memo_addr).expect("connect");
    memo_admin.run(SETUP).expect("setup");
    let mut plain_admin = Client::connect(plain_addr).expect("connect");
    plain_admin.run(SETUP).expect("setup");

    let oracle = RqlSession::with_defaults().expect("embedded session");
    let _ = embedded_rows(&oracle, SETUP);
    let expected: Vec<Vec<Vec<Vec<Value>>>> =
        QUERIES.iter().map(|q| embedded_rows(&oracle, q)).collect();

    // 8 clients all start on query 0, so the cold memo is raced hard;
    // then each walks the full mechanism mix.
    const CLIENTS: usize = 8;
    let results: Vec<Vec<Vec<Vec<Vec<Value>>>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(memo_addr).expect("connect");
                    QUERIES
                        .iter()
                        .map(|q| {
                            let result = client.run(q).expect("run");
                            result
                                .tables
                                .iter()
                                .map(|t| t.rows.clone())
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (i, per_client) in results.iter().enumerate() {
        for (j, got) in per_client.iter().enumerate() {
            assert_eq!(got, &expected[j], "memo client {i}, query {j} diverged");
        }
    }

    // The memo-off server serves the same answers.
    for (j, q) in QUERIES.iter().enumerate() {
        let result = plain_admin.run(q).expect("plain run");
        let got: Vec<Vec<Vec<Value>>> = result.tables.iter().map(|t| t.rows.clone()).collect();
        assert_eq!(got, expected[j], "memo-off server, query {j} diverged");
    }

    let get = |metrics: &str, name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
    };
    let memo_metrics = memo_admin.metrics(false).expect("metrics");
    assert!(get(&memo_metrics, "memo_inserts") > 0, "{memo_metrics}");
    assert!(
        get(&memo_metrics, "memo_hits") > 0,
        "8 clients replaying the same Qq must hit the shared memo:\n{memo_metrics}"
    );
    let plain_metrics = plain_admin.metrics(false).expect("metrics");
    assert_eq!(get(&plain_metrics, "memo_hits"), 0);
    assert_eq!(get(&plain_metrics, "memo_inserts"), 0);

    memo_handle.shutdown();
    memo_handle.wait();
    plain_handle.shutdown();
    plain_handle.wait();
}

/// A cross join big enough that cancellation/timeout lands mid-scan
/// (cooperative checkpoints fire every 1024 rows).
fn seed_slow_tables(client: &mut Client) {
    client
        .run("CREATE TABLE big1 (k INTEGER); CREATE TABLE big2 (k INTEGER);")
        .expect("create");
    for chunk in 0..10i64 {
        let values: Vec<String> = (chunk * 200..(chunk + 1) * 200)
            .map(|k| format!("({k})"))
            .collect();
        let values = values.join(", ");
        client
            .run(&format!(
                "INSERT INTO big1 VALUES {values}; INSERT INTO big2 VALUES {values};"
            ))
            .expect("insert");
    }
    client
        .run("BEGIN; COMMIT WITH SNAPSHOT;")
        .expect("snapshot");
}

const SLOW_QUERY: &str = "SELECT COUNT(*) FROM big1, big2 WHERE big1.k + big2.k > 1";

/// The trace ring under 8 writer threads with heavy wraparound: every
/// surviving slot must be a valid, untorn event; sequence numbers must
/// be unique; and the wrap-tolerant stack-discipline checker must not
/// see crossed spans. (This test rides the TSan lane in CI, so the
/// seqlock protocol itself is exercised under the sanitizer.)
#[test]
fn trace_ring_wraparound_under_concurrent_load() {
    use rql_repro::trace::{check_balanced, EventKind, Ring, SpanId};

    const CAPACITY: usize = 512;
    const THREADS: u64 = 8;
    const SPANS_PER_THREAD: u64 = 4_000;

    let ring = Ring::with_capacity(CAPACITY);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let ring = &ring;
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    // A matched enter/exit pair per iteration, with a
                    // start stamp unique to (thread, iteration) so the
                    // balance checker can pair them up exactly.
                    let start = t * SPANS_PER_THREAD + i + 1;
                    ring.record(EventKind::Enter, SpanId::Scan, t, start, 0, 0, 0);
                    ring.record(EventKind::Exit, SpanId::Scan, t, start, 7, 0, 0);
                }
            });
        }
    });

    // Every claim was counted, the ring wrapped many times over, and
    // the retained tail fits the capacity.
    assert_eq!(ring.recorded(), THREADS * SPANS_PER_THREAD * 2);
    let events = ring.snapshot();
    assert!(events.len() <= CAPACITY);
    assert!(
        events.len() > CAPACITY / 2,
        "quiescent ring should retain most slots, got {}",
        events.len()
    );

    // No torn reads: sequence numbers are unique and every event decodes
    // to the span the writers recorded.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), events.len(), "duplicate seq = torn slot");
    for e in &events {
        assert_eq!(e.span, SpanId::Scan);
        assert!(e.tid < THREADS);
        assert!(e.start_nanos >= 1);
    }

    // Wrap-tolerant stack discipline: lost enters are fine, crossings
    // are not.
    check_balanced(&events).expect("balanced under wraparound");
}

#[test]
fn cancel_interrupts_in_flight_query_with_rql300() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut admin = Client::connect(addr).expect("connect admin");
    seed_slow_tables(&mut admin);

    let victim = Client::connect(addr).expect("connect victim");
    let victim_id = victim.session_id();
    let runner = thread::spawn(move || {
        let mut victim = victim;
        victim.run(SLOW_QUERY)
    });
    // Let the query get into its scan, then cancel from another session.
    thread::sleep(Duration::from_millis(150));
    admin.cancel(victim_id).expect("cancel");

    match runner.join().expect("join") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "RQL300"),
        other => panic!("expected RQL300 cancellation, got {other:?}"),
    }

    let metrics = admin.metrics(false).expect("metrics");
    assert!(
        metrics.contains("queries_cancelled 1"),
        "cancel not counted:\n{metrics}"
    );

    // The cancelled query's span guards must have unwound cleanly: the
    // global trace ring shows no crossed enter/exit pairs (a leaked
    // guard on the cancel path would cross its enclosing span).
    trace::check_balanced(&trace::global().snapshot()).expect("spans balanced after cancel");

    handle.shutdown();
    handle.wait();
}

#[test]
fn deadline_trips_timeout_with_rql301() {
    let (handle, addr) = start_server(ServerConfig {
        query_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    seed_slow_tables(&mut client);

    match client.run(SLOW_QUERY) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "RQL301"),
        other => panic!("expected RQL301 timeout, got {other:?}"),
    }
    // A fresh query on the same connection runs fine: the token re-arms.
    let ok = client
        .run("SELECT COUNT(*) FROM big1")
        .expect("post-timeout");
    assert_eq!(ok.tables[0].rows[0][0], Value::Integer(2000));

    let metrics = client.metrics(false).expect("metrics");
    assert!(
        metrics.contains("queries_timed_out 1"),
        "timeout not counted:\n{metrics}"
    );

    // The watchdog-tripped failure froze a flight-recorder dump, and
    // `STATUS --flight` serves it along with the live ring.
    let flight = client.status_flight().expect("status --flight");
    assert!(
        flight.contains("flight recorder:"),
        "no live flight dump in STATUS --flight:\n{flight}"
    );
    assert!(
        flight.contains("--- last failure ---"),
        "timeout did not freeze a last-failure dump:\n{flight}"
    );
    // Plain STATUS stays a one-liner.
    let status = client.status().expect("status");
    assert!(!status.contains("flight recorder:"), "{status}");

    handle.shutdown();
    handle.wait();
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let (handle, addr) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut admin = Client::connect(addr).expect("connect admin");
    admin.run(SETUP).expect("setup");

    let outcomes: Vec<Result<usize, String>> = thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    match client.run(QUERIES[i % QUERIES.len()]) {
                        Ok(result) => Ok(result.tables.len()),
                        Err(ClientError::Server { code, message }) => {
                            Err(format!("[{code}] {message}"))
                        }
                        Err(e) => Err(format!("{e}")),
                    }
                })
            })
            .collect();
        // Give the queries a moment to be admitted, then drain.
        thread::sleep(Duration::from_millis(50));
        admin.shutdown().expect("shutdown ack");
        workers
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Every issued query got exactly one terminal answer: either its
    // result (drained) or an admission rejection — never a hang or a
    // dropped response.
    assert_eq!(outcomes.len(), 6);
    for outcome in &outcomes {
        match outcome {
            Ok(tables) => assert!(*tables > 0),
            Err(msg) => assert!(
                msg.starts_with("[RQL503]"),
                "unexpected failure during drain: {msg}"
            ),
        }
    }
    handle.wait();

    // The listener is gone after the drain.
    assert!(Client::connect(addr).is_err());
}

/// The full standing-query wire lifecycle: REGISTER seeds from the
/// backlog, SUBSCRIBE returns the seeded table and then streams one
/// DELTA frame per committed snapshot, UNREGISTER ends the stream with
/// a terminal END frame, and METRICS exposes the maintenance counters.
#[test]
fn standing_query_lifecycle_over_the_wire() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut admin = Client::connect(addr).expect("connect admin");
    admin.run(SETUP).expect("setup");

    let reg = "MAINTAIN QUERY watch AS SELECT CollateData(snap_id, \
               'SELECT e_user, e_val FROM events', 'Watched') FROM SnapIds";
    let ack = admin.register(reg).expect("register");
    assert!(ack.contains("name=watch"), "{ack}");
    assert!(ack.contains("table=Watched"), "{ack}");
    assert!(ack.contains("snapshots_seeded=4"), "{ack}");

    // Duplicates and ineligible bodies are rejected; the RQL210
    // eligibility code survives the wire as the frame's error code.
    match admin.register(reg) {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("already registered"), "{message}");
        }
        other => panic!("duplicate registration should fail, got {other:?}"),
    }
    match admin.register(
        "MAINTAIN QUERY bad AS SELECT CollateData(snap_id, \
         'SELECT my_udf(e_val) FROM events', 'Bad') FROM SnapIds",
    ) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "RQL210"),
        other => panic!("UDF Qq should be MAINTAIN-ineligible, got {other:?}"),
    }

    // A second connection subscribes: the opening RESULT frame is the
    // seeded table (4 snapshots × 2-3 live rows each).
    let mut sub = Client::connect(addr).expect("connect subscriber");
    let initial = sub.subscribe("watch").expect("subscribe");
    assert_eq!(initial.tables.len(), 1);
    assert!(!initial.tables[0].rows.is_empty());
    let initial_rows = initial.tables[0].rows.len();

    // A commit on the admin connection pushes one DELTA frame carrying
    // exactly the new snapshot's Qq rows.
    admin
        .run(
            "BEGIN;\nINSERT INTO events VALUES ('fay', 'login', 8);\n\
             COMMIT WITH SNAPSHOT;",
        )
        .expect("commit");
    match sub.next_event().expect("delta frame") {
        SubscriptionEvent::Delta(d) => {
            assert_eq!(d.name, "watch");
            assert!(d.snap_id > 0);
            assert!(!d.added.is_empty(), "new snapshot adds rows: {d:?}");
            assert!(d.removed.is_empty(), "collate never removes: {d:?}");
            assert!(
                d.added
                    .iter()
                    .any(|r| r.contains(&Value::Text("fay".into()))),
                "pushed delta should carry the new row: {d:?}"
            );
        }
        other => panic!("expected DELTA, got {other:?}"),
    }

    // Maintenance grew the server-side table: a fresh subscription's
    // opening frame now includes the pushed rows (the table is hosted by
    // the server, not any one connection's aux database).
    let mut late = Client::connect(addr).expect("connect late subscriber");
    let caught_up = late.subscribe("watch").expect("subscribe late");
    assert!(
        caught_up.tables[0].rows.len() > initial_rows,
        "{} vs {initial_rows}",
        caught_up.tables[0].rows.len()
    );

    // METRICS carries the standing counters, and they round-trip as JSON.
    let metrics = admin.metrics(true).expect("metrics json");
    for key in [
        "\"standing_queries\":1",
        "\"standing_subscribers\":2",
        "\"standing_snapshots_seeded\":4",
        "\"standing_snapshots_maintained\":1",
        "\"standing_maintain_errors\":0",
    ] {
        assert!(metrics.contains(key), "missing {key} in:\n{metrics}");
    }
    assert!(
        !metrics.contains("\"standing_rows_pushed\":0,"),
        "maintenance pushed rows:\n{metrics}"
    );

    // UNREGISTER ends the stream with a terminal frame and frees the
    // name; the subscriber's connection is back in request-response mode.
    admin.unregister("watch").expect("unregister");
    match sub.next_event().expect("end frame") {
        SubscriptionEvent::End { name, reason } => {
            assert_eq!(name, "watch");
            assert_eq!(reason, "unregistered");
        }
        other => panic!("expected END, got {other:?}"),
    }
    assert!(sub.status().is_ok(), "connection usable after END");
    match admin.unregister("watch") {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("no standing query"), "{message}");
        }
        other => panic!("double unregister should fail, got {other:?}"),
    }

    handle.shutdown();
    handle.wait();
}

/// Graceful drain closes active subscriptions with a terminal END
/// frame (reason "drained") instead of dropping the socket.
#[test]
fn graceful_drain_ends_subscriptions_with_terminal_frame() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut admin = Client::connect(addr).expect("connect admin");
    admin.run(SETUP).expect("setup");
    admin
        .register(
            "MAINTAIN QUERY watch AS SELECT CollateData(snap_id, \
             'SELECT e_user FROM events', 'Watched') FROM SnapIds",
        )
        .expect("register");

    let mut sub = Client::connect(addr).expect("connect subscriber");
    let initial = sub.subscribe("watch").expect("subscribe");
    assert!(!initial.tables[0].rows.is_empty());

    admin.shutdown().expect("shutdown ack");
    match sub.next_event().expect("terminal frame before close") {
        SubscriptionEvent::End { name, reason } => {
            assert_eq!(name, "watch");
            assert_eq!(reason, "drained");
        }
        other => panic!("expected END(drained), got {other:?}"),
    }
    handle.wait();
}

#[test]
fn delta_policy_skips_pages_over_the_wire() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // A multi-page table with localized churn between snapshots: the
    // forced delta path must serve unchanged heap pages from its cache.
    client
        .run("CREATE TABLE big (k INTEGER, v INTEGER)")
        .expect("create");
    for chunk in 0..30i64 {
        let values: Vec<String> = (chunk * 100..(chunk + 1) * 100)
            .map(|k| format!("({k}, {})", k * 3))
            .collect();
        client
            .run(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .expect("insert");
    }
    client
        .run("BEGIN; COMMIT WITH SNAPSHOT;")
        .expect("snapshot");
    for s in 1..6i64 {
        client
            .run(&format!(
                "UPDATE big SET v = {s} WHERE k = {};\nBEGIN;\nCOMMIT WITH SNAPSHOT;",
                s * 7
            ))
            .expect("churn");
    }

    let result = client
        .run(
            "--@policy forced\n\
             SELECT CollateData(snap_id, 'SELECT k, v FROM big WHERE v % 2 = 1', 'DeltaT') \
             FROM SnapIds;\n\
             --@aux\n\
             SELECT COUNT(*) FROM DeltaT;",
        )
        .expect("delta collate");
    assert_eq!(result.reports.len(), 1);
    let report = &result.reports[0];
    assert_eq!(report.iterations, 6);
    assert!(
        report.pages_skipped_delta > 0,
        "forced delta should skip unchanged pages, got {report:?}"
    );

    let metrics = client.metrics(true).expect("metrics json");
    assert!(
        !metrics.contains("\"pages_skipped_delta\":0,"),
        "server-side pages_skipped_delta metric stayed zero:\n{metrics}"
    );
    // The pruning counters must round-trip through METRICS as JSON
    // (io_-prefixed, from the shared store's I/O snapshot).
    assert!(
        metrics.contains("\"io_pages_pruned\":"),
        "METRICS json missing io_pages_pruned:\n{metrics}"
    );
    assert!(
        metrics.contains("\"io_sidecar_bytes\":"),
        "METRICS json missing io_sidecar_bytes:\n{metrics}"
    );
    assert!(
        metrics.contains("\"pages_pruned_filter\":"),
        "METRICS json missing pages_pruned_filter:\n{metrics}"
    );
    handle.shutdown();
    handle.wait();
}
