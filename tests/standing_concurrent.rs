//! Concurrency tests for the standing-query engine: subscriptions
//! racing live commits, registration racing maintenance, and status
//! polling racing everything. Routed through the ThreadSanitizer CI
//! lane (`.github/workflows/ci.yml`, `tsan` job) alongside the other
//! concurrency suites.
//!
//! The load-bearing invariant: a subscriber that joins at *any* point
//! in the commit stream can reconstruct the maintained table exactly —
//! its opening snapshot plus the delta frames it receives afterwards
//! equal the final table as a multiset, no frame lost, duplicated, or
//! torn.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};

use rql::RqlSession;
use rql_sqlengine::Row;
use rql_standing::{EndReason, PushFrame, StandingEngine};

fn multiset(rows: &[Row]) -> BTreeMap<String, i64> {
    let mut m = BTreeMap::new();
    for row in rows {
        *m.entry(format!("{row:?}")).or_insert(0) += 1;
    }
    m
}

fn session() -> Arc<RqlSession> {
    let s = RqlSession::with_defaults().unwrap();
    s.execute("CREATE TABLE m (grp INTEGER, v INTEGER)")
        .unwrap();
    s.execute("INSERT INTO m VALUES (0, 1)").unwrap();
    s.declare_snapshot(None).unwrap();
    s
}

const REG: &str = "MAINTAIN QUERY watch AS SELECT CollateData(snap_id, \
                   'SELECT grp, v FROM m', 'Watched') FROM SnapIds";

#[test]
fn subscribers_joining_mid_stream_reconstruct_the_final_table() {
    let s = session();
    let engine = StandingEngine::new();
    engine.attach(s.snap_db().store());
    engine.register(&s, REG).unwrap();

    // Subscribers join while commits are in flight; each folds its
    // frame stream over its opening snapshot. The second barrier keeps
    // the unregister below from winning the race outright: subscribers
    // may join at any point in the commit stream, but the query must
    // still exist when they do.
    let start = Arc::new(Barrier::new(4));
    let joined = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let start = Arc::clone(&start);
            let joined = Arc::clone(&joined);
            std::thread::spawn(move || {
                start.wait();
                let sub = engine.subscribe("watch").unwrap().unwrap();
                joined.wait();
                let mut shadow = multiset(&sub.initial.rows);
                for frame in sub.frames.iter() {
                    match frame {
                        PushFrame::Delta(d) => {
                            for row in &d.removed {
                                let key = format!("{row:?}");
                                let n = shadow.get_mut(&key).unwrap();
                                *n -= 1;
                                if *n == 0 {
                                    shadow.remove(&key);
                                }
                            }
                            for row in &d.added {
                                *shadow.entry(format!("{row:?}")).or_insert(0) += 1;
                            }
                        }
                        PushFrame::End(reason) => {
                            assert_eq!(reason, EndReason::Unregistered);
                            break;
                        }
                    }
                }
                shadow
            })
        })
        .collect();

    // Single committing thread (the store enforces one writer); every
    // commit runs maintenance synchronously and pushes one frame.
    start.wait();
    for i in 0..24i64 {
        s.execute(&format!("INSERT INTO m VALUES ({}, {i})", i % 5))
            .unwrap();
        if i % 3 == 0 {
            s.execute(&format!(
                "DELETE FROM m WHERE grp = {} AND v < {}",
                i % 5,
                i - 6
            ))
            .unwrap();
        }
        s.declare_snapshot(None).unwrap();
    }
    joined.wait();
    assert!(engine.unregister("watch"));

    let finals = s.query_aux("SELECT * FROM Watched").unwrap();
    let expected = multiset(&finals.rows);
    assert!(!expected.is_empty());
    for h in handles {
        assert_eq!(
            h.join().unwrap(),
            expected,
            "opening snapshot + frame stream must reproduce the final table"
        );
    }
}

#[test]
fn registration_and_status_polling_race_commits_safely() {
    let s = session();
    let engine = StandingEngine::new();
    engine.attach(s.snap_db().store());
    engine.register(&s, REG).unwrap();

    let start = Arc::new(Barrier::new(3));
    // Writes to the shared session (commits, and registration's seeding
    // pass into the aux store) must be serialized: the store's writer
    // slot errors with `WriterBusy` rather than blocking. This gate is
    // the embedded analogue of `rqld`'s `SharedStack::writer_gate`.
    let gate = Arc::new(Mutex::new(()));
    // Registrar: registers a second query mid-stream (seeding races
    // maintenance of the first), churns a short-lived subscription,
    // then unregisters it again.
    let registrar = {
        let engine = Arc::clone(&engine);
        let s = Arc::clone(&s);
        let start = Arc::clone(&start);
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            start.wait();
            let reg2 = "MAINTAIN QUERY sums AS SELECT AggregateDataInTable(snap_id, \
                        'SELECT grp, SUM(v) AS sv FROM m GROUP BY grp', 'Sums', '(sv,sum)') \
                        FROM SnapIds";
            let out = {
                let _g = gate.lock().unwrap();
                engine.register(&s, reg2).unwrap()
            };
            assert!(out.snapshots_seeded >= 1);
            let sub = engine.subscribe("sums").unwrap().unwrap();
            drop(sub); // gone subscriber: next push prunes it
            assert!(engine.unregister("sums"));
        })
    };
    // Poller: hammers the metrics surface while both of the above run.
    let poller = {
        let engine = Arc::clone(&engine);
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            start.wait();
            let mut polls = 0u64;
            for _ in 0..200 {
                for st in engine.statuses() {
                    assert!(st.subscribers <= 1);
                    polls += 1;
                }
            }
            polls
        })
    };

    start.wait();
    for i in 0..24i64 {
        let _g = gate.lock().unwrap();
        s.execute(&format!("INSERT INTO m VALUES ({}, {i})", i % 4))
            .unwrap();
        s.declare_snapshot(None).unwrap();
    }
    registrar.join().unwrap();
    assert!(poller.join().unwrap() > 0);

    // The first query maintained through all of it: its table matches a
    // fresh batch recompute over the same snapshot history.
    s.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT grp, v FROM m",
        "Batch",
    )
    .unwrap();
    let maintained = s.query_aux("SELECT * FROM Watched").unwrap();
    let batch = s.query_aux("SELECT * FROM Batch").unwrap();
    assert_eq!(multiset(&maintained.rows), multiset(&batch.rows));
    assert_eq!(engine.len(), 1);
}
