//! Differential tests for standing-query maintenance.
//!
//! The invariant under test: a result table maintained incrementally by
//! a [`Maintainer`] — seeded at registration, then folded forward one
//! commit at a time — is **byte-identical** (same column names, same
//! rows, same row order) to the table a fresh batch run of the same
//! mechanism produces over the same snapshot history, for every
//! mechanism and against batch runs under every `DeltaPolicy`.
//!
//! On top of identity, the pushed [`ResultDelta`] frames must be
//! *sound*: applying the add/remove stream to the seed-time table
//! contents reproduces the final table as a multiset.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use rql::{parse_maintain, AggOp, DeltaPolicy, Maintainer, RqlSession};
use rql_sqlengine::Row;

const QS: &str = "SELECT snap_id FROM SnapIds";

// ---- fixtures -------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, i64),
    DeleteGrp(u8),
    UpdateGrp(u8, i64),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100i64..100).prop_map(|(g, v)| Op::Insert(g % 8, v)),
        any::<u8>().prop_map(|g| Op::DeleteGrp(g % 8)),
        (any::<u8>(), -100i64..100).prop_map(|(g, v)| Op::UpdateGrp(g % 8, v)),
        Just(Op::Snapshot),
    ]
}

fn apply_op(session: &RqlSession, op: &Op) -> Option<u64> {
    match op {
        Op::Insert(g, v) => {
            session
                .execute(&format!("INSERT INTO m VALUES ({g}, {v})"))
                .expect("insert");
            None
        }
        Op::DeleteGrp(g) => {
            session
                .execute(&format!("DELETE FROM m WHERE grp = {g}"))
                .expect("delete");
            None
        }
        Op::UpdateGrp(g, v) => {
            session
                .execute(&format!("UPDATE m SET v = v + {v} WHERE grp = {g}"))
                .expect("update");
            None
        }
        Op::Snapshot => Some(session.declare_snapshot(None).expect("snapshot")),
    }
}

/// Fresh session over `m (grp, v)` with `prefix` already replayed.
fn session_with(prefix: &[Op]) -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().expect("session");
    session
        .execute("CREATE TABLE m (grp INTEGER, v INTEGER)")
        .expect("create");
    let mut snapshots = 0usize;
    for op in prefix {
        if apply_op(&session, op).is_some() {
            snapshots += 1;
        }
    }
    if snapshots == 0 {
        session.declare_snapshot(None).expect("snapshot");
    }
    session
}

/// The standing-query registrations under test, paired with a closure
/// running the equivalent batch mechanism into `table` under `policy`.
struct Mech {
    tag: &'static str,
    maintain: String,
    /// Policies the *batch* comparison runs under. (The maintainer always
    /// uses `Auto`; identity must hold against every batch policy that
    /// supports the mechanism/shape.)
    batch_policies: &'static [DeltaPolicy],
    batch: fn(&RqlSession, &str, DeltaPolicy),
}

fn mechanisms() -> Vec<Mech> {
    vec![
        Mech {
            tag: "collate",
            maintain: "MAINTAIN QUERY w_collate AS SELECT CollateData(snap_id, \
                       'SELECT grp, v FROM m', '{T}') FROM SnapIds"
                .into(),
            batch_policies: &[DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced],
            batch: |s, t, p| {
                s.collate_data_with_policy(QS, "SELECT grp, v FROM m", t, p)
                    .expect("batch collate");
            },
        },
        Mech {
            tag: "aggtable",
            // Qq must be unique per grouping key within a snapshot, so
            // pre-aggregate per snapshot and fold the per-snapshot sums.
            maintain: "MAINTAIN QUERY w_aggtable AS SELECT AggregateDataInTable(snap_id, \
                       'SELECT grp, SUM(v) AS sv FROM m GROUP BY grp', '{T}', '(sv,sum)') \
                       FROM SnapIds"
                .into(),
            batch_policies: &[DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced],
            batch: |s, t, p| {
                s.aggregate_data_in_table_with_policy(
                    QS,
                    "SELECT grp, SUM(v) AS sv FROM m GROUP BY grp",
                    t,
                    &[("sv".to_string(), AggOp::Sum)],
                    p,
                )
                .expect("batch aggtable");
            },
        },
        Mech {
            tag: "aggvar",
            maintain: "MAINTAIN QUERY w_aggvar AS SELECT AggregateDataInVariable(snap_id, \
                       'SELECT SUM(v) FROM m', '{T}', 'sum') FROM SnapIds"
                .into(),
            batch_policies: &[DeltaPolicy::Off, DeltaPolicy::Auto],
            batch: |s, t, p| {
                s.aggregate_data_in_variable_with_policy(
                    QS,
                    "SELECT SUM(v) FROM m",
                    t,
                    AggOp::Sum,
                    p,
                )
                .expect("batch aggvar");
            },
        },
        Mech {
            tag: "intervals",
            // Sequential-only mechanism: no delta path, never under Forced.
            maintain: "MAINTAIN QUERY w_intervals AS SELECT CollateDataIntoIntervals(snap_id, \
                       'SELECT grp FROM m', '{T}') FROM SnapIds"
                .into(),
            batch_policies: &[DeltaPolicy::Off, DeltaPolicy::Auto],
            batch: |s, t, p| {
                s.collate_data_into_intervals_with_policy(QS, "SELECT grp FROM m", t, p)
                    .expect("batch intervals");
            },
        },
    ]
}

fn register(session: &RqlSession, mech: &Mech, table: &str) -> (Maintainer, Vec<Row>) {
    let text = mech.maintain.replace("{T}", table);
    let spec = parse_maintain(&text)
        .expect("parse maintain")
        .expect("is a MAINTAIN statement");
    let (maintainer, _report) = Maintainer::register(session, spec).expect("register");
    let seeded = maintainer.current_result().expect("seed result").rows;
    (maintainer, seeded)
}

fn table_contents(session: &RqlSession, table: &str) -> (Vec<String>, Vec<Row>) {
    let r = session
        .query_aux(&format!("SELECT * FROM {table}"))
        .expect("read back");
    (r.columns, r.rows)
}

fn multiset(rows: &[Row]) -> BTreeMap<String, i64> {
    let mut m = BTreeMap::new();
    for row in rows {
        *m.entry(format!("{row:?}")).or_insert(0) += 1;
    }
    m
}

/// Drive a maintainer through `suffix`, asserting per-frame delta
/// soundness; returns the final maintained contents.
fn drive(
    session: &RqlSession,
    maintainer: &mut Maintainer,
    seeded: Vec<Row>,
    suffix: &[Op],
) -> Vec<Row> {
    let mut shadow = multiset(&seeded);
    for op in suffix {
        let Some(sid) = apply_op(session, op) else {
            continue;
        };
        let delta = maintainer.advance(sid).expect("advance");
        assert_eq!(delta.snap_id, sid);
        for row in &delta.removed {
            let key = format!("{row:?}");
            let n = shadow
                .get_mut(&key)
                .unwrap_or_else(|| panic!("delta removed a row not present in the shadow: {key}"));
            *n -= 1;
            if *n == 0 {
                shadow.remove(&key);
            }
        }
        for row in &delta.added {
            *shadow.entry(format!("{row:?}")).or_insert(0) += 1;
        }
    }
    let table = maintainer.spec().table.clone();
    let (_, rows) = table_contents(session, &table);
    assert_eq!(
        multiset(&rows),
        shadow,
        "replaying the pushed delta frames over the seed must reproduce the \
         maintained table (as a multiset)"
    );
    rows
}

/// The core differential: maintain incrementally through `suffix`, then
/// batch-recompute over the full history and demand byte identity.
fn check_differential(prefix: &[Op], suffix: &[Op]) {
    for mech in mechanisms() {
        let session = session_with(prefix);
        let m_table = format!("m_{}", mech.tag);
        let (mut maintainer, seeded) = register(&session, &mech, &m_table);
        drive(&session, &mut maintainer, seeded, suffix);
        let (m_cols, m_rows) = table_contents(&session, &m_table);
        for &policy in mech.batch_policies {
            let b_table = format!("b_{}_{policy:?}", mech.tag);
            (mech.batch)(&session, &b_table, policy);
            let (b_cols, b_rows) = table_contents(&session, &b_table);
            assert_eq!(m_cols, b_cols, "{}: columns vs batch {policy:?}", mech.tag);
            assert_eq!(
                m_rows, b_rows,
                "{}: maintained table must be byte-identical to batch under {policy:?}",
                mech.tag
            );
        }
    }
}

// ---- deterministic cases --------------------------------------------------

/// Churny history exercising the agg-delta remove/re-aggregate path:
/// group 3 shrinks, group 5 disappears entirely, group 1 only grows.
fn churny_prefix() -> Vec<Op> {
    vec![
        Op::Insert(1, 10),
        Op::Insert(3, 30),
        Op::Insert(3, 31),
        Op::Insert(5, 50),
        Op::Snapshot,
        Op::Insert(1, 11),
        Op::UpdateGrp(3, 5),
        Op::Snapshot,
    ]
}

fn churny_suffix() -> Vec<Op> {
    vec![
        Op::Insert(1, 12),
        Op::DeleteGrp(3),
        Op::Insert(3, 300),
        Op::Snapshot,
        Op::DeleteGrp(5),
        Op::Snapshot,
        // A no-change commit: delta maintenance should skip everything.
        Op::Snapshot,
        Op::UpdateGrp(1, 1),
        Op::Snapshot,
    ]
}

#[test]
fn maintained_equals_batch_on_churny_history() {
    check_differential(&churny_prefix(), &churny_suffix());
}

#[test]
fn maintained_equals_batch_with_empty_backlog() {
    // Register before any data exists beyond the mandatory first snapshot.
    check_differential(&[], &churny_suffix());
}

#[test]
fn out_of_order_and_duplicate_commits_are_ignored() {
    let session = session_with(&churny_prefix());
    let mech = &mechanisms()[0];
    let (mut maintainer, _) = register(&session, mech, "m_dup");
    let sid = session.declare_snapshot(None).expect("snapshot");
    let d1 = maintainer.advance(sid).expect("advance");
    let d2 = maintainer.advance(sid).expect("duplicate advance");
    assert!(d2.added.is_empty() && d2.removed.is_empty());
    let d3 = maintainer.advance(sid - 1).expect("stale advance");
    assert!(d3.added.is_empty() && d3.removed.is_empty());
    let _ = d1;
    let (_, m_rows) = table_contents(&session, "m_dup");
    session
        .collate_data_with_policy(QS, "SELECT grp, v FROM m", "b_dup", DeltaPolicy::Auto)
        .expect("batch");
    let (_, b_rows) = table_contents(&session, "b_dup");
    assert_eq!(m_rows, b_rows);
}

#[test]
fn unregister_and_reregister_mid_stream() {
    let session = session_with(&churny_prefix());
    let mech = &mechanisms()[1]; // aggtable: stateful fold
    let (mut first, seeded) = register(&session, mech, "m_first");
    let early: Vec<Op> = churny_suffix().into_iter().take(4).collect();
    drive(&session, &mut first, seeded, &early);
    drop(first); // unregister: maintenance state discarded
    let late: Vec<Op> = churny_suffix().into_iter().skip(4).collect();
    for op in &late {
        apply_op(&session, op);
    }
    // A re-registration under a fresh table seeds from the full backlog
    // and must agree with a batch run.
    let (second, _) = register(&session, mech, "m_second");
    let (_, m_rows) = table_contents(&session, "m_second");
    (mech.batch)(&session, "b_rereg", DeltaPolicy::Auto);
    let (_, b_rows) = table_contents(&session, "b_rereg");
    assert_eq!(m_rows, b_rows);
    assert!(second.stats().snapshots_seeded > 0);
}

#[test]
fn registration_rejects_existing_result_table() {
    let session = session_with(&churny_prefix());
    let mech = &mechanisms()[0];
    let (_first, _) = register(&session, mech, "taken");
    let text = mech.maintain.replace("{T}", "taken");
    let spec = parse_maintain(&text).unwrap().unwrap();
    let Err(err) = Maintainer::register(&session, spec) else {
        panic!("second registration over an existing table must fail")
    };
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn maintenance_stats_accumulate() {
    let session = session_with(&churny_prefix());
    let mech = &mechanisms()[1];
    let (mut maintainer, seeded) = register(&session, mech, "m_stats");
    assert_eq!(maintainer.stats().snapshots_seeded, 2);
    drive(&session, &mut maintainer, seeded, &churny_suffix());
    let stats = maintainer.stats();
    assert_eq!(stats.snapshots_maintained, 4);
    assert!(stats.rows_pushed > 0);
}

// ---- randomized sweep -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized commit streams: any registration point in any history,
    /// maintained tables stay byte-identical to batch recompute for all
    /// mechanisms × batch `DeltaPolicy`s, and delta frames stay sound.
    #[test]
    fn maintained_equals_batch_on_random_histories(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        split in 0usize..40,
    ) {
        let split = split.min(ops.len());
        check_differential(&ops[..split], &ops[split..]);
    }
}
